# Convenience targets for the Ruby reproduction.

PYTHON ?= python

.PHONY: install test coverage verify-diff verify-smoke bench bench-fast bench-cache bench-batch bench-bnb bench-bnb-parallel bench-record bench-compare campaign-smoke obs-smoke service-smoke examples experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Line coverage over the package (needs pytest-cov from the [test] extras).
# The fail-under threshold is the ratchet CI enforces; raise it as coverage
# grows, never lower it.
COV_FAIL_UNDER ?= 80
coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
	    --cov-fail-under=$(COV_FAIL_UNDER)

# Differential verification: cross-check scalar / cached / batch /
# reference-sim evaluation paths on generated mappings plus the
# metamorphic invariant suite. See docs/verification.md.
verify-diff:
	$(PYTHON) -m repro verify --quick --seed 0

# End-to-end self-test of the harness itself: quick verify must pass, and
# an intentionally injected off-by-one in the access-count pipeline must
# be caught with a shrunk, replayable counterexample.
verify-smoke:
	$(PYTHON) scripts/verify_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	$(PYTHON) -m pytest benchmarks/test_table1_mapspace_sizes.py \
	    benchmarks/test_fig08_padding_sweep.py \
	    benchmarks/test_fig09_alexnet_handcrafted.py \
	    benchmarks/test_ablations.py --benchmark-only -s

# Smoke benchmark for the evaluation-cache fast path: fails if cached
# re-evaluation drops below 10x a cold evaluation, or if caching changes
# any search result. Cheap enough to run in CI on every change.
bench-cache:
	$(PYTHON) -m pytest benchmarks/test_perf_eval_cache.py --benchmark-only -s

# Smoke benchmark for the vectorized batch engine: fails if the batch path
# drops below 5x scalar throughput on the toy exhaustive sweep, falls behind
# scalar on a ResNet-50 layer search, or diverges from scalar results.
# Refreshes BENCH_batch_eval.json (the perf trajectory record).
bench-batch:
	$(PYTHON) -m pytest benchmarks/test_perf_batch_eval.py --benchmark-only -s

# Smoke benchmark for the branch-and-bound mapper: fails if it drops below
# 2x batched-exhaustive speed on a ResNet-50 layer's Eyeriss mapspace,
# stops pruning subtrees, or diverges from the exhaustive optimum.
# Refreshes BENCH_branch_bound.json (the perf trajectory record).
bench-bnb:
	$(PYTHON) -m pytest benchmarks/test_perf_branch_bound.py --benchmark-only -s

# Smoke benchmark for parallel branch-and-bound: 4-worker subtree
# work-sharing must beat the serial walk by >= 1.8x on a ResNet-50
# layer's Eyeriss mapspace with a bit-identical optimum (the speedup
# gate skips on < 4 cores; exactness is always asserted).
# Refreshes BENCH_branch_bound_parallel.json.
bench-bnb-parallel:
	$(PYTHON) -m pytest benchmarks/test_perf_branch_bound_parallel.py --benchmark-only -s

# Append the current BENCH_*.json payloads as one machine-tagged record
# to the BENCH_HISTORY.jsonl regression ledger (run after the bench-*
# suites refresh the payloads).
bench-record:
	$(PYTHON) -m repro bench record BENCH_batch_eval.json \
	    BENCH_branch_bound.json BENCH_branch_bound_parallel.json

# Benchmark regression gate: diff the newest ledger record against its
# (same-machine) baseline and exit nonzero on any >= 20% slowdown, then
# self-test the gate on throwaway ledgers with an injected regression.
# See docs/observability.md ("Benchmark ledger").
bench-compare:
	$(PYTHON) -m repro bench compare
	$(PYTHON) scripts/bench_compare_smoke.py

# End-to-end robustness smoke: runs a tiny campaign, SIGKILLs it mid-run,
# resumes from the journal, and checks best-EDP parity plus fault-injection
# retry/quarantine semantics. See scripts/campaign_smoke.py.
campaign-smoke:
	$(PYTHON) scripts/campaign_smoke.py

# End-to-end observability smoke: runs a traced toy search and validates
# the span schema, duration nesting, metric counts against the search's
# own report, and the `repro obs` CLI; then launches a CLI search with
# --serve-metrics 0 and scrapes /progress + /metrics mid-run (nonzero,
# monotone progress fraction). See scripts/obs_smoke.py.
obs-smoke:
	$(PYTHON) scripts/obs_smoke.py

# End-to-end mapper-service smoke: launches `repro serve`, drives 20
# concurrent clients (coalescing + shared warm cache asserted), checks
# bit-identical best-EDP parity against a direct in-process search,
# records a service_latency bench payload through the ledger, and
# SIGKILLs the server mid-queue to prove --resume loses no accepted
# job. See scripts/service_smoke.py and docs/service.md.
service-smoke:
	$(PYTHON) scripts/service_smoke.py

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; done

experiments:
	$(PYTHON) -m repro experiment table1
	$(PYTHON) -m repro experiment fig9

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info

#!/usr/bin/env python
"""End-to-end smoke test for the mapper service (``make service-smoke``).

Drives a real ``repro serve`` subprocess through the acceptance contract:

1. a live server absorbs 20+ concurrent requests (mixed identical and
   distinct specs) with every submission accepted, every job reaching
   ``ok``, and the coalesce counter > 0 (identical in-flight requests
   shared one job);
2. the service's best-EDP answer is bit-identical to a direct in-process
   :func:`find_best_mapping` run with the same seed and config;
3. per-job ``/progress`` and ``/metrics`` are served from the same
   listener, and request latencies are recorded as a ``service_latency``
   payload that ``repro bench record`` accepts into the ledger;
4. a SIGKILLed server restarted with ``--resume`` finishes every job it
   had accepted — no lost work, exactly one terminal record per job.

Runs in well under a minute; exits nonzero on any failure.
"""

from __future__ import annotations

import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.arch import toy_linear_architecture  # noqa: E402
from repro.core import find_best_mapping  # noqa: E402
from repro.io.journal import Journal  # noqa: E402
from repro.problem import GemmLayer  # noqa: E402

CONCURRENT_CLIENTS = 20
IDENTICAL_CLIENTS = 8  # submissions sharing one spec (must coalesce)
PARITY_SEED = 7
PARITY_BUDGET = 500


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8")
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def spec(seed: int, max_evaluations: int = PARITY_BUDGET) -> dict:
    return {
        "arch": "toy16",
        "workload": {"gemm": {"m": 48, "n": 12, "k": 24}},
        "max_evaluations": max_evaluations,
        "patience": None,
        "seed": seed,
    }


def launch(journal: str, resume: bool = False) -> tuple:
    args = [
        sys.executable, "-m", "repro", "serve",
        "--workers", "2", "--queue-limit", "64", "--journal", journal,
    ]
    if resume:
        args.append("--resume")
    proc = subprocess.Popen(
        args, env=_env(), cwd=REPO, stdout=subprocess.PIPE, text=True
    )
    url = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        check(
            bool(line) or proc.poll() is None,
            "serve exited before announcing its URL",
        )
        found = re.search(r"serving mapper API at (http://\S+)", line or "")
        if found:
            url = found.group(1)
            break
    check(url is not None, "no 'serving mapper API at' banner on stdout")
    return proc, url


def wait_terminal(url: str, job_ids, timeout_s: float = 120.0) -> dict:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        states = {
            job["job_id"]: job["state"]
            for job in get_json(url + "/v1/jobs")["jobs"]
        }
        if all(
            states.get(job_id) in ("ok", "failed", "cancelled")
            for job_id in job_ids
        ):
            return states
        time.sleep(0.05)
    fail(f"jobs did not finish in {timeout_s:.0f}s: {states}")


def concurrent_load(url: str) -> None:
    """20 racing clients: accepted, coalesced, completed, measured."""
    payloads = [spec(PARITY_SEED, 4000)] * IDENTICAL_CLIENTS + [
        spec(seed, 400)
        for seed in range(CONCURRENT_CLIENTS - IDENTICAL_CLIENTS)
    ]
    results = [None] * len(payloads)
    submitted = time.monotonic()

    def client(index: int) -> None:
        results[index] = post_json(url + "/v1/search", payloads[index])

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(payloads))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    check(
        all(result is not None and result[0] == 202 for result in results),
        f"not every concurrent submission was accepted: "
        f"{[r[0] for r in results if r]}",
    )
    job_ids = {body["job_id"] for _, body in results}
    states = wait_terminal(url, job_ids)
    elapsed = time.monotonic() - submitted
    check(
        all(states[job_id] == "ok" for job_id in job_ids),
        f"not every job finished ok: {states}",
    )

    identical_ids = {body["job_id"] for _, body in results[:IDENTICAL_CLIENTS]}
    check(
        len(identical_ids) == 1,
        f"identical in-flight requests did not share one job: {identical_ids}",
    )
    stats = get_json(url + "/v1/stats")
    check(
        stats["coalesced"] > 0,
        f"coalesce counter is {stats['coalesced']} after duplicate load",
    )
    check(
        stats["pool"]["cache"]["hits"] > 0,
        "shared evaluation cache saw no hits under load",
    )
    print(
        f"load: {len(payloads)} concurrent requests -> {len(job_ids)} jobs, "
        f"coalesced={stats['coalesced']}, "
        f"cache hits={stats['pool']['cache']['hits']}, {elapsed:.2f}s wall"
    )

    # Latency profile for the bench ledger: per-job queue wait + run time
    # as reported by the service itself.
    latencies = []
    for job_id in job_ids:
        body = get_json(f"{url}/v1/jobs/{job_id}")
        latencies.append((body["queue_wait_s"] or 0) + (body["run_s"] or 0))
    latencies.sort()
    payload = {
        "benchmark": "service_latency",
        "cases": {
            "mixed_20_concurrent": {
                "p50_s": statistics.median(latencies),
                "p95_s": latencies[max(0, int(len(latencies) * 0.95) - 1)],
                "throughput_rps": len(job_ids) / elapsed,
                "requests": len(payloads),
                "jobs": len(job_ids),
            }
        },
    }
    with tempfile.TemporaryDirectory() as tmp:
        bench_path = Path(tmp) / "BENCH_SERVICE.json"
        ledger_path = Path(tmp) / "BENCH_HISTORY.jsonl"
        bench_path.write_text(json.dumps(payload))
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "bench", "record",
                str(bench_path), "--ledger", str(ledger_path),
            ],
            env=_env(), cwd=REPO, capture_output=True, text=True,
        )
        check(
            proc.returncode == 0,
            f"bench record rejected service_latency payload: {proc.stderr}",
        )
        check(
            "3 metric(s)" in proc.stdout,
            f"expected 3 tracked service metrics, got: {proc.stdout.strip()}",
        )
    print(
        f"bench: service_latency recorded "
        f"(p50={payload['cases']['mixed_20_concurrent']['p50_s']:.3f}s, "
        f"p95={payload['cases']['mixed_20_concurrent']['p95_s']:.3f}s, "
        f"{payload['cases']['mixed_20_concurrent']['throughput_rps']:.1f} jobs/s)"
    )


def parity(url: str) -> None:
    """The service's answer equals the direct in-process search, bit for bit."""
    status, body = post_json(url + "/v1/search", spec(PARITY_SEED))
    check(status == 202, f"parity submission rejected: {status}")
    job_id = body["job_id"]
    wait_terminal(url, [job_id])
    served = get_json(f"{url}/v1/jobs/{job_id}")["result"]["best"]
    direct = find_best_mapping(
        toy_linear_architecture(16),
        GemmLayer("request", m=48, n=12, k=24).workload(),
        max_evaluations=PARITY_BUDGET,
        patience=None,
        seed=PARITY_SEED,
    )
    check(
        served["edp"] == direct.best.edp
        and served["cycles"] == direct.best.cycles
        and served["energy_pj"] == direct.best.energy_pj,
        f"service best diverged from direct search: "
        f"served edp={served['edp']}, direct edp={direct.best.edp}",
    )
    print(f"parity: served EDP {served['edp']} == direct (bit-identical)")


def crash_recovery(journal: str) -> None:
    """SIGKILL mid-queue; --resume finishes every accepted job."""
    proc, url = launch(journal)
    accepted = []
    try:
        for seed in range(100, 105):
            status, body = post_json(
                url + "/v1/search", spec(seed, 5000)
            )
            check(status == 202, f"crash-test submission rejected: {status}")
            accepted.append(body["job_id"])
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    print(f"crash: SIGKILLed server with {len(accepted)} accepted jobs")

    resumed, resumed_url = launch(journal, resume=True)
    try:
        deadline = time.time() + 120
        terminal = {}
        while time.time() < deadline:
            terminal = {
                record["job_id"]: record["status"]
                for record in Journal(journal).read()
                if record.get("kind") == "job"
            }
            if set(accepted) <= set(terminal):
                break
            time.sleep(0.2)
        lost = set(accepted) - set(terminal)
        check(not lost, f"accepted jobs lost across SIGKILL: {lost}")
        check(
            all(terminal[job_id] == "ok" for job_id in accepted),
            f"recovered jobs did not all finish ok: {terminal}",
        )
        # Exactly one terminal record per accepted job across both
        # server lifetimes (the pre-kill one may have finished some).
        all_terminals = [
            record["job_id"]
            for record in Journal(journal).read()
            if record.get("kind") == "job"
        ]
        check(
            len(all_terminals) == len(set(all_terminals)),
            "duplicate terminal records after resume",
        )
    finally:
        resumed.terminate()
        resumed.wait(timeout=10)
    print(
        f"crash: --resume finished all {len(accepted)} accepted jobs, "
        "one terminal record each"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal = str(Path(tmp) / "service.jsonl")
        proc, url = launch(journal)
        try:
            health = urllib.request.urlopen(url + "/healthz", timeout=10)
            check(health.read().decode().strip() == "ok", "healthz not ok")
            concurrent_load(url)
            parity(url)
            metrics = (
                urllib.request.urlopen(url + "/metrics", timeout=10)
                .read().decode()
            )
            check(
                "repro_service_jobs_ok" in metrics,
                "/metrics is missing service counters",
            )
            print("obs: /healthz + /metrics live on the service listener")
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    with tempfile.TemporaryDirectory() as tmp:
        crash_recovery(str(Path(tmp) / "service.jsonl"))

    print("OK: service smoke passed")


if __name__ == "__main__":
    main()

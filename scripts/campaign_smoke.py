#!/usr/bin/env python
"""End-to-end smoke test for fault-tolerant campaigns (``make campaign-smoke``).

Exercises the full robustness story against the toy suite on the 16-PE
linear architecture:

1. run an uninterrupted reference campaign;
2. start the same campaign on a second journal, SIGKILL it mid-run, and
   resume it — per-job best EDP must match the reference exactly;
3. run with an injected worker crash and an injected always-raising job —
   the crash must be retried to success, the raiser quarantined, and the
   campaign must still exit 0.

Runs in a few tens of seconds; exits nonzero on any mismatch.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

BASE_CMD = [
    sys.executable,
    "-m",
    "repro",
    "campaign",
    "run",
    "--suite",
    "toy",
    "--arch",
    "toy16",
    "--kinds",
    "ruby-s",
    "--seeds",
    "1",
    "--budget",
    "150",
    "--workers",
    "2",
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(cmd, **kwargs):
    return subprocess.run(cmd, env=_env(), cwd=REPO, **kwargs)


def _job_results(journal: Path) -> dict:
    """Latest terminal record per job_id -> (status, edp)."""
    results = {}
    for line in journal.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") != "job":
            continue
        if record.get("status") not in ("ok", "quarantined"):
            continue
        edp = (record.get("metrics") or {}).get("edp")
        results[record["job_id"]] = (record["status"], edp)
    return results


def _count_terminal(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from the SIGKILL — exactly what resume tolerates
        if record.get("kind") == "job" and record.get("status") in (
            "ok",
            "quarantined",
        ):
            count += 1
    return count


def step_reference(workdir: Path) -> dict:
    journal = workdir / "reference.jsonl"
    proc = _run(BASE_CMD + ["--journal", str(journal)], capture_output=True)
    if proc.returncode != 0:
        sys.exit(f"reference campaign failed:\n{proc.stderr.decode()}")
    results = _job_results(journal)
    print(f"[1/3] reference campaign: {len(results)} jobs ok")
    return results


def step_kill_and_resume(workdir: Path, reference: dict) -> None:
    journal = workdir / "interrupted.jsonl"
    proc = subprocess.Popen(
        BASE_CMD + ["--journal", str(journal)],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and _count_terminal(journal) < 2:
        if proc.poll() is not None:
            sys.exit("campaign finished before it could be interrupted; "
                     "raise --budget in this script")
        time.sleep(0.05)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    interrupted = _count_terminal(journal)
    if interrupted >= len(reference):
        sys.exit("campaign finished before it could be interrupted; "
                 "raise --budget in this script")
    print(f"[2/3] SIGKILLed campaign after {interrupted} jobs; resuming")

    resumed = _run(
        [
            sys.executable, "-m", "repro", "campaign", "resume",
            "--journal", str(journal),
        ],
        capture_output=True,
    )
    if resumed.returncode != 0:
        sys.exit(f"resume failed:\n{resumed.stderr.decode()}")
    results = _job_results(journal)
    if set(results) != set(reference):
        sys.exit(
            f"resume job set mismatch: {sorted(set(reference) ^ set(results))}"
        )
    for job_id, (status, edp) in sorted(results.items()):
        ref_status, ref_edp = reference[job_id]
        if status != "ok" or ref_status != "ok" or edp != ref_edp:
            sys.exit(
                f"resume parity violated for {job_id}: "
                f"{status}/{edp} vs reference {ref_status}/{ref_edp}"
            )
    print(f"      resumed campaign matches reference on all "
          f"{len(results)} jobs (best EDP identical)")


def step_faults(workdir: Path, reference: dict) -> None:
    crash_job = "toy:fig8_d96:ruby-s"
    doomed_job = "toy:table1_d23:ruby-s"
    plan = {
        "schema": 1,
        "faults": [
            {"job": crash_job, "attempt": 0, "kind": "crash"},
        ]
        + [
            {
                "job": doomed_job,
                "attempt": attempt,
                "kind": "raise",
                "message": "injected smoke fault",
            }
            for attempt in range(3)
        ],
    }
    plan_path = workdir / "faults.json"
    plan_path.write_text(json.dumps(plan))
    journal = workdir / "faulty.jsonl"
    proc = _run(
        BASE_CMD
        + [
            "--journal", str(journal),
            "--fault-plan", str(plan_path),
            "--backoff", "0.05",
        ],
        capture_output=True,
    )
    if proc.returncode != 0:
        sys.exit(
            f"fault-injected campaign aborted (exit {proc.returncode}):\n"
            f"{proc.stderr.decode()}"
        )
    results = _job_results(journal)
    status, edp = results[crash_job]
    if status != "ok" or edp != reference[crash_job][1]:
        sys.exit(f"crashed job not retried to parity: {status}/{edp}")
    if results[doomed_job][0] != "quarantined":
        sys.exit(f"doomed job not quarantined: {results[doomed_job]}")
    ok = sum(1 for status, _ in results.values() if status == "ok")
    print(
        f"[3/3] fault injection: crash retried to identical EDP, "
        f"raiser quarantined ({ok} ok / 1 quarantined)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as tmp:
        workdir = Path(tmp)
        reference = step_reference(workdir)
        step_kill_and_resume(workdir, reference)
        step_faults(workdir, reference)
    print("campaign smoke: OK")


if __name__ == "__main__":
    main()

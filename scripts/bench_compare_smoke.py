#!/usr/bin/env python
"""End-to-end smoke test for the benchmark regression gate
(``make bench-compare``).

Builds throwaway ledgers from synthetic benchmark payloads and checks
that ``repro bench compare`` draws the line exactly where the CI gate
needs it:

1. two statistically-identical runs compare clean (exit 0);
2. an injected >= 20% slowdown — throughput down 30%, wall-clock up
   50% — trips the gate (exit 1);
3. a 10% wobble stays under the default 20% threshold (exit 0);
4. a one-record ledger refuses to compare (exit 10, ``BenchLedgerError``)
   rather than reporting a hollow pass.

The real ledger lives in ``BENCH_HISTORY.jsonl`` at the repo root and is
appended by ``repro bench record`` after the ``make bench-*`` suites.

Runs in well under a second; exits nonzero on any failure.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.cli import main as cli_main  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def payloads(slowdown: float = 1.0) -> dict:
    """Synthetic benchmark payloads; ``slowdown`` scales every timing in
    the bad direction (throughputs divided, wall-clocks multiplied)."""
    return {
        "BENCH_batch_eval.json": {
            "benchmark": "batch_eval",
            "cases": {
                "toy_exhaustive": {
                    "batch_mappings_per_sec": 140000.0 / slowdown,
                    "scalar_mappings_per_sec": 14000.0 / slowdown,
                    "speedup": 10.0,
                    "num_mappings": 1315,
                }
            },
        },
        "BENCH_branch_bound.json": {
            "benchmark": "branch_bound",
            "cases": {
                "conv5_expand_pfm": {
                    "branch_bound_s": 1.8 * slowdown,
                    "exhaustive_s": 5.4 * slowdown,
                    "speedup": 3.0,
                    "candidates": 446145,
                }
            },
        },
    }


def record(tmp: Path, ledger: Path, tag: str, slowdown: float = 1.0) -> None:
    sources = []
    for name, payload in payloads(slowdown).items():
        path = tmp / f"{tag}_{name}"
        path.write_text(json.dumps(payload))
        sources.append(str(path))
    code = cli_main(
        ["bench", "record", *sources, "--ledger", str(ledger), "--note", tag]
    )
    check(code == 0, f"bench record ({tag}) exited {code}")


def compare(ledger: Path) -> int:
    return cli_main(["bench", "compare", "--ledger", str(ledger)])


def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        # -- 1. identical runs compare clean ---------------------------
        steady = tmp / "steady.jsonl"
        record(tmp, steady, "baseline")
        record(tmp, steady, "rerun")
        code = compare(steady)
        check(code == 0, f"identical runs flagged (exit {code})")
        print("steady: identical runs compare clean (exit 0)")

        # -- 2. an injected >=20% slowdown trips the gate --------------
        regressed = tmp / "regressed.jsonl"
        record(tmp, regressed, "baseline")
        record(tmp, regressed, "slow", slowdown=1.5)
        code = compare(regressed)
        check(code == 1, f"injected 50% slowdown not caught (exit {code})")
        print("gate: injected slowdown caught (exit 1)")

        # -- 3. sub-threshold noise passes -----------------------------
        noisy = tmp / "noisy.jsonl"
        record(tmp, noisy, "baseline")
        record(tmp, noisy, "wobble", slowdown=1.1)
        code = compare(noisy)
        check(code == 0, f"10% wobble tripped the 20% gate (exit {code})")
        print("noise: 10% wobble passes the 20% threshold (exit 0)")

        # -- 4. nothing to compare is an error, not a pass -------------
        lonely = tmp / "lonely.jsonl"
        record(tmp, lonely, "only")
        code = compare(lonely)
        check(code == 10, f"one-record ledger exited {code}, want 10")
        print("ledger: single record refuses to compare (exit 10)")

    print("OK: bench-compare smoke passed")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""End-to-end smoke test for the observability layer (``make obs-smoke``).

Runs a toy exhaustive search with tracing and metrics enabled, then
checks the full observability contract:

1. every record in the trace JSONL validates against the span schema;
2. the root ``search.run`` span's duration matches the reported
   ``stats["elapsed_s"]``, and each level of the span tree nests inside
   its parent (children's total never exceeds the parent's duration);
3. the metrics registry counted exactly the evaluations the search
   reported, and the JSON exporter round-trips through ``merge``;
4. ``repro obs dump`` and ``repro obs summarize`` both accept the file;
5. with no scope active, instrumentation publishes nothing (the
   near-zero-overhead guarantee is a behavioural one: no ambient scope
   means no registry traffic at all);
6. a real CLI search launched with ``--serve-metrics 0`` serves live
   ``/progress`` (nonzero, monotonically nondecreasing fraction while
   the search is still running) and ``/metrics`` (Prometheus text with
   the live progress gauge) from its ephemeral port.

Runs in a few seconds; exits nonzero on any failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.arch import toy_glb_architecture  # noqa: E402
from repro.mapspace import pfm_mapspace  # noqa: E402
from repro.model import Evaluator  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    obs_scope,
    read_trace,
    validate_span,
)
from repro.problem.gemm import vector_workload  # noqa: E402
from repro.search import exhaustive_search  # noqa: E402

#: Tolerance between the root span and the timer's elapsed_s. Both are
#: perf_counter differences taken a few microseconds apart; 50 ms absorbs
#: scheduler noise on loaded CI machines without hiding real breakage.
TOLERANCE_S = 0.05


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def main() -> None:
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    space = pfm_mapspace(arch, workload)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"

        registry = MetricsRegistry()
        with obs_scope(registry=registry, trace_path=trace_path):
            result = exhaustive_search(space, Evaluator(arch, workload))
        print(
            f"search: {result.num_evaluated} evaluated, "
            f"best {result.best_metric:.4g}"
        )

        # -- 1. every span validates against the schema ----------------
        records = read_trace(trace_path)
        check(bool(records), "trace file contains no span records")
        for record in records:
            problems = validate_span(record)
            check(not problems, f"invalid span {record}: {problems}")
        print(f"trace: {len(records)} spans, all valid")

        # -- 2. durations nest: root matches stats, levels sum ---------
        roots = [r for r in records if r["parent_id"] is None]
        check(len(roots) == 1, f"expected one root span, got {len(roots)}")
        root = roots[0]
        check(root["name"] == "search.run", f"root span is {root['name']}")
        drift = abs(root["duration_s"] - result.stats["elapsed_s"])
        check(
            drift < TOLERANCE_S,
            f"root span {root['duration_s']:.4f}s vs stats elapsed_s "
            f"{result.stats['elapsed_s']:.4f}s (drift {drift:.4f}s)",
        )
        children = defaultdict(list)
        by_id = {r["span_id"]: r for r in records}
        for record in records:
            if record["parent_id"] is not None:
                children[record["parent_id"]].append(record)
        for parent_id, kids in children.items():
            parent = by_id[parent_id]
            kid_total = sum(k["duration_s"] for k in kids)
            check(
                kid_total <= parent["duration_s"] + TOLERANCE_S,
                f"children of {parent['name']} sum to {kid_total:.4f}s > "
                f"parent {parent['duration_s']:.4f}s",
            )
        print(
            f"spans: root {root['duration_s']:.4f}s ~ "
            f"elapsed_s {result.stats['elapsed_s']:.4f}s "
            f"(drift {drift:.4f}s), nesting consistent"
        )

        # -- 3. registry counted the run; JSON export merges back ------
        evaluations = registry.counter("search.evaluations").total()
        check(
            evaluations == result.num_evaluated,
            f"registry counted {evaluations} evaluations, "
            f"search reported {result.num_evaluated}",
        )
        payload = registry.to_json()
        check(payload["schema"] == 1, "metrics JSON schema != 1")
        reimported = MetricsRegistry()
        reimported.merge(json.loads(json.dumps(payload))["metrics"])
        check(
            reimported.counter("search.evaluations").total() == evaluations,
            "metrics JSON did not round-trip through merge",
        )
        print(f"metrics: {int(evaluations)} evaluations counted, JSON round-trips")

        # -- 4. the CLI accepts the trace ------------------------------
        for sub in ("dump", "summarize"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "obs", sub, str(trace_path)],
                env=_env(),
                cwd=REPO,
                capture_output=True,
                text=True,
            )
            check(
                proc.returncode == 0,
                f"repro obs {sub} exited {proc.returncode}: {proc.stderr}",
            )
        print("cli: obs dump / obs summarize accept the trace")

    # -- 5. no ambient scope, no registry traffic ----------------------
    from repro.obs import default_registry

    default_registry().reset()
    exhaustive_search(space, Evaluator(arch, workload))
    leaked = default_registry().names()
    check(not leaked, f"instrumentation leaked metrics without a scope: {leaked}")
    print("overhead: no scope active -> no registry traffic")

    # -- 6. live endpoints on a real CLI search ------------------------
    check_live_endpoints()

    print("OK: observability smoke passed")


def _http_get(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def check_live_endpoints() -> None:
    """Launch ``repro search --serve-metrics 0`` and scrape it mid-run.

    The scalar (``--no-batch``) random search over a big GEMM runs for
    many seconds, leaving a wide window to observe a fraction that is
    nonzero, strictly below 1, and monotonically nondecreasing across
    polls — i.e. genuinely live progress, not a post-hoc summary.
    """
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "search",
            "--gemm",
            "M=256,N=64,K=256",
            "--kind",
            "ruby-s",
            "--searcher",
            "random",
            "--budget",
            "500000",
            "--patience",
            "500000",
            "--no-batch",
            "--serve-metrics",
            "0",
        ],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        url = None
        deadline = time.time() + 30.0
        while time.time() < deadline:
            line = proc.stdout.readline()
            check(
                bool(line) or proc.poll() is None,
                "search exited before announcing its telemetry URL",
            )
            if line.startswith("serving live telemetry at "):
                url = line.split(" at ", 1)[1].strip()
                break
        check(url is not None, "no 'serving live telemetry at' line on stdout")
        print(f"live: search serving at {url}")

        def progress_fraction():
            payload = json.loads(_http_get(url + "/progress"))
            check(payload["schema"] == 1, "/progress schema != 1")
            searches = [
                s for s in payload["searches"] if s["driver"] == "random"
            ]
            if not searches or searches[0]["fraction"] is None:
                return None
            return searches[0]["fraction"]

        fraction = None
        while time.time() < deadline:
            check(proc.poll() is None, "search finished before a mid-run poll")
            fraction = progress_fraction()
            if fraction:
                break
            time.sleep(0.05)
        check(
            fraction is not None and 0.0 < fraction < 1.0,
            f"no mid-run progress fraction observed (got {fraction})",
        )

        later = progress_fraction()
        check(
            later is not None and later >= fraction,
            f"progress fraction moved backwards: {fraction} -> {later}",
        )
        print(
            f"live: /progress fraction {fraction:.3g} -> {later:.3g} "
            "(nonzero, monotone, mid-run)"
        )

        metrics = _http_get(url + "/metrics")
        check(
            "repro_search_progress_fraction" in metrics,
            "/metrics is missing the live progress gauge",
        )
        check(
            "# TYPE" in metrics and "repro_evaluator_evals_total" in metrics,
            "/metrics is not Prometheus text exposition",
        )
        print("live: /metrics serves Prometheus text with progress gauge")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()

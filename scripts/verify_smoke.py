#!/usr/bin/env python
"""End-to-end self-test of the differential harness (``make verify-smoke``).

A verification harness that never fires is indistinguishable from one
that cannot fire, so this smoke checks both directions:

1. a small quick-profile sweep (clean code) finds zero divergences while
   actually exercising every path, including reference-sim cross-checks;
2. with an off-by-one intentionally injected into the evaluator's
   access-count pipeline (a monkeypatched wrapper — the real
   ``repro.model.access_counts`` is untouched), the same sweep catches
   the corruption, shrinks it to a smaller mapping, and dumps a
   counterexample JSON;
3. replaying the dump while the corruption is live still diverges, and
   ``repro verify --replay`` agrees; replaying after the patch is removed
   reports clean — the dump is a genuinely executable artifact;
4. the CLI exits with the VerificationError code (9) while corrupted and
   0 when clean.

Runs in well under a minute; exits nonzero on any failure.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import repro.model.evaluator as evaluator_module  # noqa: E402
from repro.exceptions import VerificationError  # noqa: E402
from repro.model.access_counts import AccessCounts  # noqa: E402
from repro.verify.differential import (  # noqa: E402
    DifferentialConfig,
    replay_counterexample,
    run_differential,
)

#: Sweep size for the smoke: big enough to include every adversarial case
#: plus sampled ones, small enough to finish in seconds.
SMOKE_CASES = 80
SMOKE_REF_SIM = 20


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def smoke_config(dump_dir: str | None = None) -> DifferentialConfig:
    return DifferentialConfig(
        cases=SMOKE_CASES,
        seed=0,
        min_ref_sim=SMOKE_REF_SIM,
        dump_dir=dump_dir,
        max_divergent_cases=1,
    )


def inject_off_by_one():
    """Monkeypatch the evaluator's access-count hook with a +1 corruption.

    Patches the name as imported into ``repro.model.evaluator`` — a
    scratch wrapper, not the real implementation — so the scalar/cached
    paths (which route through the evaluator) corrupt while the batch
    kernels and the differential runner's direct analytical call stay
    clean. Returns the original for restoration.
    """
    real = evaluator_module.compute_access_counts

    def corrupted(arch, workload, mapping):
        counts = real(arch, workload, mapping)
        reads = dict(counts.reads)
        if reads:
            key = sorted(reads)[0]
            reads[key] += 1  # the off-by-one
        return AccessCounts(reads=reads, writes=dict(counts.writes))

    evaluator_module.compute_access_counts = corrupted
    return real


def loop_count(mapping) -> int:
    return sum(
        1 for p in mapping.placed_loops() if p.loop.bound > 1
    )


def cli_verify(*extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "verify", *extra],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


def main() -> None:
    # 1. Clean sweep: all paths agree, and the sweep is not vacuous.
    clean = run_differential(smoke_config())
    check(clean.ok, f"clean sweep diverged:\n{clean.summary()}")
    check(
        clean.cases_checked >= SMOKE_CASES,
        f"clean sweep only ran {clean.cases_checked} cases",
    )
    check(
        clean.ref_sim_checks >= SMOKE_REF_SIM,
        f"only {clean.ref_sim_checks} reference-sim cross-checks ran",
    )
    for path in ("scalar", "cache", "batch-single", "batch-packed"):
        check(
            clean.path_counts.get(path, 0) > 0,
            f"path {path} never exercised",
        )
    print(
        f"clean sweep: {clean.cases_checked} cases, "
        f"{clean.ref_sim_checks} ref-sim checks, no divergence"
    )

    # 2. Injected off-by-one must be caught, shrunk, and dumped.
    with tempfile.TemporaryDirectory() as tmp:
        real = inject_off_by_one()
        try:
            corrupted = run_differential(smoke_config(dump_dir=tmp))
            check(
                not corrupted.ok,
                "injected off-by-one in access counts was NOT caught",
            )
            check(
                corrupted.counterexample_paths,
                "divergence found but no counterexample dumped",
            )
            dump = corrupted.counterexample_paths[0]
            shrunk = corrupted.divergent[0].case
            # The shrinker must have made progress: the dump records the
            # original mapping only when it differs from the shrunk one.
            import json

            payload = json.loads(Path(dump).read_text())
            check(
                "original_mapping" in payload,
                "counterexample was not shrunk below the original mapping",
            )
            check(
                payload["divergences"],
                "counterexample dump carries no divergences",
            )
            print(
                f"injected fault caught: {len(corrupted.divergent)} case "
                f"shrunk to {loop_count(shrunk.mapping)} nontrivial loops, "
                f"dumped to {Path(dump).name}"
            )

            # 3a. Replay while corrupted: still diverges (API and CLI).
            replay = replay_counterexample(dump)
            check(
                not replay.ok,
                "replayed counterexample does not diverge under the fault",
            )
        finally:
            evaluator_module.compute_access_counts = real

        # 3b. Replay after restoration: clean (API and CLI agree).
        replay = replay_counterexample(dump)
        check(
            replay.ok,
            "replayed counterexample still diverges after the fault "
            f"was removed: {[d.describe() for d in replay.divergences]}",
        )
        result = cli_verify("--replay", dump)
        check(
            result.returncode == 0,
            f"CLI replay of a clean counterexample exited "
            f"{result.returncode}: {result.stderr}",
        )
        print("replay: diverges under fault, clean after restoration")

    # 4. CLI exit codes: clean run exits 0 (tiny case budget for speed).
    result = cli_verify("--quick", "--seed", "0", "--cases", "40",
                        "--no-parallel", "--dump-dir", tempfile.gettempdir())
    check(
        result.returncode == 0,
        f"clean CLI verify exited {result.returncode}: {result.stderr}",
    )
    check(
        VerificationError.exit_code == 9,
        "VerificationError exit code drifted from the documented 9",
    )
    print("cli: clean verify exits 0; VerificationError maps to exit 9")
    print("verify smoke: OK")


if __name__ == "__main__":
    main()

"""Shared numeric and collection utilities used across the repro package."""

from repro.utils.mathx import (
    ceil_div,
    divisors,
    mixed_radix_digits,
    num_ordered_factorizations,
    ordered_factorizations,
    prime_factorization,
    product,
)
from repro.utils.faults import Fault, FaultPlan
from repro.utils.pareto import ParetoPoint, pareto_frontier
from repro.utils.rng import make_rng

__all__ = [
    "Fault",
    "FaultPlan",
    "ceil_div",
    "divisors",
    "mixed_radix_digits",
    "num_ordered_factorizations",
    "ordered_factorizations",
    "prime_factorization",
    "product",
    "ParetoPoint",
    "pareto_frontier",
    "make_rng",
]

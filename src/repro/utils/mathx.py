"""Integer factorization and combinatorics helpers.

These primitives underpin both mapspace generation (ordered divisor chains
for perfect factorization, mixed-radix digits for imperfect factorization)
and mapspace-size counting (Table I of the paper).
"""

from __future__ import annotations

import functools
import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


def product(values: Iterable[int]) -> int:
    """Return the product of ``values`` (1 for an empty iterable)."""
    result = 1
    for value in values:
        result *= value
    return result


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` using exact integer math."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


@functools.lru_cache(maxsize=None)
def prime_factorization(n: int) -> Tuple[Tuple[int, int], ...]:
    """Return the prime factorization of ``n`` as ``((prime, exponent), ...)``.

    ``prime_factorization(1)`` returns an empty tuple.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: List[Tuple[int, int]] = []
    remaining = n
    candidate = 2
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            exponent = 0
            while remaining % candidate == 0:
                remaining //= candidate
                exponent += 1
            factors.append((candidate, exponent))
        candidate += 1 if candidate == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return tuple(factors)


@functools.lru_cache(maxsize=None)
def divisors(n: int) -> Tuple[int, ...]:
    """Return all positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    result = [1]
    for prime, exponent in prime_factorization(n):
        powers = [prime**e for e in range(exponent + 1)]
        result = [d * p for d in result for p in powers]
    return tuple(sorted(result))


def ordered_factorizations(n: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """Yield every ordered tuple of ``parts`` positive integers whose product is ``n``.

    This enumerates the perfect-factorization choices for a single tensor
    dimension of size ``n`` split across ``parts`` loop levels. The order of
    the tuple matters (different levels of the memory hierarchy).
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        yield (n,)
        return
    for head in divisors(n):
        for tail in ordered_factorizations(n // head, parts - 1):
            yield (head,) + tail


@functools.lru_cache(maxsize=None)
def num_ordered_factorizations(n: int, parts: int) -> int:
    """Count ordered factorizations of ``n`` into ``parts`` positive factors.

    Equals ``prod_over_primes C(exponent + parts - 1, parts - 1)`` — each
    prime's exponent is distributed independently over the ``parts`` slots.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    count = 1
    for _, exponent in prime_factorization(n):
        count *= math.comb(exponent + parts - 1, parts - 1)
    return count


def mixed_radix_digits(value: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Decompose ``value`` into mixed-radix digits over ``radices``.

    ``radices`` are listed least-significant first. Digit ``i`` lies in
    ``[0, radices[i])``; whatever remains after the final radix is returned
    as an extra most-significant digit (unbounded), so the output has
    ``len(radices) + 1`` entries and reconstructs exactly:

    ``value == sum(digit[i] * prod(radices[:i]) for i in range(len(digits)))``

    This is the heart of Ruby's imperfect factorization: for per-level bounds
    ``P_0..P_{N-1}`` (inner to outer), the remainders of Eq. (5) are
    ``R_i = digit_i + 1`` with ``digit = mixed_radix_digits(D - 1, P)``.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    digits: List[int] = []
    remaining = value
    for radix in radices:
        if radix < 1:
            raise ValueError(f"radices must be >= 1, got {radix}")
        digits.append(remaining % radix)
        remaining //= radix
    digits.append(remaining)
    return tuple(digits)


def from_mixed_radix(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`mixed_radix_digits`."""
    if len(digits) != len(radices) + 1:
        raise ValueError(
            f"expected {len(radices) + 1} digits for {len(radices)} radices, "
            f"got {len(digits)}"
        )
    value = 0
    weight = 1
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        value += digit * weight
        weight *= radix
    value += digits[-1] * weight
    return value


def compositions_bounded(parts: int, bound: int) -> Iterator[Tuple[int, ...]]:
    """Yield every tuple of ``parts`` integers with entries in ``[1, bound]``.

    Utility enumerator (``bound ** parts`` tuples) for exhaustive
    imperfect-factorization counting on small problems, where each loop
    level independently picks a bound up to the dimension size.
    """
    if parts < 0:
        raise ValueError(f"parts must be >= 0, got {parts}")
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if parts == 0:
        yield ()
        return
    for head in range(1, bound + 1):
        for tail in compositions_bounded(parts - 1, bound):
            yield (head,) + tail


def balanced_split(n: int, parts: int) -> Tuple[int, ...]:
    """Split ``n`` into ``parts`` near-equal positive integers summing to ``n``."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < parts:
        raise ValueError(f"cannot split {n} into {parts} positive parts")
    base, extra = divmod(n, parts)
    return tuple(base + (1 if i < extra else 0) for i in range(parts))


def dict_product(sizes: Dict[str, int]) -> int:
    """Product of the values of a ``{dim: size}`` dictionary."""
    return product(sizes.values())

"""Seeded random-number helpers.

All stochastic components (random-sampling search, mapspace sampling) take an
explicit ``random.Random`` so results are reproducible and tests are
deterministic. The paper averages its toy studies over 100 seeded runs of
Timeloop's random-sampling search; we expose the same discipline.
"""

from __future__ import annotations

import random
from typing import Optional, Union


def make_rng(seed: Optional[Union[int, random.Random]] = None) -> random.Random:
    """Return a ``random.Random``.

    Accepts ``None`` (fresh nondeterministic stream), an ``int`` seed, or an
    existing ``random.Random`` (returned as-is so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when running multi-start searches so each start has its own stream
    but the whole experiment is still reproducible from one seed.
    """
    return random.Random(rng.getrandbits(64))

"""Pareto-frontier utilities for the architectural design-space sweeps.

Used by the Fig. 13 / Fig. 14 reproductions, where each candidate design is
a point ``(area, edp)`` and the claim is that Ruby-S mappings form a new
Pareto frontier below the PFM frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """A candidate design point for minimize-minimize Pareto analysis.

    Attributes:
        x: first objective (minimized), e.g. accelerator area in mm^2.
        y: second objective (minimized), e.g. EDP.
        payload: arbitrary metadata (e.g. array shape, mapping) carried along.
    """

    x: float
    y: float
    payload: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good in both objectives and
        strictly better in at least one (minimization)."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and (self.x < other.x or self.y < other.y)
        )


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Return the non-dominated subset of ``points`` sorted by ascending x.

    Ties on both coordinates keep a single representative.
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (p.x, p.y))
    frontier: List[ParetoPoint] = []
    best_y = float("inf")
    for point in ordered:
        if point.y < best_y:
            frontier.append(point)
            best_y = point.y
    return frontier


def frontier_dominates(
    challenger: Sequence[ParetoPoint], incumbent: Sequence[ParetoPoint]
) -> bool:
    """True if every incumbent-frontier point is weakly dominated by some
    challenger point — the paper's "Ruby-S forms a new Pareto frontier" claim."""
    challenger_front = pareto_frontier(challenger)
    for point in pareto_frontier(incumbent):
        if not any(
            c.x <= point.x and c.y <= point.y for c in challenger_front
        ):
            return False
    return True


def hypervolume_2d(
    points: Sequence[ParetoPoint], reference: ParetoPoint
) -> float:
    """Dominated hypervolume (area) of ``points`` w.r.t. ``reference``.

    Both objectives are minimized; points beyond the reference contribute
    nothing. A convenient scalar for comparing frontiers in tests.
    """
    frontier = [
        p for p in pareto_frontier(points) if p.x <= reference.x and p.y <= reference.y
    ]
    if not frontier:
        return 0.0
    volume = 0.0
    ascending = sorted(frontier, key=lambda p: p.x)
    for i, point in enumerate(ascending):
        next_x = ascending[i + 1].x if i + 1 < len(ascending) else reference.x
        width = max(0.0, min(next_x, reference.x) - point.x)
        height = max(0.0, reference.y - point.y)
        volume += width * height
    return volume

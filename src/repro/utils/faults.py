"""Deterministic fault injection for testing the campaign layer.

Resilience code that is never exercised is resilience theater: this
module lets tests (and ``make campaign-smoke``) *schedule* hangs, raised
exceptions, and hard worker crashes at exact (job, attempt) coordinates,
so the timeout → retry → quarantine and crash-recovery paths run for real
instead of being hoped-for.

A :class:`FaultPlan` is immutable, picklable (it ships into campaign
worker processes under both ``fork`` and ``spawn``), and JSON-round-trip
serializable (the CLI accepts ``--fault-plan plan.json``). Attempt
numbers are 0-based; a fault scheduled at attempt 0 fires on the first
try only, so ``{"attempt": 0, "kind": "crash"}`` means "crash once, then
succeed on retry".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.exceptions import EvaluationError, SpecError

#: Supported fault kinds.
#: ``hang``  — sleep for ``seconds`` (a worker stuck on a pathological
#:             mapping; the campaign's per-job timeout must reap it).
#: ``raise`` — raise :class:`EvaluationError` (a cost-model failure).
#: ``crash`` — ``os._exit`` the worker process without reporting back
#:             (an OOM kill or segfault stand-in). Never use in-process.
FAULT_KINDS = ("hang", "raise", "crash")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault at a (job_id, attempt) coordinate."""

    job_id: str
    attempt: int
    kind: str
    seconds: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}"
            )
        if self.attempt < 0:
            raise SpecError(f"fault attempt must be >= 0, got {self.attempt}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        return cls(
            job_id=data["job"],
            attempt=int(data.get("attempt", 0)),
            kind=data["kind"],
            seconds=float(data.get("seconds", 3600.0)),
            message=data.get("message", "injected fault"),
        )


class FaultPlan:
    """A deterministic schedule of faults, keyed by (job_id, attempt)."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._faults: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            self._faults[(fault.job_id, fault.attempt)] = fault

    def __len__(self) -> int:
        return len(self._faults)

    def fault_for(self, job_id: str, attempt: int) -> Optional[Fault]:
        return self._faults.get((job_id, attempt))

    def inject(self, job_id: str, attempt: int) -> None:
        """Fire the fault scheduled at (job_id, attempt), if any.

        Called by the campaign job entry point *inside the worker
        process*, right before the real work starts. ``crash`` uses
        ``os._exit`` so no exception handler, ``finally`` block, or pipe
        flush runs — exactly what a killed worker looks like.
        """
        fault = self.fault_for(job_id, attempt)
        if fault is None:
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
        elif fault.kind == "raise":
            raise EvaluationError(
                f"{fault.message} (job {job_id!r}, attempt {attempt})"
            )
        elif fault.kind == "crash":
            os._exit(86)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "faults": [
                fault.to_dict()
                for fault in sorted(
                    self._faults.values(),
                    key=lambda f: (f.job_id, f.attempt),
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if data.get("schema") != 1:
            raise SpecError(
                f"fault plan: expected schema 1, got {data.get('schema')!r}"
            )
        return cls(Fault.from_dict(entry) for entry in data.get("faults", ()))

"""High-level API: the Mapper facade, DSE sweeps, and reporting."""

from repro.core.mapper import Mapper, MapperConfig, find_best_mapping
from repro.core.metrics import geometric_mean, normalize_to, improvement_percent
from repro.core.dse import DesignPoint, SweepResult, sweep_glb_sizes, sweep_pe_arrays
from repro.core.report import format_table
from repro.core.plots import ascii_bar_chart, ascii_line_chart, ascii_scatter

__all__ = [
    "Mapper",
    "MapperConfig",
    "find_best_mapping",
    "geometric_mean",
    "normalize_to",
    "improvement_percent",
    "DesignPoint",
    "SweepResult",
    "sweep_pe_arrays",
    "sweep_glb_sizes",
    "format_table",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ascii_scatter",
]

"""Terminal (ASCII) charts for experiment reports.

The benchmark harnesses print the same series the paper plots; these
renderers make the shapes visible directly in a terminal without any
plotting dependency: log-scale line charts for convergence curves (Fig. 7),
scatter plots for Pareto sweeps (Fig. 13), and bar charts for normalized
comparisons (Figs. 10-12, 14).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    """Map ``value`` in [lo, hi] onto 0..steps-1 (optionally log-scaled)."""
    if hi <= lo:
        return 0
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    fraction = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(fraction * (steps - 1))))


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render best-so-far style curves, one marker per series.

    Every series is resampled to ``width`` columns; the y-axis spans the
    finite values of all series (log scale by default — EDP curves span
    decades).
    """
    finite = [
        v for values in series.values() for v in values if math.isfinite(v) and v > 0
    ]
    if not finite:
        return (title + "\n" if title else "") + "(no finite data)"
    lo, hi = min(finite), max(finite)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        n = len(values)
        for col in range(width):
            sample = values[min(n - 1, col * n // width)]
            if not (math.isfinite(sample) and sample > 0):
                continue
            row = height - 1 - _scale(sample, lo, hi, height, log_y)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:.3e} +" + "-" * width)
    for row in grid:
        lines.append("          |" + "".join(row))
    lines.append(f"{lo:.3e} +" + "-" * width)
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def ascii_scatter(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render (x, y) point sets, one marker per series (Fig. 13 style)."""
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points if y > 0]
    if not xs or not ys:
        return (title + "\n" if title else "") + "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width, False)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:.3e} +" + "-" * width)
    for row in grid:
        lines.append("          |" + "".join(row))
    lines.append(f"{y_lo:.3e} +" + "-" * width)
    lines.append(f"          x: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bars, one per label; ``reference`` draws a marker line.

    Used for normalized-EDP charts where ``reference=1.0`` is the PFM
    baseline.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return (title + "\n" if title else "") + "(no data)"
    peak = max(list(values) + ([reference] if reference else []))
    if peak <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    reference_col = (
        round(reference / peak * width) if reference is not None else None
    )
    for label, value in zip(labels, values):
        bar_len = max(0, round(value / peak * width))
        bar = "#" * bar_len + " " * (width - bar_len)
        if reference_col is not None and 0 <= reference_col < width:
            marker = "|" if bar_len <= reference_col else "!"
            bar = bar[:reference_col] + marker + bar[reference_col + 1 :]
        lines.append(f"{label.ljust(label_width)} {bar} {value:.3g}")
    return "\n".join(lines)

"""Metric aggregation helpers used by experiments and reports."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the right average for normalized ratios."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize_to(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry (paper-style normalization)."""
    baseline = values[baseline_key]
    if baseline <= 0:
        raise ValueError(f"baseline {baseline_key} must be positive")
    return {key: value / baseline for key, value in values.items()}


def improvement_percent(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive numbers mean the challenger is better (smaller); e.g. a 50%
    EDP improvement means the challenger's EDP is half the baseline's.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def best_per_key(
    rows: Sequence[Mapping[str, float]], key: str
) -> Dict[str, float]:
    """Minimum of ``row[key]`` grouped by ``row['group']`` — sweep helper."""
    best: Dict[str, float] = {}
    for row in rows:
        group = row["group"]  # type: ignore[index]
        value = row[key]
        if group not in best or value < best[group]:
            best[group] = value
    return best

"""Architectural design-space exploration (Figs. 13 and 14).

Sweeps PE-array shapes (2x7 ... 16x16 in the paper), searches each mapspace
on every design for every workload, and aggregates network-level EDP
against accelerator area. The paper's claim: Ruby-S points form a new
Pareto frontier below the PFM (and PFM+padding) points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.arch.eyeriss import eyeriss_like
from repro.arch.spec import Architecture
from repro.core.mapper import Mapper, MapperConfig
from repro.energy.area import estimate_area_mm2
from repro.exceptions import SearchError
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapspaceKind
from repro.problem.workload import Workload
from repro.utils.pareto import ParetoPoint, pareto_frontier
from repro.utils.rng import make_rng

DEFAULT_ARRAY_SHAPES: Tuple[Tuple[int, int], ...] = (
    (2, 7),
    (4, 7),
    (7, 7),
    (8, 8),
    (14, 12),
    (12, 14),
    (16, 12),
    (16, 16),
)


@dataclass(frozen=True)
class DesignPoint:
    """One (array shape, mapspace kind) outcome of a sweep.

    ``edp`` is network-level: total energy times total cycles across the
    weighted workload list.
    """

    mesh_x: int
    mesh_y: int
    kind: MapspaceKind
    area_mm2: float
    energy_pj: float
    cycles: int
    per_workload_edp: Tuple[Tuple[str, float], ...] = ()
    label: Optional[str] = None

    @property
    def num_pes(self) -> int:
        return self.mesh_x * self.mesh_y

    @property
    def edp(self) -> float:
        return self.energy_pj * self.cycles

    @property
    def shape_label(self) -> str:
        """Design identity within a sweep (mesh shape, or a custom label
        when the sweep varies another axis, e.g. GLB capacity)."""
        return self.label or f"{self.mesh_x}x{self.mesh_y}"


@dataclass
class SweepResult:
    """All design points of a sweep, with Pareto helpers."""

    points: List[DesignPoint] = field(default_factory=list)

    def of_kind(self, kind: Union[str, MapspaceKind]) -> List[DesignPoint]:
        kind = MapspaceKind(kind)
        return [p for p in self.points if p.kind == kind]

    def pareto_points(self, kind: Union[str, MapspaceKind]) -> List[ParetoPoint]:
        """Area-vs-EDP Pareto frontier of one mapspace kind."""
        candidates = [
            ParetoPoint(
                x=p.area_mm2,
                y=p.edp,
                payload={"shape": p.shape_label, "kind": p.kind.value},
            )
            for p in self.of_kind(kind)
        ]
        return pareto_frontier(candidates)

    def improvement_by_shape(
        self,
        challenger: Union[str, MapspaceKind],
        baseline: Union[str, MapspaceKind],
    ) -> Dict[str, float]:
        """Per-shape percent EDP improvement of challenger over baseline."""
        challenger_edp = {p.shape_label: p.edp for p in self.of_kind(challenger)}
        baseline_edp = {p.shape_label: p.edp for p in self.of_kind(baseline)}
        improvements = {}
        for shape, base in baseline_edp.items():
            if shape in challenger_edp and base > 0:
                improvements[shape] = 100.0 * (base - challenger_edp[shape]) / base
        return improvements


def evaluate_network(
    arch: Architecture,
    workloads: Sequence[Tuple[Workload, int]],
    kind: Union[str, MapspaceKind],
    constraints: Optional[ConstraintSet] = None,
    max_evaluations: int = 2_000,
    patience: Optional[int] = 500,
    objective: str = "edp",
    seed: Optional[Union[int, random.Random]] = None,
    restarts: int = 1,
    use_batch: bool = True,
    batch_size: int = 512,
    strategy: str = "random",
) -> Tuple[float, int, List[Tuple[str, float]]]:
    """Search every layer; return (total energy, total cycles, per-layer EDP).

    ``workloads`` pairs each unique layer with its occurrence count in the
    network (ResNet-50 repeats layer shapes many times). ``restarts``
    independent searches run per layer and the best wins — the laptop-scale
    stand-in for the paper's 24-thread searches. ``strategy`` selects the
    per-layer searcher (any :class:`MapperConfig` strategy, e.g.
    "branch-bound" for exact sweeps of enumerable spaces); campaign-mode
    runs journal random searches and ignore it.
    """
    from repro.search.campaign import active_campaign

    rng = make_rng(seed)
    campaign = active_campaign()
    total_energy = 0.0
    total_cycles = 0
    per_layer: List[Tuple[str, float]] = []
    for workload, count in workloads:
        with obs.trace(
            "dse.layer",
            workload=workload.name,
            kind=MapspaceKind(kind).value,
            count=count,
        ):
            if campaign is not None:
                # Campaign mode: derive the restart seeds up front (the
                # shared rng stream stays identical whether a job runs
                # fresh or is replayed from the journal, so resume keeps
                # exact parity) and run the whole multi-restart search as
                # one journaled job. Note the integer seeds start fresh
                # streams, so campaign-mode results are deterministic but
                # not identical to the non-campaign path, which threads
                # the live rng through.
                from repro.search.campaign import (
                    CampaignJob,
                    default_job_id,
                    run_job_under_scope,
                )

                job_seeds = tuple(
                    rng.getrandbits(32) for _ in range(max(1, restarts))
                )
                job = CampaignJob(
                    job_id=default_job_id(
                        arch, workload, kind, objective, max_evaluations,
                        patience, job_seeds,
                    ),
                    arch=arch,
                    workload=workload,
                    kind=MapspaceKind(kind).value,
                    objective=objective,
                    max_evaluations=max_evaluations,
                    patience=patience,
                    seeds=job_seeds,
                    constraints=constraints,
                )
                best = run_job_under_scope(campaign, job)
                total_energy += best.energy_pj * count
                total_cycles += best.cycles * count
                per_layer.append((workload.name, best.edp))
                continue
            config = MapperConfig(
                kind=kind,
                objective=objective,
                strategy=strategy,
                max_evaluations=max_evaluations,
                patience=patience,
                constraints=constraints,
                use_batch=use_batch,
                batch_size=batch_size,
            )
            mapper = Mapper(arch, workload, config)
            best = None
            for _ in range(max(1, restarts)):
                result = mapper.run(seed=rng)
                if result.best is None:
                    continue
                if best is None or result.best.metric(
                    objective
                ) < best.metric(objective):
                    best = result.best
            if best is None:
                raise SearchError(
                    f"no valid {MapspaceKind(kind).value} mapping found for "
                    f"{workload.name} on {arch.name}"
                )
            total_energy += best.energy_pj * count
            total_cycles += best.cycles * count
            per_layer.append((workload.name, best.edp))
    return total_energy, total_cycles, per_layer


def sweep_pe_arrays(
    workloads: Sequence[Tuple[Workload, int]],
    kinds: Sequence[Union[str, MapspaceKind]] = (
        MapspaceKind.PFM,
        MapspaceKind.RUBY_S,
    ),
    array_shapes: Sequence[Tuple[int, int]] = DEFAULT_ARRAY_SHAPES,
    arch_builder: Callable[[int, int], Architecture] = eyeriss_like,
    constraints: Optional[ConstraintSet] = None,
    max_evaluations: int = 2_000,
    patience: Optional[int] = 500,
    seed: Optional[int] = None,
    restarts: int = 1,
    use_batch: bool = True,
    batch_size: int = 512,
) -> SweepResult:
    """Run the Fig. 13/14 sweep: every shape x every mapspace kind."""
    rng = make_rng(seed)
    result = SweepResult()
    for mesh_x, mesh_y in array_shapes:
        arch = arch_builder(mesh_x, mesh_y)
        area = estimate_area_mm2(arch)
        for kind in kinds:
            energy, cycles, per_layer = evaluate_network(
                arch,
                workloads,
                kind,
                constraints=constraints,
                max_evaluations=max_evaluations,
                patience=patience,
                seed=rng,
                restarts=restarts,
                use_batch=use_batch,
                batch_size=batch_size,
            )
            result.points.append(
                DesignPoint(
                    mesh_x=mesh_x,
                    mesh_y=mesh_y,
                    kind=MapspaceKind(kind),
                    area_mm2=area,
                    energy_pj=energy,
                    cycles=cycles,
                    per_workload_edp=tuple(per_layer),
                )
            )
    return result


DEFAULT_GLB_SWEEP_BYTES: Tuple[int, ...] = (
    32 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
)


def sweep_glb_sizes(
    workloads: Sequence[Tuple[Workload, int]],
    kinds: Sequence[Union[str, MapspaceKind]] = (
        MapspaceKind.PFM,
        MapspaceKind.RUBY_S,
    ),
    glb_bytes_options: Sequence[int] = DEFAULT_GLB_SWEEP_BYTES,
    mesh_x: int = 14,
    mesh_y: int = 12,
    constraints: Optional[ConstraintSet] = None,
    max_evaluations: int = 2_000,
    patience: Optional[int] = 500,
    seed: Optional[int] = None,
    restarts: int = 1,
    use_batch: bool = True,
    batch_size: int = 512,
) -> SweepResult:
    """Co-design along the buffer axis: sweep the global-buffer capacity.

    Complements the PE-array sweep of Figs. 13/14 — the other lever an
    architect trades against EDP. Points reuse :class:`DesignPoint`; the
    GLB size is recoverable from the area (monotone) and the point label.
    """
    rng = make_rng(seed)
    result = SweepResult()
    for glb_bytes in glb_bytes_options:
        arch = eyeriss_like(
            mesh_x,
            mesh_y,
            glb_bytes=glb_bytes,
            name=f"eyeriss-like-{mesh_x}x{mesh_y}-glb{glb_bytes // 1024}k",
        )
        area = estimate_area_mm2(arch)
        for kind in kinds:
            energy, cycles, per_layer = evaluate_network(
                arch,
                workloads,
                kind,
                constraints=constraints,
                max_evaluations=max_evaluations,
                patience=patience,
                seed=rng,
                restarts=restarts,
                use_batch=use_batch,
                batch_size=batch_size,
            )
            result.points.append(
                DesignPoint(
                    mesh_x=mesh_x,
                    mesh_y=mesh_y,
                    kind=MapspaceKind(kind),
                    area_mm2=area,
                    energy_pj=energy,
                    cycles=cycles,
                    per_workload_edp=tuple(per_layer),
                    label=f"glb{glb_bytes // 1024}k",
                )
            )
    return result

"""The Mapper facade: one call from (architecture, workload) to a mapping.

Ties together the three Timeloop subproblems — mapspace generation, search,
and cost modelling — behind a single configuration object. This is the
primary entry point of the library:

    >>> from repro import eyeriss_like, ConvLayer, find_best_mapping
    >>> arch = eyeriss_like()
    >>> layer = ConvLayer("conv", c=64, m=64, p=56, q=56, r=3, s=3)
    >>> result = find_best_mapping(arch, layer.workload(), kind="ruby-s")
    >>> result.best.edp  # doctest: +SKIP
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro import obs
from repro.arch.spec import Architecture
from repro.energy.table import EnergyTable
from repro.exceptions import SearchError
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.factory import make_mapspace
from repro.mapspace.generator import MapspaceKind
from repro.model.evaluator import Evaluator
from repro.problem.workload import Workload
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticSearch
from repro.search.random_search import RandomSearch
from repro.search.result import SearchResult


@dataclass(frozen=True)
class MapperConfig:
    """Configuration for a :class:`Mapper` run.

    Attributes:
        kind: mapspace variant ("pfm", "ruby", "ruby-s", "ruby-t").
        objective: "edp" (paper default), "energy", or "delay".
        strategy: "random" (Timeloop-style), "exhaustive", "branch-bound"
            (exact, with subtree pruning), "genetic", or "annealing".
        max_evaluations: budget for the random strategy.
        patience: consecutive-non-improving termination (random strategy);
            the paper uses 3000.
        seed: RNG seed for reproducibility.
        constraints: dataflow constraints applied to the mapspace.
        use_batch: price candidates through the vectorized batch engine
            when it supports the triple (bit-exact; falls back to the
            scalar evaluator otherwise).
        batch_size: candidates per packed batch on the batch path.
        workers: process count for the branch-bound strategy (subtree
            work-sharing with a shared incumbent; results stay
            bit-identical to the serial walk). Other strategies ignore it.
        start_method: multiprocessing start method override for
            ``workers > 1`` ("fork" or "spawn"; auto-laddered when None).
    """

    kind: Union[str, MapspaceKind] = MapspaceKind.RUBY_S
    objective: str = "edp"
    strategy: str = "random"
    max_evaluations: int = 10_000
    patience: Optional[int] = 1_000
    seed: Optional[int] = None
    constraints: Optional[ConstraintSet] = None
    use_batch: bool = True
    batch_size: int = 512
    workers: int = 1
    start_method: Optional[str] = None


class Mapper:
    """Find good mappings of a workload onto an architecture.

    Args:
        arch: the accelerator.
        workload: the tensor operation.
        config: search configuration (defaults to :class:`MapperConfig`).
        energy_table: optional pre-built energy table (ignored when an
            ``evaluator`` is injected — it already owns one).
        evaluator: optional pre-built evaluator for this exact
            (arch, workload) pair. Long-lived drivers — the mapper
            service — inject one carrying a shared
            :class:`~repro.model.eval_cache.EvaluationCache`, so repeated
            requests hit the cached fast path instead of re-pricing.
        batch_engine: optional pre-built (or shared)
            :class:`~repro.model.batch.BatchEvaluator` handed through to
            the batch-capable searchers; must have been built against
            this mapper's mapspace layout.
    """

    def __init__(
        self,
        arch: Architecture,
        workload: Workload,
        config: Optional[MapperConfig] = None,
        energy_table: Optional[EnergyTable] = None,
        evaluator: Optional[Evaluator] = None,
        batch_engine=None,
    ) -> None:
        self.arch = arch
        self.workload = workload
        self.config = config or MapperConfig()
        self.evaluator = (
            evaluator
            if evaluator is not None
            else Evaluator(arch, workload, energy_table)
        )
        self.batch_engine = batch_engine
        self.mapspace = make_mapspace(
            arch, workload, self.config.kind, self.config.constraints
        )

    def run(self, seed: Optional[Union[int, random.Random]] = None) -> SearchResult:
        """Run the configured search; ``seed`` overrides the config seed."""
        with obs.trace(
            "mapper.run",
            strategy=self.config.strategy,
            kind=MapspaceKind(self.config.kind).value,
            objective=self.config.objective,
            workload=self.workload.name,
        ):
            return self._run(seed)

    def _run(
        self, seed: Optional[Union[int, random.Random]] = None
    ) -> SearchResult:
        effective_seed = seed if seed is not None else self.config.seed
        strategy = self.config.strategy
        if strategy == "random":
            return RandomSearch(
                self.mapspace,
                self.evaluator,
                objective=self.config.objective,
                max_evaluations=self.config.max_evaluations,
                patience=self.config.patience,
                seed=effective_seed,
                use_batch=self.config.use_batch,
                batch_size=self.config.batch_size,
                batch_engine=self.batch_engine,
            ).run()
        if strategy == "exhaustive":
            return ExhaustiveSearch(
                self.mapspace,
                self.evaluator,
                objective=self.config.objective,
                use_batch=self.config.use_batch,
                batch_size=self.config.batch_size,
                batch_engine=self.batch_engine,
            ).run()
        if strategy == "branch-bound":
            from repro.search.branch_bound import BranchBoundSearch

            return BranchBoundSearch(
                self.mapspace,
                self.evaluator,
                objective=self.config.objective,
                seed=effective_seed,
                use_batch=self.config.use_batch,
                batch_size=self.config.batch_size,
                workers=self.config.workers,
                start_method=self.config.start_method,
            ).run()
        if strategy == "genetic":
            return GeneticSearch(
                self.mapspace,
                self.evaluator,
                objective=self.config.objective,
                seed=effective_seed,
                use_batch=self.config.use_batch,
                batch_size=self.config.batch_size,
                batch_engine=self.batch_engine,
            ).run()
        if strategy == "annealing":
            from repro.search.annealing import SimulatedAnnealing

            return SimulatedAnnealing(
                self.mapspace,
                self.evaluator,
                objective=self.config.objective,
                steps=self.config.max_evaluations,
                seed=effective_seed,
                use_batch=self.config.use_batch,
                batch_size=self.config.batch_size,
                batch_engine=self.batch_engine,
            ).run()
        raise SearchError(
            f"unknown strategy {strategy!r}; use random, exhaustive, "
            f"branch-bound, genetic, or annealing"
        )


def find_best_mapping(
    arch: Architecture,
    workload: Workload,
    kind: Union[str, MapspaceKind] = MapspaceKind.RUBY_S,
    objective: str = "edp",
    max_evaluations: int = 10_000,
    patience: Optional[int] = 1_000,
    seed: Optional[int] = None,
    constraints: Optional[ConstraintSet] = None,
    strategy: str = "random",
    use_batch: bool = True,
    batch_size: int = 512,
    workers: int = 1,
    start_method: Optional[str] = None,
) -> SearchResult:
    """One-call mapping search (see :class:`MapperConfig` for parameters)."""
    config = MapperConfig(
        kind=kind,
        objective=objective,
        strategy=strategy,
        max_evaluations=max_evaluations,
        patience=patience,
        seed=seed,
        constraints=constraints,
        use_batch=use_batch,
        batch_size=batch_size,
        workers=workers,
        start_method=start_method,
    )
    return Mapper(arch, workload, config).run()

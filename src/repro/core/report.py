"""Plain-text tabular reports for experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 4 significant digits; everything else with
    ``str``. Used by the benchmark harnesses to print the same rows/series
    the paper's tables and figures report.
    """
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

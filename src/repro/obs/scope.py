"""Ambient observability scope (mirrors ``campaign_scope``).

Instrumented code — evaluators, searchers, the batch engine, campaign
workers — calls the module-level helpers (:func:`inc`, :func:`observe`,
:func:`set_gauge`, :func:`trace`) unconditionally. With no scope active
they are near-free no-ops (one global read and a ``None`` check), so
uninstrumented runs pay nothing measurable; entering :func:`obs_scope`
routes them to a registry and (optionally) a tracer without threading
objects through every call signature:

    with obs_scope(trace_path="run.trace.jsonl") as obs:
        result = random_search(space, evaluator)
    print(obs.registry.to_prometheus())

Scopes nest like :func:`repro.search.campaign.campaign_scope`: the
innermost wins, and ``obs_scope()`` with no arguments enables metrics
into the process-wide default registry.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer


@dataclass
class ObsContext:
    """What an active scope routes to: a registry plus optional tracer."""

    registry: MetricsRegistry
    tracer: Optional[Tracer] = None


_ACTIVE: Optional[ObsContext] = None

# A single reusable no-op context manager for inactive trace() calls —
# nullcontext is stateless, so sharing one instance is safe and keeps
# the disabled path allocation-free.
_NULL_SPAN = nullcontext(None)


def active_obs() -> Optional[ObsContext]:
    """The context installed by the innermost :func:`obs_scope`, or None."""
    return _ACTIVE


@contextmanager
def obs_scope(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> Iterator[ObsContext]:
    """Install an ambient observability context for the ``with`` body.

    Args:
        registry: metrics destination; defaults to the process-wide
            registry (:func:`repro.obs.metrics.default_registry`).
        tracer: span destination; caller owns its lifecycle.
        trace_path: convenience — build (and close on exit) a
            :class:`~repro.obs.tracing.Tracer` writing JSONL here.
            Mutually exclusive with ``tracer``.
    """
    global _ACTIVE
    if tracer is not None and trace_path is not None:
        raise ValueError("pass either tracer or trace_path, not both")
    resolved_registry = registry if registry is not None else default_registry()
    # The owned tracer feeds span durations back into the same registry
    # (span.duration_seconds), so a bare trace_path gets both views.
    owned_tracer = (
        Tracer(trace_path, registry=resolved_registry)
        if trace_path is not None
        else None
    )
    context = ObsContext(
        registry=resolved_registry,
        tracer=tracer if tracer is not None else owned_tracer,
    )
    previous = _ACTIVE
    _ACTIVE = context
    try:
        yield context
    finally:
        _ACTIVE = previous
        if owned_tracer is not None:
            owned_tracer.close()


# -- no-op-when-inactive instrumentation helpers --------------------------


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a counter in the ambient registry (no-op when inactive)."""
    context = _ACTIVE
    if context is not None:
        context.registry.counter(name).inc(amount, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge in the ambient registry (no-op when inactive)."""
    context = _ACTIVE
    if context is not None:
        context.registry.gauge(name).set(value, **labels)


def observe(
    name: str, value: float, buckets: Optional[Any] = None, **labels: Any
) -> None:
    """Record a histogram observation (no-op when inactive).

    ``buckets`` overrides the instrument's bucket grid on first use
    (ignored if the histogram already exists — buckets are fixed at
    construction so cross-process merges never have to rebin). Every
    caller observing one series should pass the same grid.
    """
    context = _ACTIVE
    if context is not None:
        if buckets is not None:
            histogram = context.registry.histogram(name, buckets=buckets)
        else:
            histogram = context.registry.histogram(name)
        histogram.observe(value, **labels)


def trace(name: str, **attrs: Any):
    """Open an ambient span: ``with trace("search.step", i=3): ...``.

    Yields the live :class:`~repro.obs.tracing.Span` when a tracer is
    active, or ``None`` (via a shared null context) otherwise — callers
    must tolerate a ``None`` span if they use the yielded value.
    """
    context = _ACTIVE
    if context is None or context.tracer is None:
        return _NULL_SPAN
    return context.tracer.span(name, **attrs)

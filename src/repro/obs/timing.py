"""Shared run timing for search drivers.

Every searcher used to hand-roll the same four lines — snapshot the
evaluation-cache counters, ``started = time.perf_counter()``, run,
``elapsed = time.perf_counter() - started`` — and then hand-build its
stats dict. :class:`SearchTimer` is that block as one reusable context
manager: it owns the monotonic clock, the cache baseline, the run's
:class:`~repro.obs.progress.ProgressTracker`, and the
``SearchResult.stats`` payload (``elapsed_s``, ``evals_per_sec``, plus
``cache``/``batch``/``bnb``/``progress`` sub-dicts), and it mirrors the
run into the ambient metrics registry when an
:func:`~repro.obs.scope.obs_scope` is active:

    timer = SearchTimer(evaluator, driver="random", total_units=budget)
    with timer:
        ...timer.progress.advance(batch_size) as work completes...
    stats = timer.stats(num_evaluated, engine=batch_engine)

Because the timer *always* owns a tracker and *always* emits the
``progress`` (and zeroed ``bnb``) sub-dicts, every searcher's stats
payload has an identical top-level key set by construction — there is
no per-driver schema to drift (the stats-schema test pins this).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.obs import scope as _scope
from repro.obs.metrics import TIMING_BUCKETS
from repro.obs.progress import ProgressTracker


def empty_batch_stats() -> Dict[str, Any]:
    """The all-zero ``batch`` stats sub-dict of a scalar (engine-less) run.

    Same key set as :meth:`repro.model.batch.BatchEvaluator.stats_payload`,
    so ``SearchResult.stats["batch"]`` has a uniform schema across every
    searcher and path.
    """
    return {
        "batches": 0,
        "candidates": 0,
        "pruned": 0,
        "prune_rate": 0.0,
        "fallback": 0,
    }


def empty_bnb_stats() -> Dict[str, Any]:
    """The all-zero ``bnb`` stats sub-dict of a non-tree run.

    Same key set as :func:`repro.search.branch_bound._bnb_stats` (the
    builder branch-and-bound overwrites this with), kept here so
    :meth:`SearchTimer.stats` can emit the sub-dict for every searcher
    without importing the search layer — the stats-schema test asserts
    the two key sets stay identical.
    """
    return {
        "nodes_expanded": 0,
        "leaves_deferred": 0,
        "subtrees_pruned": 0,
        "infeasible_subtrees": 0,
        "root_bound": None,
        "bound_tightness": None,
        "warm_start_metric": None,
    }


class SearchTimer:
    """Times one search run and builds its throughput-stats payload.

    Args:
        evaluator: the run's evaluator; its attached cache (if any) is
            baselined on construction so shared caches report per-run
            deltas, exactly like the old hand-rolled blocks.
        driver: label attached to the mirrored registry metrics
            (``search.evaluations{driver="random"}`` etc.) and to the
            run's progress tracker.
        total_units: total-work estimate handed to the owned
            :class:`~repro.obs.progress.ProgressTracker` (``None`` =
            unknown). Searchers advance ``timer.progress`` as work
            completes; exiting the timer finishes the tracker (snapping
            the fraction to 1.0 when a total is known).
    """

    def __init__(
        self,
        evaluator: Any = None,
        driver: str = "search",
        total_units: Optional[float] = None,
    ) -> None:
        self.driver = driver
        self.cache = getattr(evaluator, "cache", None)
        self.cache_baseline = (
            (self.cache.hits, self.cache.misses)
            if self.cache is not None
            else (0, 0)
        )
        self.elapsed_s: float = 0.0
        self._started: Optional[float] = None
        self.progress = ProgressTracker(driver=driver, total_units=total_units)

    def __enter__(self) -> "SearchTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started is not None:
            self.elapsed_s = time.perf_counter() - self._started
        if exc_type is None:
            self.progress.finish()

    def stats(
        self, num_evaluated: int, engine: Any = None
    ) -> Dict[str, Any]:
        """Build the ``SearchResult.stats`` payload for this run.

        Args:
            num_evaluated: mappings drawn during the run.
            engine: the run's :class:`~repro.model.batch.BatchEvaluator`,
                if one was used. The ``batch``, ``bnb``, and ``progress``
                sub-dicts are **always** present with their full key
                sets — all-zero/empty on runs that didn't exercise them —
                so consumers (CLI footers, campaign aggregation) never
                have to special-case key existence.
        """
        from repro.search.result import throughput_stats

        payload = throughput_stats(
            num_evaluated, self.elapsed_s, self.cache, self.cache_baseline
        )
        payload["batch"] = (
            engine.stats_payload() if engine is not None else empty_batch_stats()
        )
        payload["bnb"] = empty_bnb_stats()
        payload["progress"] = self.progress.stats_payload()
        self._publish(payload, num_evaluated)
        return payload

    def _publish(self, payload: Dict[str, Any], num_evaluated: int) -> None:
        """Mirror the run into the ambient registry (no-op when inactive)."""
        if _scope.active_obs() is None:
            return
        driver = self.driver
        _scope.inc("search.runs", driver=driver)
        _scope.inc("search.evaluations", num_evaluated, driver=driver)
        _scope.observe(
            "search.run_seconds",
            self.elapsed_s,
            buckets=TIMING_BUCKETS,
            driver=driver,
        )
        cache = payload.get("cache")
        if cache is not None:
            _scope.inc("cache.hits", cache["hits"], driver=driver)
            _scope.inc("cache.misses", cache["misses"], driver=driver)
        # Batch-engine counters are NOT mirrored here: the engine itself
        # publishes live, unlabeled ``batch.*`` counters per batch (see
        # BatchEvaluator.evaluate_batch), and re-adding the run aggregate
        # would double-count the family. The per-run aggregate still rides
        # in the returned payload's ``batch`` sub-dict.

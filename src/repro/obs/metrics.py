"""Process-wide metrics registry: counters, gauges, and histograms.

Ruby's value claim is quantitative (EDP deltas, mapspace expansion
factors, search throughput), so the runtime needs one uniform way to
count things across the scalar, cached, batched, parallel, and campaign
execution paths. This module is that substrate:

* **Counter** — monotonically increasing totals (evaluations, cache hits,
  pruned candidates). Supports labeled series (``driver="random"``).
* **Gauge** — last-written values (best EDP so far, queue depth).
* **Histogram** — distributions over fixed log-spaced buckets (batch
  latencies, span durations). Buckets are fixed at construction so
  snapshots from different processes merge without rebinning.

Everything is dependency-free, thread-safe (one lock per registry), and
snapshot-oriented: :meth:`MetricsRegistry.snapshot` produces a plain dict
that pickles across process pools, and :meth:`MetricsRegistry.merge`
folds a child snapshot back into a parent registry — the aggregation
path :mod:`repro.search.parallel` uses for per-worker metrics.

Exporters: :meth:`MetricsRegistry.to_json` (stable machine-readable
payload for ``--metrics-out``) and :meth:`MetricsRegistry.to_prometheus`
(the text exposition format, for scraping or eyeballing).
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

#: Default histogram buckets: log-spaced, two per decade, 10 us .. 100 s.
#: Chosen to straddle everything we time — a single scalar evaluation
#: (~ms), a packed batch (~10 ms), and a whole campaign job (~s-min).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 12) for exponent in range(-10, 5)
)

#: Finer buckets for duration series: two per decade, 100 ns .. 100 s.
#: Sub-10 µs work — cache probes, single spans, per-batch slices — all
#: collapsed into DEFAULT_BUCKETS' lowest bucket; duration histograms
#: (``span.duration_seconds``, ``search.run_seconds``) use this grid
#: instead. Every observer of one series must pass the same buckets or
#: cross-process snapshot merges will (deliberately) refuse to rebin.
TIMING_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 16) for exponent in range(-14, 5)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (single left-to-right scan, so
    ``\\\\n`` decodes to backslash + ``n``, not a newline)."""
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append("\n" if nxt == "n" else nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _label_text(key: LabelKey) -> str:
    """Prometheus-style ``{a="x",b="y"}`` rendering ('' when unlabeled)."""
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _metric_ident(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{cleaned}"


class Counter:
    """A monotonically increasing metric family with labeled series."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        with self._lock:
            return sum(self._series.values())


class Gauge:
    """A last-write-wins metric family with labeled series."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._series.get(_label_key(labels))


class Histogram:
    """A fixed-bucket histogram family with labeled series.

    Buckets are upper bounds (``le`` semantics); an implicit +inf bucket
    catches the overflow. ``observe`` is O(len(buckets)) with a linear
    scan — bucket counts are cumulative only at export time, which keeps
    merging trivial (element-wise addition).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty list")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._lock = lock
        # Per label set: (per-bucket counts incl. +inf slot, sum, count).
        self._series: Dict[LabelKey, Dict[str, Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            series["counts"][slot] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def stats(self, **labels: Any) -> Dict[str, Any]:
        """(count, sum, mean) for one labeled series (zeros when unseen)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return {"count": 0, "sum": 0.0, "mean": 0.0}
            count = series["count"]
            return {
                "count": count,
                "sum": series["sum"],
                "mean": (series["sum"] / count) if count else 0.0,
            }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    One process-wide instance (:func:`default_registry`) backs the
    ambient :func:`repro.obs.scope.obs_scope`; search workers build
    private registries and ship snapshots back for merging.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    # -- metric construction ---------------------------------------------

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}"
                )
            return metric
        created = factory()
        with self._lock:
            return self._metrics.setdefault(name, created)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help, self._lock), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, self._lock), "gauge"
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, self._lock, buckets), "histogram"
        )

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- snapshot / reset / merge ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of every series (picklable, mergeable)."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name, metric in self._metrics.items():
                if metric.kind == "counter":
                    out["counters"][name] = {
                        _label_text(k): v for k, v in metric._series.items()
                    }
                elif metric.kind == "gauge":
                    out["gauges"][name] = {
                        _label_text(k): v for k, v in metric._series.items()
                    }
                else:
                    out["histograms"][name] = {
                        "buckets": list(metric.buckets),
                        "series": {
                            _label_text(k): {
                                "counts": list(s["counts"]),
                                "sum": s["sum"],
                                "count": s["count"],
                            }
                            for k, s in metric._series.items()
                        },
                    }
        return out

    def reset(self) -> None:
        """Drop every metric (names and values)."""
        with self._lock:
            self._metrics.clear()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram bucket counts add; gauges take the
        snapshot's value (last write wins). Histograms merge only when
        bucket bounds agree — mixed bounds raise rather than rebin.
        """
        for name, series in snapshot.get("counters", {}).items():
            counter = self.counter(name)
            for label_text, value in series.items():
                key = _parse_label_text(label_text)
                with self._lock:
                    counter._series[key] = counter._series.get(key, 0.0) + value
        for name, series in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            for label_text, value in series.items():
                key = _parse_label_text(label_text)
                with self._lock:
                    gauge._series[key] = value
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(
                name, buckets=tuple(payload["buckets"])
            )
            if list(histogram.buckets) != list(payload["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge differing buckets"
                )
            for label_text, incoming in payload["series"].items():
                key = _parse_label_text(label_text)
                with self._lock:
                    series = histogram._series.get(key)
                    if series is None:
                        series = {
                            "counts": [0] * (len(histogram.buckets) + 1),
                            "sum": 0.0,
                            "count": 0,
                        }
                        histogram._series[key] = series
                    for i, count in enumerate(incoming["counts"]):
                        series["counts"][i] += count
                    series["sum"] += incoming["sum"]
                    series["count"] += incoming["count"]

    # -- exporters --------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The snapshot under a versioned envelope (``--metrics-out``)."""
        return {"schema": 1, "metrics": self.snapshot()}

    def to_prometheus(self) -> str:
        """Text exposition format (counters get the ``_total`` suffix)."""
        lines = []
        snapshot = self.snapshot()
        for name in sorted(snapshot["counters"]):
            ident = _metric_ident(name) + "_total"
            lines.append(f"# TYPE {ident} counter")
            for label_text, value in sorted(snapshot["counters"][name].items()):
                lines.append(f"{ident}{label_text} {_format_value(value)}")
        for name in sorted(snapshot["gauges"]):
            ident = _metric_ident(name)
            lines.append(f"# TYPE {ident} gauge")
            for label_text, value in sorted(snapshot["gauges"][name].items()):
                lines.append(f"{ident}{label_text} {_format_value(value)}")
        for name in sorted(snapshot["histograms"]):
            ident = _metric_ident(name)
            payload = snapshot["histograms"][name]
            lines.append(f"# TYPE {ident} histogram")
            for label_text, series in sorted(payload["series"].items()):
                cumulative = 0
                for bound, count in zip(payload["buckets"], series["counts"]):
                    cumulative += count
                    le_labels = _merge_le(label_text, bound)
                    lines.append(f"{ident}_bucket{le_labels} {cumulative}")
                cumulative += series["counts"][-1]
                lines.append(
                    f"{ident}_bucket{_merge_le(label_text, '+Inf')} {cumulative}"
                )
                lines.append(
                    f"{ident}_sum{label_text} {_format_value(series['sum'])}"
                )
                lines.append(f"{ident}_count{label_text} {series['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _merge_le(label_text: str, bound: Any) -> str:
    """Insert the ``le`` label into an existing label-text block."""
    le = f'le="{bound}"'
    if not label_text:
        return "{" + le + "}"
    return label_text[:-1] + "," + le + "}"


_LABEL_PAIR_RE = re.compile(r'([A-Za-z0-9_.]+)="((?:[^"\\]|\\.)*)"')


def _parse_label_text(label_text: str) -> LabelKey:
    """Invert :func:`_label_text` (snapshot keys round-trip through it).

    Values are matched as quoted strings with escape-aware regexes
    rather than split on commas, so label values containing commas,
    quotes, backslashes, or newlines survive the snapshot/merge cycle.
    """
    if not label_text:
        return ()
    inner = label_text.strip()[1:-1]
    return tuple(
        (match.group(1), _unescape_label_value(match.group(2)))
        for match in _LABEL_PAIR_RE.finditer(inner)
    )


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (what a bare ``obs_scope()`` installs)."""
    return _DEFAULT_REGISTRY

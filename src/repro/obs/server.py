"""Live telemetry over HTTP: ``/metrics``, ``/progress``, ``/flame``.

The ROADMAP's mapper-as-a-service direction needs the service's missing
sense: what is this process doing *right now*? :class:`ObsServer` is a
dependency-free stdlib :class:`~http.server.ThreadingHTTPServer` run as
a daemon thread inside any search / experiment / campaign process (the
CLI's ``--serve-metrics PORT`` flag), exposing read-only views of the
in-process observability state:

===============  =========================================================
route            payload
===============  =========================================================
``/healthz``     ``ok`` (liveness probe)
``/metrics``     Prometheus text exposition of the scoped registry
``/metrics.json``  the ``to_json()`` envelope (``{"schema": 1, ...}``)
``/progress``    JSON: every live :class:`ProgressTracker` snapshot —
                 fraction, ETA, throughput, convergence timeline;
                 ``?job=<id>`` filters to trackers owned by one job
``/flame``       flame-style text rollup of the in-memory span stream
===============  =========================================================

Handler registration is factored into a :class:`RouteSet` — a mapping
from ``(method, path)`` to plain callables over :class:`RouteRequest` —
so other servers can mount these routes next to their own instead of
duplicating the HTTP plumbing. :mod:`repro.service.server` does exactly
that: one :class:`ObsServer` carries both the telemetry routes above and
the ``/v1/*`` mapping-request API.

Everything the obs routes serve is a snapshot read of already-thread-safe
structures — the server never blocks or mutates the search it observes,
and when the flag is off no server (and no thread) exists at all,
preserving the layer's zero-cost-when-off rule. The server binds
``127.0.0.1`` by default and serves whatever the process already
collects; it performs no authentication, so bind wider interfaces
deliberately.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Pattern, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import active_trackers
from repro.obs.tracing import Tracer, flame_summary

logger = logging.getLogger(__name__)

#: Versioned envelope field for the ``/progress`` payload.
PROGRESS_SCHEMA = 1

#: Content type for Prometheus text exposition (format version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def progress_payload(job: Optional[str] = None) -> Dict[str, Any]:
    """The ``/progress`` JSON body: one snapshot per live tracker.

    Schema (documented in docs/observability.md): ``{"schema": 1,
    "time": <epoch>, "searches": [ProgressTracker.snapshot(), ...]}``.
    ``job`` restricts the snapshots to trackers owned by that job id
    (see :func:`repro.obs.progress.progress_owner`), so the service can
    serve per-job progress without cross-contaminating concurrent runs.
    """
    return {
        "schema": PROGRESS_SCHEMA,
        "time": time.time(),
        "searches": [
            tracker.snapshot() for tracker in active_trackers(owner=job)
        ],
    }


# ------------------------------------------------------------------ routing


@dataclass
class RouteRequest:
    """One parsed HTTP request handed to a route callable."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Regex match for pattern routes (named groups carry path params).
    match: Optional["re.Match[str]"] = None

    def param(self, name: str) -> str:
        """A named path parameter captured by a pattern route."""
        if self.match is None:
            raise KeyError(f"route has no path parameters (wanted {name!r})")
        return self.match.group(name)

    def json(self) -> Any:
        """The request body parsed as JSON (raises ``ValueError`` on bad
        bytes — HTTP-facing callers should map that to a 400)."""
        return json.loads(self.body.decode("utf-8"))


@dataclass
class RouteResponse:
    """What a route callable returns; rendered by the request handler."""

    status: int = 200
    content_type: str = "application/json"
    body: Any = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "RouteResponse":
        return cls(
            status=status,
            content_type="application/json",
            body=json.dumps(payload),
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls,
        body: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "RouteResponse":
        return cls(status=status, content_type=content_type, body=body)


RouteHandler = Callable[[RouteRequest], RouteResponse]


class RouteSet:
    """Registered HTTP routes: exact paths plus regex patterns.

    Exact routes win over patterns; patterns are tried in registration
    order. Methods are matched exactly (``GET`` / ``POST`` / ``DELETE``),
    so registering only ``GET /metrics`` leaves ``POST /metrics`` a 405.
    """

    def __init__(self) -> None:
        self._exact: Dict[Tuple[str, str], RouteHandler] = {}
        self._patterns: List[Tuple[str, Pattern[str], RouteHandler]] = []

    def add(self, method: str, path: str, handler: RouteHandler) -> "RouteSet":
        """Register an exact-path route (idempotent overwrite)."""
        self._exact[(method.upper(), path)] = handler
        return self

    def add_pattern(
        self, method: str, pattern: str, handler: RouteHandler
    ) -> "RouteSet":
        """Register a regex route; named groups become path parameters
        (read back via :meth:`RouteRequest.param`). The pattern is
        anchored on both ends."""
        compiled = re.compile(pattern if pattern.endswith("$") else pattern + "$")
        self._patterns.append((method.upper(), compiled, handler))
        return self

    def merge(self, other: "RouteSet") -> "RouteSet":
        """Fold ``other``'s routes into this set (other wins on clashes)."""
        self._exact.update(other._exact)
        self._patterns.extend(other._patterns)
        return self

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[RouteHandler], Optional["re.Match[str]"], bool]:
        """``(handler, match, path_known)`` for one request.

        ``path_known`` is True when the path exists under *some* method —
        the request handler uses it to answer 405 instead of 404.
        """
        method = method.upper()
        handler = self._exact.get((method, path))
        if handler is not None:
            return handler, None, True
        path_known = any(known == path for (_, known) in self._exact)
        for registered_method, compiled, candidate in self._patterns:
            match = compiled.match(path)
            if match is None:
                continue
            path_known = True
            if registered_method == method:
                return candidate, match, True
        return None, None, path_known


def obs_routes(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> RouteSet:
    """The telemetry route bundle every obs-capable server mounts.

    Factored out of the request handler so the mapper service can serve
    ``/healthz`` + ``/metrics`` + ``/progress`` on the same listener as
    its ``/v1/*`` API instead of running a second server.
    """
    routes = RouteSet()

    def healthz(_request: RouteRequest) -> RouteResponse:
        return RouteResponse.text("ok\n")

    def metrics(_request: RouteRequest) -> RouteResponse:
        return RouteResponse.text(
            registry.to_prometheus(), content_type=PROMETHEUS_CONTENT_TYPE
        )

    def metrics_json(_request: RouteRequest) -> RouteResponse:
        return RouteResponse.json(registry.to_json())

    def progress(request: RouteRequest) -> RouteResponse:
        return RouteResponse.json(
            progress_payload(job=request.query.get("job"))
        )

    def flame(_request: RouteRequest) -> RouteResponse:
        if tracer is None:
            return RouteResponse.text("(no tracer attached)\n")
        return RouteResponse.text(flame_summary(tracer.snapshot_records()) + "\n")

    routes.add("GET", "/", healthz)
    routes.add("GET", "/healthz", healthz)
    routes.add("GET", "/metrics", metrics)
    routes.add("GET", "/metrics.json", metrics_json)
    routes.add("GET", "/progress", progress)
    routes.add("GET", "/flame", flame)
    return routes


class _RoutingRequestHandler(BaseHTTPRequestHandler):
    """Dispatches requests through the server's :class:`RouteSet`."""

    server_version = "repro-obs"

    # The handler reaches its routes through self.server
    # (ThreadingHTTPServer instantiates handlers per request).

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        try:
            parts = urlsplit(self.path)
            path = parts.path.rstrip("/") or "/"
            query = {
                key: values[-1]
                for key, values in parse_qs(parts.query).items()
            }
            handler, match, path_known = self.server.routes.resolve(
                method, path
            )
            if handler is None:
                if path_known:
                    self._send(
                        RouteResponse.text("method not allowed\n", status=405)
                    )
                else:
                    self._send(RouteResponse.text("not found\n", status=404))
                return
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            request = RouteRequest(
                method=method, path=path, query=query, body=body, match=match
            )
            self._send(handler(request))
        except Exception:  # pragma: no cover - defensive: never kill the probe
            logger.exception("obs server failed serving %s", self.path)
            try:
                self._send(RouteResponse.text("error\n", status=500))
            except OSError:
                pass

    def _send(self, response: RouteResponse) -> None:
        body = response.body
        payload = body.encode("utf-8") if isinstance(body, str) else bytes(body)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes are high-frequency noise; keep them off stderr.
        logger.debug("obs server: " + format, *args)


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Searches outlive sockets; rebinding the same port across runs must
    # not fail on TIME_WAIT.
    allow_reuse_address = True

    routes: RouteSet


class ObsServer:
    """The live-telemetry endpoint bundle, run as a daemon thread.

    Args:
        registry: metrics source for ``/metrics`` / ``/metrics.json``
            (typically the registry the ambient scope installs).
        tracer: span source for ``/flame``; ``None`` serves a
            placeholder body.
        host: bind address (loopback by default).
        port: TCP port; ``0`` picks an ephemeral port — read the bound
            one back from :attr:`port` (the CLI prints the resolved URL
            so tooling can scrape it).
        extra_routes: additional :class:`RouteSet` mounted on the same
            listener (they win over the telemetry routes on a clash);
            how :class:`repro.service.server.MappingService` adds its
            ``/v1/*`` API.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_routes: Optional[RouteSet] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.routes = obs_routes(registry, tracer)
        if extra_routes is not None:
            self.routes.merge(extra_routes)
        self._requested = (host, int(port))
        self._httpd: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObsServer":
        """Bind and begin serving in a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        httpd = _ObsHTTPServer(self._requested, _RoutingRequestHandler)
        httpd.routes = self.routes
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def host(self) -> str:
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self._requested[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

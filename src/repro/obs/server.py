"""Live telemetry over HTTP: ``/metrics``, ``/progress``, ``/flame``.

The ROADMAP's mapper-as-a-service direction needs the service's missing
sense: what is this process doing *right now*? :class:`ObsServer` is a
dependency-free stdlib :class:`~http.server.ThreadingHTTPServer` run as
a daemon thread inside any search / experiment / campaign process (the
CLI's ``--serve-metrics PORT`` flag), exposing read-only views of the
in-process observability state:

===============  =========================================================
route            payload
===============  =========================================================
``/healthz``     ``ok`` (liveness probe)
``/metrics``     Prometheus text exposition of the scoped registry
``/metrics.json``  the ``to_json()`` envelope (``{"schema": 1, ...}``)
``/progress``    JSON: every live :class:`ProgressTracker` snapshot —
                 fraction, ETA, throughput, convergence timeline
``/flame``       flame-style text rollup of the in-memory span stream
===============  =========================================================

Everything is a snapshot read of already-thread-safe structures — the
server never blocks or mutates the search it observes, and when the flag
is off no server (and no thread) exists at all, preserving the layer's
zero-cost-when-off rule. The server binds ``127.0.0.1`` by default and
serves whatever the process already collects; it performs no
authentication, so bind wider interfaces deliberately.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import active_trackers
from repro.obs.tracing import Tracer, flame_summary

logger = logging.getLogger(__name__)

#: Versioned envelope field for the ``/progress`` payload.
PROGRESS_SCHEMA = 1

#: Content type for Prometheus text exposition (format version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def progress_payload() -> Dict[str, Any]:
    """The ``/progress`` JSON body: one snapshot per live tracker.

    Schema (documented in docs/observability.md): ``{"schema": 1,
    "time": <epoch>, "searches": [ProgressTracker.snapshot(), ...]}``.
    """
    return {
        "schema": PROGRESS_SCHEMA,
        "time": time.time(),
        "searches": [tracker.snapshot() for tracker in active_trackers()],
    }


class _ObsRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs to snapshot views; everything else is a 404/405."""

    server_version = "repro-obs"

    # The handler reaches its registry/tracer through self.server
    # (ThreadingHTTPServer instantiates handlers per request).

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/", "/healthz"):
                self._send(200, "text/plain; charset=utf-8", "ok\n")
            elif path == "/metrics":
                body = self.server.obs_registry.to_prometheus()
                self._send(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/metrics.json":
                body = json.dumps(self.server.obs_registry.to_json())
                self._send(200, "application/json", body)
            elif path == "/progress":
                body = json.dumps(progress_payload())
                self._send(200, "application/json", body)
            elif path == "/flame":
                tracer = self.server.obs_tracer
                if tracer is None:
                    body = "(no tracer attached)\n"
                else:
                    body = flame_summary(tracer.snapshot_records()) + "\n"
                self._send(200, "text/plain; charset=utf-8", body)
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except Exception:  # pragma: no cover - defensive: never kill the probe
            logger.exception("obs server failed serving %s", self.path)
            try:
                self._send(500, "text/plain; charset=utf-8", "error\n")
            except OSError:
                pass

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes are high-frequency noise; keep them off stderr.
        logger.debug("obs server: " + format, *args)


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Searches outlive sockets; rebinding the same port across runs must
    # not fail on TIME_WAIT.
    allow_reuse_address = True

    obs_registry: MetricsRegistry
    obs_tracer: Optional[Tracer]


class ObsServer:
    """The live-telemetry endpoint bundle, run as a daemon thread.

    Args:
        registry: metrics source for ``/metrics`` / ``/metrics.json``
            (typically the registry the ambient scope installs).
        tracer: span source for ``/flame``; ``None`` serves a
            placeholder body.
        host: bind address (loopback by default).
        port: TCP port; ``0`` picks an ephemeral port — read the bound
            one back from :attr:`port` (the CLI prints the resolved URL
            so tooling can scrape it).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self._requested = (host, int(port))
        self._httpd: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObsServer":
        """Bind and begin serving in a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        httpd = _ObsHTTPServer(self._requested, _ObsRequestHandler)
        httpd.obs_registry = self.registry
        httpd.obs_tracer = self.tracer
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def host(self) -> str:
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self._requested[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

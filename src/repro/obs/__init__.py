"""``repro.obs`` — dependency-free observability for the whole stack.

Three layers, all opt-in and near-free when disabled:

* **Metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges, and log-bucketed histograms with labeled series,
  snapshot/merge for cross-process aggregation, and Prometheus-text /
  JSON exporters.
* **Tracing** (:mod:`repro.obs.tracing`) — nested spans with monotonic
  durations, streamed as JSONL in the :mod:`repro.io.journal` framing,
  plus flame-style summaries (``repro obs summarize``).
* **Scope** (:mod:`repro.obs.scope`) — the ambient ``obs_scope()``
  context (mirroring ``campaign_scope``) behind the one-line helpers
  ``inc`` / ``observe`` / ``set_gauge`` / ``trace`` that instrumented
  code calls unconditionally.

:class:`~repro.obs.timing.SearchTimer` is the shared run-timing helper
every search driver uses to build ``SearchResult.stats``; it owns the
run's :class:`~repro.obs.progress.ProgressTracker` (totals, ETA,
convergence timeline). :class:`~repro.obs.server.ObsServer` serves the
live ``/metrics`` / ``/progress`` / ``/flame`` endpoints, and
:mod:`repro.obs.bench` keeps the benchmark-regression ledger.

See ``docs/observability.md`` for the metric-name and span taxonomy,
the live-endpoint routes, and the ledger format.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    TIMING_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.progress import (
    ProgressPrinter,
    ProgressTracker,
    active_trackers,
    current_progress_owner,
    empty_progress_stats,
    progress_owner,
)
from repro.obs.scope import (
    ObsContext,
    active_obs,
    inc,
    obs_scope,
    observe,
    set_gauge,
    trace,
)
from repro.obs.server import ObsServer
from repro.obs.timing import SearchTimer, empty_batch_stats, empty_bnb_stats
from repro.obs.tracing import (
    SPAN_REQUIRED_KEYS,
    Span,
    Tracer,
    flame_summary,
    read_trace,
    validate_span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "TIMING_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsContext",
    "ObsServer",
    "ProgressPrinter",
    "ProgressTracker",
    "SearchTimer",
    "active_trackers",
    "current_progress_owner",
    "progress_owner",
    "empty_batch_stats",
    "empty_bnb_stats",
    "empty_progress_stats",
    "Span",
    "SPAN_REQUIRED_KEYS",
    "Tracer",
    "active_obs",
    "default_registry",
    "flame_summary",
    "inc",
    "obs_scope",
    "observe",
    "read_trace",
    "set_gauge",
    "trace",
    "validate_span",
]

"""Benchmark regression ledger: normalize, record, compare.

The repo's performance story lives in three ad-hoc ``BENCH_*.json``
files with three divergent schemas and no history — a speedup shipped in
one PR can silently rot in the next. This module gives them one durable
trajectory:

* :func:`normalize_bench_payload` flattens any of the known benchmark
  payloads (``batch_eval``, ``branch_bound``, ``branch_bound_parallel``)
  into uniform ``(benchmark, case, metric, value, higher_is_better)``
  entries, keeping only the metrics that *mean* something for regression
  tracking (throughputs and wall-clocks, not counters like
  ``candidates`` whose drift is not a performance signal).
* :func:`record_benchmarks` appends one machine-tagged, schema-versioned
  record to the ``BENCH_HISTORY.jsonl`` ledger — journal framing
  (:class:`repro.io.journal.Journal`), so reads are torn-tail tolerant
  and the file is append-only history, never rewritten.
* :func:`compare_ledger` diffs the newest record against its baseline
  (the most recent earlier record from the same machine when one
  exists — cross-machine timing comparisons are noise) and flags any
  metric that moved past the threshold in the bad direction.

``repro bench record|compare`` is the CLI face; ``make bench-compare``
wires the compare gate into CI, exiting nonzero on a ≥20% regression.
"""

from __future__ import annotations

import os
import platform
import socket
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import BenchLedgerError
from repro.io.journal import Journal
from repro.io.serde import load_json

#: Ledger record schema version.
LEDGER_SCHEMA = 1

#: Default relative-change threshold: a metric that worsens by more than
#: this fraction of its baseline is a regression.
DEFAULT_THRESHOLD = 0.2

#: Per-benchmark regression-tracked metrics: ``metric -> higher_is_better``.
#: Counters (candidates, priced rows, units) are deliberately absent:
#: they characterize *what* ran, not how fast, and drift in them is a
#: correctness-review question rather than a performance regression.
_TRACKED_METRICS: Dict[str, Dict[str, bool]] = {
    "batch_eval": {
        "batch_mappings_per_sec": True,
        "scalar_mappings_per_sec": True,
        "speedup": True,
    },
    "branch_bound": {
        "branch_bound_s": False,
        "exhaustive_s": False,
        "speedup": True,
    },
    "branch_bound_parallel": {
        "parallel_s": False,
        "serial_s": False,
        "speedup": True,
    },
    # Mapper-service load profile (scripts/service_smoke.py): end-to-end
    # request latency quantiles (submit -> terminal, queue wait included)
    # and completed-search throughput under concurrent clients.
    "service_latency": {
        "p50_s": False,
        "p95_s": False,
        "throughput_rps": True,
    },
}


def machine_fingerprint() -> Dict[str, Any]:
    """Identity tag for a ledger record: timings only compare within one
    machine/python, so the baseline picker needs to know where a record
    came from."""
    return {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def normalize_bench_payload(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten one ``BENCH_*.json`` payload into uniform ledger entries.

    Unknown benchmarks contribute no entries (recorded sources still list
    them, so the omission is visible); cases missing a tracked metric are
    skipped silently — e.g. ``branch_bound``'s ``seed_stability`` case
    carries no wall-clock.
    """
    benchmark = payload.get("benchmark")
    tracked = _TRACKED_METRICS.get(benchmark, {})
    entries: List[Dict[str, Any]] = []
    for case, fields in sorted(payload.get("cases", {}).items()):
        if not isinstance(fields, dict):
            continue
        for metric, higher_is_better in sorted(tracked.items()):
            value = fields.get(metric)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            entries.append(
                {
                    "benchmark": benchmark,
                    "case": case,
                    "metric": metric,
                    "value": float(value),
                    "higher_is_better": higher_is_better,
                }
            )
    return entries


def record_benchmarks(
    paths: Sequence[Union[str, Path]],
    ledger_path: Union[str, Path],
    note: Optional[str] = None,
) -> Dict[str, Any]:
    """Normalize ``paths`` and append one record to the ledger.

    Returns the appended record. Raises :class:`BenchLedgerError` when
    no tracked metric survives normalization — an empty record would
    poison the baseline chain.
    """
    entries: List[Dict[str, Any]] = []
    sources: List[str] = []
    for path in paths:
        payload = load_json(path)
        sources.append(Path(path).name)
        entries.extend(normalize_bench_payload(payload))
    if not entries:
        raise BenchLedgerError(
            f"no tracked benchmark metrics found in {sources!r}"
        )
    record: Dict[str, Any] = {
        "kind": "bench",
        "schema": LEDGER_SCHEMA,
        "time": time.time(),
        "machine": machine_fingerprint(),
        "sources": sources,
        "entries": entries,
    }
    if note:
        record["note"] = note
    Journal(ledger_path).append(record)
    return record


@dataclass
class BenchDelta:
    """One metric's baseline-vs-current movement."""

    benchmark: str
    case: str
    metric: str
    baseline: float
    current: float
    higher_is_better: bool
    threshold: float

    @property
    def change(self) -> float:
        """Signed relative change, positive = better."""
        if self.baseline == 0:
            return 0.0
        raw = (self.current - self.baseline) / abs(self.baseline)
        return raw if self.higher_is_better else -raw

    @property
    def regressed(self) -> bool:
        return self.change < -self.threshold

    @property
    def improved(self) -> bool:
        return self.change > self.threshold

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.benchmark, self.case, self.metric)


@dataclass
class BenchComparison:
    """The outcome of :func:`compare_ledger`."""

    baseline_time: float
    current_time: float
    same_machine: bool
    deltas: List[BenchDelta]
    missing: List[Tuple[str, str, str]]  # in baseline, absent now
    added: List[Tuple[str, str, str]]  # new now, absent in baseline

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        return not self.regressions


def read_ledger(ledger_path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Bench records from the ledger, oldest first (journal framing:
    torn trailing lines are tolerated, foreign kinds skipped)."""
    path = Path(ledger_path)
    if not path.exists():
        return []
    return [r for r in Journal(path).read() if r.get("kind") == "bench"]


def compare_ledger(
    ledger_path: Union[str, Path],
    threshold: float = DEFAULT_THRESHOLD,
    prefer_same_machine: bool = True,
) -> BenchComparison:
    """Diff the newest ledger record against its baseline.

    The baseline is the most recent earlier record from the same host
    (when ``prefer_same_machine`` and one exists); otherwise the most
    recent earlier record outright. Raises :class:`BenchLedgerError`
    when the ledger holds fewer than two records — there is nothing to
    compare, which is different from "no regression".
    """
    records = read_ledger(ledger_path)
    if len(records) < 2:
        raise BenchLedgerError(
            f"ledger {ledger_path} holds {len(records)} bench record(s); "
            "need at least two to compare (run `repro bench record` first)"
        )
    current = records[-1]
    earlier = records[:-1]
    baseline = None
    if prefer_same_machine:
        host = current.get("machine", {}).get("host")
        for candidate in reversed(earlier):
            if candidate.get("machine", {}).get("host") == host:
                baseline = candidate
                break
    if baseline is None:
        baseline = earlier[-1]

    def index(record: Dict[str, Any]) -> Dict[Tuple[str, str, str], Dict]:
        return {
            (e["benchmark"], e["case"], e["metric"]): e
            for e in record.get("entries", [])
        }

    base_entries = index(baseline)
    curr_entries = index(current)
    deltas = [
        BenchDelta(
            benchmark=key[0],
            case=key[1],
            metric=key[2],
            baseline=base_entries[key]["value"],
            current=entry["value"],
            higher_is_better=bool(entry["higher_is_better"]),
            threshold=threshold,
        )
        for key, entry in sorted(curr_entries.items())
        if key in base_entries
    ]
    return BenchComparison(
        baseline_time=baseline.get("time", 0.0),
        current_time=current.get("time", 0.0),
        same_machine=(
            baseline.get("machine", {}).get("host")
            == current.get("machine", {}).get("host")
        ),
        deltas=deltas,
        missing=sorted(k for k in base_entries if k not in curr_entries),
        added=sorted(k for k in curr_entries if k not in base_entries),
    )


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable comparison table (what ``repro bench compare``
    prints)."""
    lines = [
        f"{'benchmark/case/metric':<58} {'baseline':>12} {'current':>12} "
        f"{'change':>8}  verdict"
    ]
    for delta in comparison.deltas:
        label = f"{delta.benchmark}/{delta.case}/{delta.metric}"
        if delta.regressed:
            verdict = "REGRESSED"
        elif delta.improved:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{label:<58} {delta.baseline:>12.4g} {delta.current:>12.4g} "
            f"{delta.change:>+7.1%}  {verdict}"
        )
    for key in comparison.missing:
        lines.append(f"{'/'.join(key):<58} (present in baseline only)")
    for key in comparison.added:
        lines.append(f"{'/'.join(key):<58} (new metric, no baseline)")
    if not comparison.same_machine:
        lines.append(
            "note: baseline is from a different machine; "
            "timing deltas are unreliable"
        )
    summary = (
        f"{len(comparison.deltas)} compared, "
        f"{len(comparison.regressions)} regressed, "
        f"{len(comparison.improvements)} improved"
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny direct entry point (the full UX lives in ``repro bench``)."""
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(argv if argv is not None else sys.argv[1:]))

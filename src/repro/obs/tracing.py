"""Span tracing: nested, monotonic-duration spans exported as JSONL.

A span is one timed region of work — ``search.run``, ``search.batch``,
``campaign.job`` — with a name, attributes, a parent, and a duration
measured on the monotonic clock. Spans nest through a thread-local
stack, so instrumented code never threads a tracer object through call
signatures: the ambient :func:`repro.obs.scope.trace` helper finds the
active tracer (or no-ops).

The on-disk format reuses the :mod:`repro.io.journal` framing — one JSON
record per line, a ``schema`` field, torn-trailing-line tolerance on
read — so ``repro obs dump`` and campaign tooling share one parser.
Unlike the campaign journal, span writes are flushed but **not** fsynced
per record: traces are diagnostics, not checkpoints, and an fsync per
span would throttle the searches being observed.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.io.journal import JOURNAL_SCHEMA, Journal
from repro.obs.metrics import TIMING_BUCKETS, MetricsRegistry


class Span:
    """A live span handle; ``set()`` attaches attributes before close."""

    __slots__ = ("name", "span_id", "parent_id", "depth", "attrs", "_started")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attrs: Dict[str, Any],
        started: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self._started = started

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._span = tracer._open(name, attrs)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span, error=exc_type is not None)


class Tracer:
    """Collects spans in memory and (optionally) streams them to JSONL.

    Args:
        path: JSONL output file. ``None`` keeps spans in memory only
            (``records`` still accumulates, for tests and in-process
            summaries — it is what the live ``/flame`` endpoint rolls
            up).
        registry: when given, every closed span also lands one
            observation in the ``span.duration_seconds`` histogram
            (labeled by span name, on the fine :data:`TIMING_BUCKETS`
            grid), so span latency distributions are scrapeable without
            parsing the trace.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.registry = registry
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._origin = time.perf_counter()
        self._handle = None
        if self.path is not None:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span: ``with tracer.span("search.run"): ...``."""
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            depth=len(stack),
            attrs=dict(attrs),
            started=time.perf_counter(),
        )
        stack.append(span)
        return span

    def _close(self, span: Span, error: bool = False) -> None:
        ended = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record: Dict[str, Any] = {
            "kind": "span",
            "schema": JOURNAL_SCHEMA,
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "start_s": round(span._started - self._origin, 9),
            "duration_s": round(ended - span._started, 9),
            "time": time.time(),
            "attrs": span.attrs,
        }
        if error:
            record["error"] = True
        with self._lock:
            self.records.append(record)
            if self._handle is not None:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
        if self.registry is not None:
            self.registry.histogram(
                "span.duration_seconds", buckets=TIMING_BUCKETS
            ).observe(record["duration_s"], name=span.name)

    def snapshot_records(self) -> List[Dict[str, Any]]:
        """A consistent copy of the in-memory span records (safe to read
        while other threads are still closing spans — the live ``/flame``
        endpoint uses this)."""
        with self._lock:
            return list(self.records)

    def close(self) -> None:
        """Flush and release the output file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Span-record keys every exporter/validator can rely on.
SPAN_REQUIRED_KEYS = (
    "kind",
    "schema",
    "name",
    "span_id",
    "parent_id",
    "depth",
    "start_s",
    "duration_s",
    "time",
    "attrs",
)


def validate_span(record: Dict[str, Any]) -> List[str]:
    """Schema-check one span record; returns human-readable problems."""
    problems = []
    for key in SPAN_REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing key {key!r}")
    if record.get("kind") != "span":
        problems.append(f"kind is {record.get('kind')!r}, expected 'span'")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        problems.append("name must be a non-empty string")
    duration = record.get("duration_s")
    if not isinstance(duration, (int, float)) or duration < 0:
        problems.append(f"duration_s must be a non-negative number: {duration!r}")
    depth = record.get("depth")
    if not isinstance(depth, int) or depth < 0:
        problems.append(f"depth must be a non-negative int: {depth!r}")
    if record.get("parent_id") is None and record.get("depth") != 0:
        problems.append("parentless span must have depth 0")
    return problems


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span records from a JSONL trace (journal framing: torn-tail
    tolerant; non-span records — e.g. interleaved campaign records — are
    skipped)."""
    return [r for r in Journal(path).read() if r.get("kind") == "span"]


# -- flame summary --------------------------------------------------------


def flame_summary(records: List[Dict[str, Any]]) -> str:
    """Aggregate spans into an indented flame-style text summary.

    Spans are grouped by their *path* (ancestor names joined with ``/``),
    so repeated children (every ``search.batch`` under one ``search.run``)
    collapse into one line with a count, total, and share of the root
    wall-clock. Parentless spans form the roots.
    """
    if not records:
        return "(empty trace)"
    by_id = {r["span_id"]: r for r in records}

    def path_of(record: Dict[str, Any]) -> tuple:
        names: List[str] = []
        cursor: Optional[Dict[str, Any]] = record
        seen = set()
        while cursor is not None:
            if cursor["span_id"] in seen:  # corrupt parent loop
                break
            seen.add(cursor["span_id"])
            names.append(cursor["name"])
            parent = cursor.get("parent_id")
            cursor = by_id.get(parent) if parent is not None else None
        return tuple(reversed(names))

    groups: Dict[tuple, Dict[str, Any]] = {}
    order: List[tuple] = []
    for record in records:
        path = path_of(record)
        group = groups.get(path)
        if group is None:
            group = {"count": 0, "total_s": 0.0, "max_s": 0.0}
            groups[path] = group
            order.append(path)
        group["count"] += 1
        group["total_s"] += record["duration_s"]
        group["max_s"] = max(group["max_s"], record["duration_s"])
    order.sort()
    root_total = sum(
        g["total_s"] for path, g in groups.items() if len(path) == 1
    )
    lines = [
        f"{'span':<48} {'count':>7} {'total':>10} {'mean':>10} {'share':>7}"
    ]
    for path in order:
        group = groups[path]
        indent = "  " * (len(path) - 1)
        label = indent + path[-1]
        mean = group["total_s"] / group["count"]
        share = (group["total_s"] / root_total) if root_total > 0 else 0.0
        lines.append(
            f"{label:<48} {group['count']:>7,} {group['total_s']:>9.3f}s "
            f"{mean * 1e3:>8.2f}ms {share:>6.1%}"
        )
    return "\n".join(lines)

"""Search progress accounting: totals, ETA, and convergence timelines.

Long searches used to be silent until they returned: the registry counts
*what happened* but nothing says *how far along* a run is. This module
adds the missing sense. A :class:`ProgressTracker` pairs a total-work
estimate (an evaluation budget, ``(generations + 1) * population``, the
branch-and-bound partition-cell count, …) with completed-work
accounting, an incumbent-convergence timeline (a bounded ring buffer of
``(monotonic_s, best_metric)`` recorded on each improvement), and an
EWMA-throughput ETA.

Every :class:`~repro.obs.timing.SearchTimer` owns a tracker, so the
``progress`` sub-dict of ``SearchResult.stats`` has one schema across
every searcher; live consumers — the ``/progress`` endpoint of
:class:`~repro.obs.server.ObsServer` and the ``--progress`` TTY line —
discover in-flight trackers through the weak module registry
(:func:`active_trackers`), so a finished search disappears as soon as
its result is dropped.

Totals are *estimates*, not contracts: exhaustive sweeps use the cheap
pre-fanout-filter menu product (an upper bound), and annealing restarts
may retry past their nominal step budget. ``fraction`` is therefore
clamped to ``[0, 1]`` and :meth:`ProgressTracker.finish` snaps completed
work to the total, so the fraction is monotonically nondecreasing and
ends at 1.0 whenever a total is known.

The governing zero-cost-when-off rule holds: trackers publish
``search.progress_fraction`` / ``search.eta_seconds`` gauges through the
ambient scope helpers, which no-op without an active
:func:`~repro.obs.scope.obs_scope`; the accounting itself is a handful
of float adds under a lock, paid only per batch/unit, never per
candidate on the batched paths.
"""

from __future__ import annotations

import sys
import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

from repro.obs import scope as _scope

#: Convergence-timeline ring-buffer capacity. Improvements beyond this
#: many keep only the most recent points — the timeline is a live
#: diagnostic, not the full curve (``SearchResult.curve`` keeps that).
DEFAULT_TIMELINE_CAPACITY = 512

#: Minimum seconds between EWMA throughput updates. Batched searchers
#: advance in bursts; accumulating units across at least this window
#: keeps the instantaneous rate (and therefore the ETA) from whipsawing.
RATE_INTERVAL_S = 0.2

#: EWMA smoothing factor for the units-per-second throughput estimate.
RATE_ALPHA = 0.3

_TRACKERS_LOCK = threading.Lock()
_TRACKERS: "weakref.WeakSet[ProgressTracker]" = weakref.WeakSet()

# Ambient per-thread tracker owner. Drivers that run many searches
# concurrently in one process (the mapper service's worker threads) tag
# each run with a job id here; trackers created inside the scope pick the
# tag up, so live consumers can tell concurrent searches apart without
# threading an id through every searcher signature.
_OWNER = threading.local()


@contextmanager
def progress_owner(owner: Optional[str]) -> Iterator[None]:
    """Tag trackers created in this thread's ``with`` body with ``owner``.

    Nested scopes restore the previous owner on exit; ``None`` clears the
    tag. Owners are thread-local, so concurrent service workers cannot
    contaminate each other's runs.
    """
    previous = getattr(_OWNER, "value", None)
    _OWNER.value = owner
    try:
        yield
    finally:
        _OWNER.value = previous


def current_progress_owner() -> Optional[str]:
    """The owner tag installed by the innermost :func:`progress_owner`."""
    return getattr(_OWNER, "value", None)


def active_trackers(owner: Optional[str] = None) -> List["ProgressTracker"]:
    """Live trackers in creation order (weakly held — GC'd trackers
    vanish). The ``/progress`` endpoint and the TTY printer poll this.

    Args:
        owner: return only trackers tagged with this owner (see
            :func:`progress_owner`); ``None`` returns every live tracker.
    """
    with _TRACKERS_LOCK:
        trackers = list(_TRACKERS)
    if owner is not None:
        trackers = [t for t in trackers if t.owner == owner]
    return sorted(trackers, key=lambda t: t.created_s)


def empty_progress_stats() -> Dict[str, Any]:
    """The ``progress`` stats sub-dict of a run that tracked nothing.

    Same key set as :meth:`ProgressTracker.stats_payload`, so
    ``SearchResult.stats["progress"]`` has a uniform schema across every
    searcher and path (the stats-schema test pins this).
    """
    return {
        "total_units": None,
        "completed_units": 0.0,
        "fraction": None,
        "eta_s": None,
        "rate_units_per_s": None,
        "improvements": 0,
    }


class ProgressTracker:
    """Completed-work accounting plus convergence timeline for one run.

    Args:
        driver: label for gauges and display (``"random"``,
            ``"branch-bound"``, ``"campaign"``, …).
        total_units: total-work estimate in whatever unit the caller
            advances by (evaluations, partition cells, jobs). ``None``
            means unknown: ``fraction`` and ``eta_s`` stay ``None`` but
            completed-work and the timeline still accumulate.
        timeline_capacity: convergence ring-buffer bound.
        clock: monotonic clock override (tests only).
        owner: identity tag for live consumers that must tell concurrent
            runs apart (the service tags each search with its job id).
            Defaults to the ambient :func:`progress_owner` tag, so
            searchers need no signature change to be taggable.
    """

    def __init__(
        self,
        driver: str = "search",
        total_units: Optional[float] = None,
        timeline_capacity: int = DEFAULT_TIMELINE_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
        owner: Optional[str] = None,
    ) -> None:
        self.driver = driver
        self.owner = owner if owner is not None else current_progress_owner()
        self._clock = clock
        self.created_s = time.time()
        self._lock = threading.Lock()
        self._total = float(total_units) if total_units is not None else None
        self._completed = 0.0
        self._improvements = 0
        self._best_metric: Optional[float] = None
        self._timeline: "deque" = deque(maxlen=timeline_capacity)
        self._started = clock()
        self._finished: Optional[float] = None
        # EWMA throughput: units accumulated since the last rate sample.
        self._rate: Optional[float] = None
        self._rate_units = 0.0
        self._rate_marker = self._started
        with _TRACKERS_LOCK:
            _TRACKERS.add(self)

    # -- accounting -------------------------------------------------------

    def set_total(self, total_units: Optional[float]) -> None:
        """(Re)estimate the total; ``None`` marks it unknown again."""
        with self._lock:
            self._total = (
                float(total_units) if total_units is not None else None
            )

    def advance(self, units: float = 1.0) -> None:
        """Record ``units`` of completed work and refresh the ETA."""
        if units < 0:
            raise ValueError("progress cannot move backwards")
        now = self._clock()
        with self._lock:
            self._completed += units
            self._rate_units += units
            interval = now - self._rate_marker
            if interval >= RATE_INTERVAL_S:
                instantaneous = self._rate_units / interval
                self._rate = (
                    instantaneous
                    if self._rate is None
                    else RATE_ALPHA * instantaneous
                    + (1.0 - RATE_ALPHA) * self._rate
                )
                self._rate_units = 0.0
                self._rate_marker = now
        self._publish()

    def improved(self, best_metric: float) -> None:
        """Record an incumbent improvement on the convergence timeline."""
        now = self._clock()
        with self._lock:
            self._improvements += 1
            self._best_metric = float(best_metric)
            self._timeline.append(
                (round(now - self._started, 6), float(best_metric))
            )

    def finish(self) -> None:
        """Mark the run done; snaps completed work up to the total.

        Totals are estimates (often pre-filter upper bounds), so the
        snap is what guarantees a finished run reports fraction 1.0 —
        and since completed work only ever grows, the fraction stays
        monotonically nondecreasing throughout.
        """
        with self._lock:
            if self._finished is None:
                self._finished = self._clock()
            if self._total is not None and self._completed < self._total:
                self._completed = self._total
        self._publish()

    # -- derived views ----------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return self._finished is not None

    def fraction(self) -> Optional[float]:
        """Completed share in ``[0, 1]``, or ``None`` with no total."""
        with self._lock:
            return self._fraction_locked()

    def _fraction_locked(self) -> Optional[float]:
        if self._total is None or self._total <= 0:
            return None
        return min(1.0, self._completed / self._total)

    def eta_seconds(self) -> Optional[float]:
        """EWMA-throughput remaining-time estimate (None when unknown)."""
        with self._lock:
            return self._eta_locked()

    def _eta_locked(self) -> Optional[float]:
        if (
            self._finished is not None
            or self._total is None
            or self._rate is None
            or self._rate <= 0
        ):
            return None
        remaining = self._total - self._completed
        if remaining <= 0:
            return 0.0
        return remaining / self._rate

    def elapsed_seconds(self) -> float:
        with self._lock:
            end = self._finished if self._finished is not None else self._clock()
            return end - self._started

    def stats_payload(self) -> Dict[str, Any]:
        """The compact ``progress`` sub-dict for ``SearchResult.stats``
        (same key set as :func:`empty_progress_stats`)."""
        with self._lock:
            return {
                "total_units": self._total,
                "completed_units": self._completed,
                "fraction": self._fraction_locked(),
                "eta_s": self._eta_locked(),
                "rate_units_per_s": self._rate,
                "improvements": self._improvements,
            }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe full view (the ``/progress`` endpoint's payload):
        the stats payload plus identity, timing, and the timeline."""
        with self._lock:
            end = self._finished if self._finished is not None else self._clock()
            return {
                "driver": self.driver,
                "owner": self.owner,
                "total_units": self._total,
                "completed_units": self._completed,
                "fraction": self._fraction_locked(),
                "eta_s": self._eta_locked(),
                "rate_units_per_s": self._rate,
                "improvements": self._improvements,
                "best_metric": self._best_metric,
                "elapsed_s": round(end - self._started, 6),
                "done": self._finished is not None,
                "timeline": [list(point) for point in self._timeline],
            }

    # -- gauge mirroring --------------------------------------------------

    def _publish(self) -> None:
        """Mirror fraction/ETA into the ambient registry (no-op when no
        scope is active, preserving the zero-traffic guarantee).

        Owned trackers add a ``job`` label: two concurrent searches with
        the same driver would otherwise fight over one gauge series, so
        each would read the other's fraction (the cross-contamination the
        service regression test pins). Unowned trackers keep the original
        single-series shape.
        """
        if _scope.active_obs() is None:
            return
        labels = {"driver": self.driver}
        if self.owner is not None:
            labels["job"] = self.owner
        fraction = self.fraction()
        if fraction is not None:
            _scope.set_gauge("search.progress_fraction", fraction, **labels)
        eta = self.eta_seconds()
        if eta is not None:
            _scope.set_gauge("search.eta_seconds", eta, **labels)


class ProgressPrinter:
    """Daemon thread rendering a live one-line progress display.

    Polls :func:`active_trackers` every ``interval_s`` and rewrites one
    carriage-returned line on ``stream`` (stderr by default — stdout
    stays machine-parseable). Started by the CLI's ``--progress`` flag;
    :meth:`stop` terminates the line with a newline so the shell prompt
    lands clean.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval_s: float = 0.25,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._wrote = False
        self._last_width = 0

    def start(self) -> "ProgressPrinter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="obs-progress", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.render_once()

    def render_once(self) -> None:
        """One repaint (factored out so tests can drive it directly)."""
        line = self._compose(active_trackers())
        if not line and not self._wrote:
            return
        padded = line.ljust(self._last_width)
        self._last_width = len(line)
        self.stream.write("\r" + padded)
        self.stream.flush()
        self._wrote = True

    @staticmethod
    def _compose(trackers: List[ProgressTracker]) -> str:
        parts = []
        for tracker in trackers:
            if tracker.done:
                continue
            snap = tracker.snapshot()
            fraction = snap["fraction"]
            if fraction is not None:
                piece = f"{tracker.driver} {fraction:6.1%}"
                if snap["total_units"]:
                    piece += (
                        f" ({snap['completed_units']:,.0f}"
                        f"/{snap['total_units']:,.0f})"
                    )
            else:
                piece = (
                    f"{tracker.driver} {snap['completed_units']:,.0f} units"
                )
            if snap["eta_s"] is not None:
                piece += f" eta {snap['eta_s']:.1f}s"
            if snap["best_metric"] is not None:
                piece += f" best {snap['best_metric']:.4e}"
            parts.append(piece)
        return "  |  ".join(parts)

"""Per-dimension chain math: Eq. (5) recursions over remaindered loops.

For one problem dimension, its loops across all levels form a *chain*
(outer to inner). The paper's Eq. (5),

    ``L_n = L_{n+1} * P_n + R_n - 1``  (base ``L_top+1 = 0``),

gives the number of innermost points minus one when run over the full
chain, and more generally the number of distinct tiles minus one when run
over any outer prefix of the chain. All cost-model quantities reduce to
this recursion applied to sub-chains:

* **coverage** — recursion over the whole chain; must equal ``D`` for a
  valid mapping (Ruby never over-computes).
* **temporal steps** — recursion over the temporal loops only; the product
  over dims is the total cycle count (spatial loops execute in lockstep
  within a step).
* **tiles above a boundary** — recursion over the loops outside a storage
  point; counts the tile deliveries along that dim. The summed extents of
  those tiles equal ``D`` exactly, which is what makes imperfect access
  counts exact.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.mapping.loop import Loop
from repro.mapping.nest import Mapping, PlacedLoop


def chain_trip_count(loops: Iterable[Loop]) -> int:
    """Run the Eq. (5) recursion over ``loops`` (ordered outer to inner).

    Returns ``L + 1``: the exact number of leaf iterations (equivalently,
    distinct tiles produced by the chain). An empty chain yields 1.
    """
    level = 0
    for loop in loops:
        level = level * loop.bound + loop.remainder - 1
    return level + 1


def chain_coverage(loops: Iterable[Loop]) -> int:
    """Points covered by a full chain — alias of :func:`chain_trip_count`.

    Named separately because call sites read better: coverage is compared
    against the dimension size ``D`` for validity.
    """
    return chain_trip_count(loops)


def dim_chain(mapping: Mapping, dim: str) -> List[PlacedLoop]:
    """All loops of ``dim`` in global nest order (outer first)."""
    return [p for p in mapping.placed_loops() if p.loop.dim == dim]


def temporal_steps(loops: Iterable[Loop]) -> int:
    """Exact temporal step count of a chain (ordered outer to inner).

    Spatial loops execute in lockstep within a step, so they contribute no
    steps themselves — but they *shadow* inner temporal remainders: once an
    outer spatial loop of the same dimension keeps at least two instances
    active in the final window (remainder >= 2), the last instance's short
    temporal pass runs concurrently with a full sibling pass, so the
    schedule still takes the full bound. Only when every crossed spatial
    loop narrows to a single active instance does an inner temporal
    remainder genuinely shorten the schedule.
    """
    full_contexts = 0
    shadowed = False
    for loop in loops:
        if loop.spatial:
            if loop.remainder >= 2:
                shadowed = True
            continue
        effective_remainder = loop.bound if shadowed else loop.remainder
        full_contexts = full_contexts * loop.bound + effective_remainder - 1
    return full_contexts + 1


def tile_extent(loops: Iterable[Loop]) -> int:
    """Maximum tile extent produced below a boundary: product of bounds.

    Uses full bounds ``P`` (not remainders) because capacity must hold the
    largest tile.
    """
    extent = 1
    for loop in loops:
        extent *= loop.bound
    return extent


def extent_sum(loops_above: Sequence[Loop], coverage: int) -> int:
    """Sum of tile extents over one full sweep of the loops above a boundary.

    The tiles delivered along a dim partition its ``coverage`` points
    exactly (Eq. 5), so the summed extents equal the coverage. Provided as
    a named helper so call sites document the invariant they rely on.
    """
    del loops_above  # the identity holds regardless of the prefix split
    return coverage


def perfect_chain(factors: Sequence[Loop]) -> bool:
    """True if every loop of the chain is a perfect factor."""
    return all(loop.is_perfect for loop in factors)


def split_chain_at_position(
    chain: Sequence[PlacedLoop], boundary_position: int
) -> tuple:
    """Split a placed chain into (above, below) a global nest position.

    ``above`` contains loops with ``position < boundary_position``.
    """
    above = [p for p in chain if p.position < boundary_position]
    below = [p for p in chain if p.position >= boundary_position]
    return above, below

"""Mapping representation: loopnests with imperfect (remaindered) loops.

A :class:`~repro.mapping.nest.Mapping` assigns, per storage level, an
ordered block of temporal loops plus a block of spatial loops for the fanout
below that level. Every loop carries a bound ``P`` and a remainder
``R in [1, P]`` applied on the globally-last iteration — Eq. (5) of the
paper. ``R == P`` everywhere recovers classic perfect-factorization
mappings.
"""

from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping, PlacedLoop
from repro.mapping.chains import (
    chain_coverage,
    chain_trip_count,
    dim_chain,
    temporal_steps,
    tile_extent,
)
from repro.mapping.validity import check_mapping, is_valid_mapping
from repro.mapping.render import render_mapping

__all__ = [
    "Loop",
    "LevelNest",
    "Mapping",
    "PlacedLoop",
    "chain_coverage",
    "chain_trip_count",
    "dim_chain",
    "temporal_steps",
    "tile_extent",
    "check_mapping",
    "is_valid_mapping",
    "render_mapping",
]

"""A single loop of a mapping, with imperfect-factorization support."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SpecError


@dataclass(frozen=True)
class Loop:
    """One loop of the tiled loopnest.

    Attributes:
        dim: the problem dimension this loop iterates, e.g. ``"C"``.
        bound: the loop bound ``P`` — iterations taken on every pass except
            the globally-last one.
        remainder: the bound ``R in [1, P]`` taken on the globally-last pass
            (Eq. 5). ``R == P`` means the loop is a perfect factor.
        spatial: True for ``parFor`` loops (unrolled across a fanout).
        axis: physical mesh axis a spatial loop unrolls along (0 = X,
            1 = Y). Per-axis products must fit the mesh shape — a 27-wide
            loop cannot unroll on a 14x12 array even though 27 < 168, which
            is exactly the misalignment Ruby-S exploits. Ignored for
            temporal loops.

    The paper's Fig. 5 example ``GLB: for d3 in [0, 17) / PE: parFor d1 in
    [0, 6) last [0, 4)`` is ``Loop("D", 17, 17)`` above
    ``Loop("D", 6, 4, spatial=True)``.
    """

    dim: str
    bound: int
    remainder: int = -1  # sentinel replaced by `bound` in __post_init__
    spatial: bool = False
    axis: int = 0

    def __post_init__(self) -> None:
        if not self.dim:
            raise SpecError("loop dim must be non-empty")
        if self.bound < 1:
            raise SpecError(f"loop bound must be >= 1, got {self.bound}")
        if self.remainder == -1:
            object.__setattr__(self, "remainder", self.bound)
        if not 1 <= self.remainder <= self.bound:
            raise SpecError(
                f"loop remainder must be in [1, bound={self.bound}], "
                f"got {self.remainder}"
            )
        if self.axis not in (0, 1):
            raise SpecError(f"loop axis must be 0 (X) or 1 (Y), got {self.axis}")

    @property
    def is_perfect(self) -> bool:
        """True when the last pass takes as many iterations as every other."""
        return self.remainder == self.bound

    @property
    def is_trivial(self) -> bool:
        """True for bound-1 loops, which do not tile anything."""
        return self.bound == 1

    def as_perfect(self) -> "Loop":
        """Copy of this loop with the remainder removed (R = P)."""
        return Loop(self.dim, self.bound, self.bound, self.spatial, self.axis)

    def __str__(self) -> str:
        kind = "parFor" if self.spatial else "for"
        tail = "" if self.is_perfect else f" last {self.remainder}"
        return f"{kind} {self.dim} in [0, {self.bound}){tail}"

"""LevelNest and Mapping: the complete tiled loopnest for an architecture.

The global loop order, outermost to innermost, is::

    level[0].temporal, level[0].spatial,
    level[1].temporal, level[1].spatial,
    ...
    level[last].temporal, level[last].spatial

where ``level[i].spatial`` are the parFor loops unrolled over the fanout
*below* storage level ``i``. The storage point of level ``i`` sits just
before ``level[i].temporal`` — the tile held at level ``i`` is whatever its
own temporal loops and everything inner iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.exceptions import SpecError
from repro.mapping.loop import Loop


@dataclass(frozen=True)
class LevelNest:
    """Loops associated with one storage level.

    Attributes:
        level_name: the storage level these loops belong to.
        temporal: temporal loops, ordered outermost first.
        spatial: spatial loops for the fanout below this level.
    """

    level_name: str
    temporal: Tuple[Loop, ...] = ()
    spatial: Tuple[Loop, ...] = ()

    def __post_init__(self) -> None:
        for loop in self.temporal:
            if loop.spatial:
                raise SpecError(
                    f"level {self.level_name}: spatial loop {loop} in temporal block"
                )
        for loop in self.spatial:
            if not loop.spatial:
                raise SpecError(
                    f"level {self.level_name}: temporal loop {loop} in spatial block"
                )

    @property
    def spatial_allocation(self) -> int:
        """Number of child instances claimed = product of spatial bounds."""
        result = 1
        for loop in self.spatial:
            result *= loop.bound
        return result

    def spatial_allocation_on_axis(self, axis: int) -> int:
        """Claimed instances along one physical mesh axis (0 = X, 1 = Y)."""
        result = 1
        for loop in self.spatial:
            if loop.axis == axis:
                result *= loop.bound
        return result


@dataclass(frozen=True)
class PlacedLoop:
    """A loop annotated with its position in the global nest.

    Attributes:
        loop: the loop itself.
        level_index: index of the owning storage level (0 = outermost).
        position: 0-based index in the flattened global nest (outer first).
    """

    loop: Loop
    level_index: int
    position: int


@dataclass(frozen=True)
class Mapping:
    """A complete mapping: one :class:`LevelNest` per storage level.

    ``levels`` is ordered outermost first and must match the architecture's
    storage levels one-to-one (validity checking lives in
    :mod:`repro.mapping.validity`, which has the architecture in hand).

    ``bypass`` lists ``(level_name, tensor_name)`` pairs whose tensor skips
    that level entirely (no buffering, no capacity use) — the ZigZag-style
    optimization the paper's Section II-D describes. Architecture-level
    ``keeps`` restrictions apply on top of mapping-level bypass.
    """

    levels: Tuple[LevelNest, ...]
    bypass: FrozenSet[Tuple[str, str]] = frozenset()

    def __post_init__(self) -> None:
        if not self.levels:
            raise SpecError("mapping must have at least one level nest")
        names = [nest.level_name for nest in self.levels]
        if len(set(names)) != len(names):
            raise SpecError("mapping has duplicate level names")
        level_names = set(names)
        for level_name, _tensor in self.bypass:
            if level_name not in level_names:
                raise SpecError(
                    f"bypass references unknown level {level_name!r}"
                )
        if any(level == names[0] for level, _ in self.bypass):
            raise SpecError(
                "the outermost level cannot be bypassed (data must "
                "originate somewhere)"
            )

    @staticmethod
    def from_blocks(
        blocks: Sequence[Tuple[str, Sequence[Loop], Sequence[Loop]]],
        bypass: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> "Mapping":
        """Build from ``[(level_name, temporal_loops, spatial_loops), ...]``."""
        return Mapping(
            levels=tuple(
                LevelNest(
                    level_name=name,
                    temporal=tuple(temporal),
                    spatial=tuple(spatial),
                )
                for name, temporal, spatial in blocks
            ),
            bypass=frozenset(bypass or ()),
        )

    def bypasses(self, level_name: str, tensor_name: str) -> bool:
        """True if ``tensor_name`` skips ``level_name`` in this mapping."""
        return (level_name, tensor_name) in self.bypass

    def with_bypass(
        self, bypass: Sequence[Tuple[str, str]]
    ) -> "Mapping":
        """Copy of this mapping with a replaced bypass set."""
        return Mapping(levels=self.levels, bypass=frozenset(bypass))

    def placed_loops(self) -> List[PlacedLoop]:
        """Flatten to the global nest order with positions."""
        placed: List[PlacedLoop] = []
        position = 0
        for level_index, nest in enumerate(self.levels):
            for loop in nest.temporal:
                placed.append(PlacedLoop(loop, level_index, position))
                position += 1
            for loop in nest.spatial:
                placed.append(PlacedLoop(loop, level_index, position))
                position += 1
        return placed

    def loops_above_level(self, level_index: int) -> List[PlacedLoop]:
        """All loops outside storage level ``level_index``'s storage point.

        These are the loops of levels ``< level_index`` (their temporal and
        spatial blocks); they iterate over distinct tiles held at
        ``level_index``.
        """
        return [p for p in self.placed_loops() if p.level_index < level_index]

    def level_nest(self, level_name: str) -> LevelNest:
        for nest in self.levels:
            if nest.level_name == level_name:
                return nest
        raise KeyError(f"mapping has no level {level_name}")

    @property
    def dims_used(self) -> Tuple[str, ...]:
        """All dims appearing anywhere in the nest, in first-seen order."""
        seen: Dict[str, None] = {}
        for placed in self.placed_loops():
            seen.setdefault(placed.loop.dim, None)
        return tuple(seen)

    def total_bound(self, dim: str) -> int:
        """Product of bounds of ``dim``'s loops (>= its coverage)."""
        result = 1
        for placed in self.placed_loops():
            if placed.loop.dim == dim:
                result *= placed.loop.bound
        return result

    def has_imperfect_loops(self) -> bool:
        """True if any loop carries a genuine remainder."""
        return any(not p.loop.is_perfect for p in self.placed_loops())

    def has_imperfect_temporal(self) -> bool:
        return any(
            not p.loop.is_perfect and not p.loop.spatial for p in self.placed_loops()
        )

    def has_imperfect_spatial(self) -> bool:
        return any(
            not p.loop.is_perfect and p.loop.spatial for p in self.placed_loops()
        )

    def signature(self) -> Tuple:
        """Canonical hashable identity safe for evaluation caching.

        Two mappings with equal signatures evaluate identically, so an
        :class:`~repro.model.eval_cache.EvaluationCache` can key on this.
        The normalization only erases differences that provably cannot
        change the cost model's output:

        * trivial (bound-1, perfect) loops are dropped — they execute one
          pass and tile nothing;
        * a level's spatial block is sorted **only when every spatial loop
          in it is perfect** — parFor loops commute then, but reordering an
          imperfect chain changes its coverage (the remainder applies to
          the globally-last pass, so ``7 x (5 last 2)`` and
          ``(5 last 2) x 7`` cover different totals), hence imperfect
          spatial blocks keep their order.

        Unlike :meth:`canonical_key` (a looser identity used for dedup
        statistics), the signature never conflates mappings whose costs
        could differ. The tuple is computed once and memoized on the
        (frozen) instance.
        """
        cached = getattr(self, "_signature_cache", None)
        if cached is not None:
            return cached
        key = []
        for nest in self.levels:
            temporal = tuple(
                (l.dim, l.bound, l.remainder)
                for l in nest.temporal
                if not (l.is_trivial and l.is_perfect)
            )
            spatial_loops = [
                l for l in nest.spatial if not (l.is_trivial and l.is_perfect)
            ]
            spatial = tuple(
                (l.dim, l.bound, l.remainder, l.axis) for l in spatial_loops
            )
            if all(l.is_perfect for l in spatial_loops):
                spatial = tuple(sorted(spatial))
            key.append((nest.level_name, temporal, spatial))
        key.append(tuple(sorted(self.bypass)))
        signature = tuple(key)
        object.__setattr__(self, "_signature_cache", signature)
        return signature

    def canonical_key(self) -> Tuple:
        """Hashable identity used for dedup when counting unique mappings.

        Trivial (bound-1, perfect) loops are dropped: they do not change the
        executed loopnest.
        """
        key = []
        for nest in self.levels:
            temporal = tuple(
                (l.dim, l.bound, l.remainder)
                for l in nest.temporal
                if not (l.is_trivial and l.is_perfect)
            )
            spatial = tuple(
                sorted(
                    (l.dim, l.bound, l.remainder, l.axis)
                    for l in nest.spatial
                    if not (l.is_trivial and l.is_perfect)
                )
            )
            key.append((nest.level_name, temporal, spatial))
        key.append(tuple(sorted(self.bypass)))
        return tuple(key)

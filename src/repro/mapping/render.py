"""Pretty-printing mappings as indented loopnests (like the paper's Fig. 3)."""

from __future__ import annotations

from typing import List, Optional

from repro.mapping.nest import Mapping


def render_mapping(
    mapping: Mapping,
    show_trivial: bool = False,
    indent: str = "  ",
) -> str:
    """Render ``mapping`` as an indented pseudo-loopnest.

    Bound-1 loops are hidden unless ``show_trivial`` — they carry no tiling
    information. Each storage level is labelled; imperfect loops show their
    last-iteration bound.
    """
    lines: List[str] = []
    depth = 0
    for nest in mapping.levels:
        lines.append(f"{indent * depth}[{nest.level_name}]")
        depth += 1
        for loop in nest.temporal:
            if loop.is_trivial and not show_trivial:
                continue
            lines.append(f"{indent * depth}{loop}:")
            depth += 1
        for loop in nest.spatial:
            if loop.is_trivial and not show_trivial:
                continue
            lines.append(f"{indent * depth}{loop}:")
            depth += 1
    lines.append(f"{indent * depth}compute()")
    return "\n".join(lines)


def render_compact(mapping: Mapping) -> str:
    """One-line rendering: ``Level[t: C4 M3 | s: M14*]`` style.

    Imperfect loops are starred with their remainder, e.g. ``Q7/6``.
    """
    parts: List[str] = []
    for nest in mapping.levels:
        temporal = " ".join(
            _loop_token(l) for l in nest.temporal if not (l.is_trivial and l.is_perfect)
        )
        spatial = " ".join(
            _loop_token(l) for l in nest.spatial if not (l.is_trivial and l.is_perfect)
        )
        blocks = []
        if temporal:
            blocks.append(f"t: {temporal}")
        if spatial:
            blocks.append(f"s: {spatial}")
        body = " | ".join(blocks) if blocks else "-"
        parts.append(f"{nest.level_name}[{body}]")
    return "  ".join(parts)


def _loop_token(loop) -> str:
    if loop.is_perfect:
        return f"{loop.dim}{loop.bound}"
    return f"{loop.dim}{loop.bound}/{loop.remainder}"

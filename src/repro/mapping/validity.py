"""Mapping validity: coverage, fanout, dataflow, and capacity checks.

Mapspace generators emit structurally well-formed mappings; this module is
the filter that rejects the invalid ones (the paper's "second step"):

1. **Structure** — one level nest per storage level, in order.
2. **Coverage** — every problem dimension's chain covers exactly ``D``
   points (Eq. 5). Ruby mappings never over- or under-compute.
3. **Fanout** — spatial allocation at each level fits the hardware fanout,
   and spatial dims respect the level's dataflow restrictions.
4. **Capacity** — the largest tile of each kept tensor fits the level
   (shared buffers sum across tensors; operand-private partitions are
   checked individually).
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.spec import Architecture
from repro.exceptions import InvalidMappingError
from repro.mapping.chains import chain_coverage
from repro.mapping.nest import Mapping
from repro.problem.workload import Workload


def check_mapping(
    mapping: Mapping, arch: Architecture, workload: Workload
) -> List[str]:
    """Return a list of human-readable violations (empty = valid)."""
    violations: List[str] = []
    violations.extend(_check_structure(mapping, arch))
    if violations:
        return violations  # later checks assume aligned structure
    violations.extend(_check_coverage(mapping, workload))
    violations.extend(_check_fanout(mapping, arch))
    violations.extend(_check_capacity(mapping, arch, workload))
    return violations


def is_valid_mapping(
    mapping: Mapping, arch: Architecture, workload: Workload
) -> bool:
    """True if ``mapping`` passes every check."""
    return not check_mapping(mapping, arch, workload)


def require_valid(
    mapping: Mapping, arch: Architecture, workload: Workload
) -> None:
    """Raise :class:`InvalidMappingError` listing all violations, if any."""
    violations = check_mapping(mapping, arch, workload)
    if violations:
        raise InvalidMappingError(
            f"invalid mapping for {workload.name} on {arch.name}: "
            + "; ".join(violations)
        )


def _check_structure(mapping: Mapping, arch: Architecture) -> List[str]:
    violations = []
    expected = [level.name for level in arch.levels]
    actual = [nest.level_name for nest in mapping.levels]
    if expected != actual:
        violations.append(
            f"level nests {actual} do not match architecture levels {expected}"
        )
    return violations


def _check_coverage(mapping: Mapping, workload: Workload) -> List[str]:
    violations = []
    dim_sizes = workload.dim_sizes
    for dim, size in dim_sizes.items():
        loops = [p.loop for p in mapping.placed_loops() if p.loop.dim == dim]
        covered = chain_coverage(loops)
        if covered != size:
            violations.append(f"dim {dim}: chain covers {covered}, need {size}")
    for dim in mapping.dims_used:
        if dim not in dim_sizes:
            violations.append(f"loop over unknown dim {dim}")
    return violations


def _check_fanout(mapping: Mapping, arch: Architecture) -> List[str]:
    violations = []
    for level, nest in zip(arch.levels, mapping.levels):
        fanout_x = level.fanout_x if level.fanout_x is not None else level.fanout
        fanout_y = level.fanout_y if level.fanout_y is not None else 1
        for axis, limit in ((0, fanout_x), (1, fanout_y)):
            allocation = nest.spatial_allocation_on_axis(axis)
            if allocation > limit:
                violations.append(
                    f"level {level.name}: spatial allocation {allocation} on "
                    f"axis {'XY'[axis]} exceeds fanout {limit}"
                )
        if level.spatial_dims is not None:
            for loop in nest.spatial:
                if loop.bound > 1 and loop.dim not in level.spatial_dims:
                    violations.append(
                        f"level {level.name}: dim {loop.dim} not allowed "
                        f"spatially (allowed: {sorted(level.spatial_dims)})"
                    )
    return violations


def _tile_extents_at_level(mapping: Mapping, level_index: int) -> Dict[str, int]:
    """Max per-dim tile extent held at ``level_index``.

    The tile at a level is iterated by that level's temporal loops and
    everything inner, i.e. all loops at level indices >= ``level_index``.
    Bounds (not remainders) give the largest tile, which capacity must hold.
    """
    extents: Dict[str, int] = {}
    for placed in mapping.placed_loops():
        if placed.level_index >= level_index:
            extents[placed.loop.dim] = (
                extents.get(placed.loop.dim, 1) * placed.loop.bound
            )
    return extents


def _check_capacity(
    mapping: Mapping, arch: Architecture, workload: Workload
) -> List[str]:
    violations = []
    for level_index, level in enumerate(arch.levels):
        if level.total_capacity_words is None:
            continue
        extents = _tile_extents_at_level(mapping, level_index)
        shared_words = 0
        for tensor in workload.tensors:
            if not level.keeps_tensor(tensor.name):
                continue
            if mapping.bypasses(level.name, tensor.name):
                continue
            footprint = tensor.tile_footprint(extents)
            words = footprint * tensor.bits_per_element // level.word_bits
            words = max(words, 1)
            partition = level.tensor_capacity(tensor.name)
            if partition is not None:
                if words > partition:
                    violations.append(
                        f"level {level.name}: {tensor.name} tile needs {words} "
                        f"words, partition holds {partition}"
                    )
            else:
                shared_words += words
        if not level.is_partitioned and level.capacity_words is not None:
            if shared_words > level.capacity_words:
                violations.append(
                    f"level {level.name}: tiles need {shared_words} words, "
                    f"capacity is {level.capacity_words}"
                )
    return violations

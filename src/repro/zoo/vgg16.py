"""VGG-16 layer shapes (Simonyan & Zisserman 2014), 224x224 input.

An extension workload: VGG's uniform 3x3 convs on power-of-two channel
counts and factor-7 feature maps are the *friendliest* possible case for
perfect factorization — a useful control group where Ruby-S should match
(not beat) PFM.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload

VGG16_LAYERS: Tuple[Tuple[ConvLayer, int], ...] = (
    (ConvLayer("vgg_conv1_1", c=3, m=64, p=224, q=224, r=3, s=3), 1),
    (ConvLayer("vgg_conv1_2", c=64, m=64, p=224, q=224, r=3, s=3), 1),
    (ConvLayer("vgg_conv2_1", c=64, m=128, p=112, q=112, r=3, s=3), 1),
    (ConvLayer("vgg_conv2_2", c=128, m=128, p=112, q=112, r=3, s=3), 1),
    (ConvLayer("vgg_conv3_1", c=128, m=256, p=56, q=56, r=3, s=3), 1),
    (ConvLayer("vgg_conv3_x", c=256, m=256, p=56, q=56, r=3, s=3), 2),
    (ConvLayer("vgg_conv4_1", c=256, m=512, p=28, q=28, r=3, s=3), 1),
    (ConvLayer("vgg_conv4_x", c=512, m=512, p=28, q=28, r=3, s=3), 2),
    (ConvLayer("vgg_conv5_x", c=512, m=512, p=14, q=14, r=3, s=3), 3),
)

VGG16_FC: Tuple[Tuple[GemmLayer, int], ...] = (
    (GemmLayer("vgg_fc6", m=4096, n=1, k=25088), 1),
    (GemmLayer("vgg_fc7", m=4096, n=1, k=4096), 1),
    (GemmLayer("vgg_fc8", m=1000, n=1, k=4096), 1),
)


def vgg16_workloads(include_fc: bool = True) -> List[Tuple[Workload, int]]:
    """All unique VGG-16 layers as ``(workload, count)`` pairs."""
    workloads = [(layer.workload(), count) for layer, count in VGG16_LAYERS]
    if include_fc:
        workloads += [(layer.workload(), count) for layer, count in VGG16_FC]
    return workloads

"""DeepBench workloads (Baidu Research benchmark suite).

A representative subselection of DeepBench inference kernels spanning the
domains the paper highlights — vision, speech-to-text (DeepSpeech), speaker
identification, face recognition, and OCR — mixing convolutions and GEMMs.
The paper itself evaluates "a selection of workloads from DeepBench"
(Fig. 11); vision layers built on ImageNet-style 7-divisible feature maps
map well under PFM, while speech/speaker/face shapes misalign with the
14x12 array and favor Ruby-S.

Conv shapes are expressed output-size-first (see
:class:`~repro.problem.conv.ConvLayer`); padding is folded into the shape.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload

# (layer, domain) pairs.
DEEPBENCH_CONV: Tuple[Tuple[ConvLayer, str], ...] = (
    # Vision: ImageNet-style shapes with factor-7 feature maps.
    (ConvLayer("db_vision_resnet_stem", c=3, m=64, p=112, q=112, r=7, s=7,
               stride_h=2, stride_w=2), "vision"),
    (ConvLayer("db_vision_56x56", c=64, m=64, p=56, q=56, r=1, s=1), "vision"),
    (ConvLayer("db_vision_28x28", c=128, m=128, p=28, q=28, r=3, s=3), "vision"),
    (ConvLayer("db_vision_14x14", c=256, m=256, p=14, q=14, r=3, s=3), "vision"),
    (ConvLayer("db_vision_7x7", c=512, m=512, p=7, q=7, r=3, s=3), "vision"),
    (ConvLayer("db_vision_vgg_like", c=64, m=128, p=112, q=112, r=3, s=3),
     "vision"),
    (ConvLayer("db_vision_5x5", c=48, m=128, p=27, q=27, r=5, s=5), "vision"),
    # Speech-to-text (DeepSpeech-style spectrogram convs). Layer 2's IFM is
    # 341x79x32 with a 5x10 filter (quoted in the paper); layer 1 works on
    # the raw 700x161 spectrogram.
    (ConvLayer("db_speech_conv1", c=1, m=32, p=348, q=71, r=5, s=20,
               stride_h=2, stride_w=2), "speech"),
    (ConvLayer("db_speech_conv2", c=32, m=32, p=169, q=35, r=5, s=10,
               stride_h=2, stride_w=2), "speech"),
    (ConvLayer("db_speech_conv3", c=32, m=96, p=79, q=33, r=3, s=5), "speech"),
    # Face recognition (DeepFace-style: odd feature-map sizes).
    (ConvLayer("db_face_conv1", c=3, m=32, p=142, q=142, r=3, s=3), "face"),
    (ConvLayer("db_face_conv2", c=32, m=16, p=71, q=71, r=9, s=9), "face"),
    (ConvLayer("db_face_conv3", c=16, m=16, p=63, q=63, r=9, s=9), "face"),
    # Speaker identification (filterbank feature maps).
    (ConvLayer("db_speaker_conv1", c=1, m=64, p=173, q=38, r=5, s=5,
               stride_h=2, stride_w=2), "speaker"),
    (ConvLayer("db_speaker_conv2", c=64, m=128, p=85, q=17, r=5, s=5,
               stride_h=2, stride_w=2), "speaker"),
    (ConvLayer("db_speaker_conv3", c=128, m=256, p=41, q=7, r=5, s=5,
               stride_h=2, stride_w=2), "speaker"),
    # OCR (tall skinny text-line maps).
    (ConvLayer("db_ocr_conv", c=16, m=32, p=24, q=94, r=3, s=3), "ocr"),
    (ConvLayer("db_ocr_conv2", c=32, m=64, p=12, q=47, r=3, s=3), "ocr"),
)

DEEPBENCH_GEMM: Tuple[Tuple[GemmLayer, str], ...] = (
    # Speech RNN/output projections (DeepSpeech-class shapes).
    (GemmLayer("db_gemm_speech_rnn", m=1760, n=16, k=1760), "speech"),
    (GemmLayer("db_gemm_speech_rnn_l", m=2560, n=32, k=2560), "speech"),
    (GemmLayer("db_gemm_speech_out", m=5124, n=9, k=2048), "speech"),
    (GemmLayer("db_gemm_speech_ctc", m=29, n=700, k=2560), "speech"),
    # Speaker-ID embedding layers.
    (GemmLayer("db_gemm_speaker", m=3072, n=16, k=1024), "speaker"),
    (GemmLayer("db_gemm_speaker_emb", m=512, n=24, k=3072), "speaker"),
    # Face-recognition fully-connected layers.
    (GemmLayer("db_gemm_face", m=4096, n=8, k=4096), "face"),
    (GemmLayer("db_gemm_face_cls", m=1008, n=8, k=4096), "face"),
    # OCR decoder.
    (GemmLayer("db_gemm_ocr", m=35, n=133, k=2560), "ocr"),
    (GemmLayer("db_gemm_ocr_enc", m=1024, n=133, k=512), "ocr"),
)


def deepbench_workloads() -> List[Tuple[Workload, str]]:
    """All DeepBench workloads as ``(workload, domain)`` pairs."""
    workloads = [(layer.workload(), domain) for layer, domain in DEEPBENCH_CONV]
    workloads += [(layer.workload(), domain) for layer, domain in DEEPBENCH_GEMM]
    return workloads


def deepbench_by_domain() -> Dict[str, List[Workload]]:
    """Group the suite by application domain."""
    grouped: Dict[str, List[Workload]] = {}
    for workload, domain in deepbench_workloads():
        grouped.setdefault(domain, []).append(workload)
    return grouped


def deepbench_representative() -> List[Tuple[Workload, int]]:
    """A fast subset (one kernel per domain), unit-weighted.

    Used by the architectural sweep (Fig. 13b/14b), which the paper also
    runs on a subselection of the suite.
    """
    picks = (
        "db_vision_28x28",
        "db_speech_conv2",
        "db_face_conv2",
        "db_speaker_conv2",
        "db_gemm_ocr",
    )
    by_name = {w.name: w for w, _ in deepbench_workloads()}
    return [(by_name[name], 1) for name in picks]

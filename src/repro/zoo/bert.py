"""BERT-base transformer GEMM shapes (Devlin et al. 2018).

An extension workload family: transformer inference is GEMM-dominated with
hidden sizes (768, 3072) and head counts (12) that misalign with most PE
arrays — prime-free but 3-heavy factorizations where a 14x12 or 16x16
array rarely tiles cleanly. Sequence length 128 (batch 1).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload

SEQUENCE_LENGTH = 128
HIDDEN = 768
FFN = 3072
HEADS = 12
HEAD_DIM = HIDDEN // HEADS

# (layer, occurrences per encoder block) x 12 blocks.
BERT_BASE_LAYERS: Tuple[Tuple[GemmLayer, int], ...] = (
    # Q/K/V projections: three per block.
    (GemmLayer("bert_qkv_proj", m=HIDDEN, n=SEQUENCE_LENGTH, k=HIDDEN), 36),
    # Attention scores QK^T: per head.
    (GemmLayer("bert_attn_scores", m=SEQUENCE_LENGTH, n=SEQUENCE_LENGTH,
               k=HEAD_DIM), 144),
    # Attention-weighted values: per head.
    (GemmLayer("bert_attn_values", m=SEQUENCE_LENGTH, n=HEAD_DIM,
               k=SEQUENCE_LENGTH), 144),
    # Output projection.
    (GemmLayer("bert_attn_out", m=HIDDEN, n=SEQUENCE_LENGTH, k=HIDDEN), 12),
    # Feed-forward up / down.
    (GemmLayer("bert_ffn_up", m=FFN, n=SEQUENCE_LENGTH, k=HIDDEN), 12),
    (GemmLayer("bert_ffn_down", m=HIDDEN, n=SEQUENCE_LENGTH, k=FFN), 12),
)


def bert_base_workloads() -> List[Tuple[Workload, int]]:
    """All unique BERT-base GEMMs as ``(workload, count)`` pairs."""
    return [(layer.workload(), count) for layer, count in BERT_BASE_LAYERS]


def bert_representative() -> List[Tuple[Workload, int]]:
    """One projection, one attention, and one FFN GEMM, count-weighted."""
    picks = {"bert_qkv_proj": 36, "bert_attn_scores": 144, "bert_ffn_up": 12}
    by_name = {layer.name: layer for layer, _ in BERT_BASE_LAYERS}
    return [(by_name[name].workload(), count) for name, count in picks.items()]

"""AlexNet layer shapes (per-GPU grouped variant, as Eyeriss evaluates it).

The paper's Fig. 9 study uses layer 2 — IFM 27x27x48, weights 5x5x96 — the
classic case where Eyeriss's handcrafted strip-mined mapping beats
perfect-factorization mappers because 27 shares no useful factors with the
14x12 PE array.
"""

from __future__ import annotations

from typing import Tuple

from repro.problem.conv import ConvLayer
from repro.problem.workload import Workload

ALEXNET_LAYERS: Tuple[ConvLayer, ...] = (
    ConvLayer("alexnet_conv1", c=3, m=96, p=55, q=55, r=11, s=11,
              stride_h=4, stride_w=4),
    ConvLayer("alexnet_conv2", c=48, m=96, p=27, q=27, r=5, s=5),
    ConvLayer("alexnet_conv3", c=256, m=384, p=13, q=13, r=3, s=3),
    ConvLayer("alexnet_conv4", c=192, m=192, p=13, q=13, r=3, s=3),
    ConvLayer("alexnet_conv5", c=192, m=128, p=13, q=13, r=3, s=3),
)


def alexnet_conv2() -> Workload:
    """Layer 2 of AlexNet — the Fig. 9 handcrafted-vs-generated study."""
    return ALEXNET_LAYERS[1].workload()

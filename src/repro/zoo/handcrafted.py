"""Handcrafted Eyeriss mappings (the Fig. 9 strip-mining baseline).

Eyeriss's authors hand-mapped AlexNet layer 2 with *strip mining*: an
entire output row (Q = 27) is unrolled across the array together with the
filter rows (R = 5), the row is fully evaluated, then the next row's inputs
and parameters are fetched from the GLB. The 5x27 logical array occupies
135 of the 168 PEs. This module reconstructs that mapping in our
representation so generated mappings can be compared against it.
"""

from __future__ import annotations

from repro.arch.spec import Architecture
from repro.exceptions import SpecError
from repro.mapping.loop import Loop
from repro.mapping.nest import Mapping


def alexnet_conv2_strip_mined(arch: Architecture) -> Mapping:
    """The strip-mined AlexNet-conv2 mapping for an Eyeriss-like design.

    Structure (outer to inner):

    * DRAM temporal: output rows ``P = 27`` — one OFM row strip lives
      on-chip at a time; moving to the next row fetches fresh inputs and
      parameters (the access pattern the paper describes).
    * GLB temporal: channel blocks ``C = 24`` and output-channel blocks
      ``M = 6``.
    * GLB spatial: the logical ``5 x 27`` strip (filter rows x output
      columns) folded onto the physical 14x12 mesh the way Eyeriss folds
      it — two half-strips side by side: ``Q = 14`` (last 13) along X,
      ``Q-fold = 2`` and ``R = 5`` along Y. 135 PEs active.
    * PE temporal: ``M = 16`` output channels, ``C = 2`` input channels,
      and the filter columns ``S = 5``.

    Note the fold itself requires an imperfect spatial factor
    (``Q = 14`` with remainder 13): hand mappings routinely live outside
    the perfect-factorization mapspace, which is the point of Fig. 9.

    Requires a 14x12-capable mesh; raises :class:`SpecError` otherwise.
    """
    glb = arch.levels[1]
    fanout_x = glb.fanout_x if glb.fanout_x is not None else glb.fanout
    fanout_y = glb.fanout_y if glb.fanout_y is not None else 1
    if fanout_x < 14 or fanout_y < 10:
        raise SpecError(
            f"strip-mined mapping needs a >=14 x >=10 mesh, "
            f"{arch.name} provides {fanout_x}x{fanout_y}"
        )
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("P", 27)], []),
            (
                "GlobalBuffer",
                [Loop("C", 24), Loop("M", 6)],
                [
                    Loop("R", 5, spatial=True, axis=1),
                    Loop("Q", 2, spatial=True, axis=1),
                    Loop("Q", 14, 13, spatial=True, axis=0),
                ],
            ),
            (
                "PEBuffer",
                [Loop("M", 16), Loop("C", 2), Loop("S", 5)],
                [],
            ),
        ]
    )

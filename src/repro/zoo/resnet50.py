"""ResNet-50 layer shapes (He et al. 2015), torchvision bottleneck layout.

The list below enumerates every unique convolution shape in ResNet-50 for a
224x224 ImageNet input (batch 1), with the number of times each shape
occurs across the network, plus the final dense layer. The paper's Fig. 10
reports Ruby-S vs PFM per layer type; the biggest wins come from pointwise
(1x1) and dense layers whose dimensions misalign with the 14x12 array.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload

# (layer, occurrence count). Stage layout: [3, 4, 6, 3] bottleneck blocks.
RESNET50_LAYERS: Tuple[Tuple[ConvLayer, int], ...] = (
    # Stem: 7x7/2 convolution.
    (ConvLayer("conv1_7x7", c=3, m=64, p=112, q=112, r=7, s=7,
               stride_h=2, stride_w=2), 1),
    # Stage 2 (56x56 outputs).
    (ConvLayer("conv2_reduce_64", c=64, m=64, p=56, q=56), 1),
    (ConvLayer("conv2_3x3", c=64, m=64, p=56, q=56, r=3, s=3), 3),
    (ConvLayer("conv2_expand", c=64, m=256, p=56, q=56), 3),
    (ConvLayer("conv2_proj", c=64, m=256, p=56, q=56), 1),
    (ConvLayer("conv2_reduce_256", c=256, m=64, p=56, q=56), 2),
    # Stage 3 (28x28 outputs).
    (ConvLayer("conv3_reduce_first", c=256, m=128, p=56, q=56), 1),
    (ConvLayer("conv3_3x3_s2", c=128, m=128, p=28, q=28, r=3, s=3,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv3_3x3", c=128, m=128, p=28, q=28, r=3, s=3), 3),
    (ConvLayer("conv3_expand", c=128, m=512, p=28, q=28), 4),
    (ConvLayer("conv3_proj", c=256, m=512, p=28, q=28,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv3_reduce", c=512, m=128, p=28, q=28), 3),
    # Stage 4 (14x14 outputs).
    (ConvLayer("conv4_reduce_first", c=512, m=256, p=28, q=28), 1),
    (ConvLayer("conv4_3x3_s2", c=256, m=256, p=14, q=14, r=3, s=3,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv4_3x3", c=256, m=256, p=14, q=14, r=3, s=3), 5),
    (ConvLayer("conv4_expand", c=256, m=1024, p=14, q=14), 6),
    (ConvLayer("conv4_proj", c=512, m=1024, p=14, q=14,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv4_reduce", c=1024, m=256, p=14, q=14), 5),
    # Stage 5 (7x7 outputs).
    (ConvLayer("conv5_reduce_first", c=1024, m=512, p=14, q=14), 1),
    (ConvLayer("conv5_3x3_s2", c=512, m=512, p=7, q=7, r=3, s=3,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv5_3x3", c=512, m=512, p=7, q=7, r=3, s=3), 2),
    (ConvLayer("conv5_expand", c=512, m=2048, p=7, q=7), 3),
    (ConvLayer("conv5_proj", c=1024, m=2048, p=7, q=7,
               stride_h=2, stride_w=2), 1),
    (ConvLayer("conv5_reduce", c=2048, m=512, p=7, q=7), 2),
)

FC_LAYER = GemmLayer("fc1000", m=1000, n=1, k=2048)


def resnet50_workloads(include_fc: bool = True) -> List[Tuple[Workload, int]]:
    """All unique ResNet-50 layers as ``(workload, count)`` pairs."""
    workloads = [(layer.workload(), count) for layer, count in RESNET50_LAYERS]
    if include_fc:
        workloads.append((FC_LAYER.workload(), 1))
    return workloads


def resnet50_layer_types() -> Dict[str, List[str]]:
    """Group layer names by type (the Fig. 10 x-axis categories)."""
    groups: Dict[str, List[str]] = {
        "stem7x7": [],
        "conv3x3": [],
        "pointwise": [],
        "dense": [FC_LAYER.name],
    }
    for layer, _ in RESNET50_LAYERS:
        if layer.r == 7:
            groups["stem7x7"].append(layer.name)
        elif layer.r == 3:
            groups["conv3x3"].append(layer.name)
        else:
            groups["pointwise"].append(layer.name)
    return groups


def resnet50_representative(include_fc: bool = True) -> List[Tuple[Workload, int]]:
    """A smaller per-stage selection for fast experiments.

    One 3x3 and one pointwise layer per stage plus the stem (and the dense
    classifier), weighted by the full network's occurrence counts of the
    layers they represent.
    """
    picks = {
        "conv1_7x7": 1,
        "conv2_3x3": 3,
        "conv2_expand": 4,  # stands in for conv2 pointwise family
        "conv3_3x3": 4,
        "conv3_expand": 5,
        "conv4_3x3": 6,
        "conv4_expand": 7,
        "conv5_3x3": 3,
        "conv5_expand": 4,
    }
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workloads = [
        (by_name[name].workload(), count) for name, count in picks.items()
    ]
    if include_fc:
        workloads.append((FC_LAYER.workload(), 1))
    return workloads

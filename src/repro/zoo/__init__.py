"""Workload zoo: the benchmark layers evaluated by the paper."""

from repro.zoo.resnet50 import (
    RESNET50_LAYERS,
    resnet50_layer_types,
    resnet50_representative,
    resnet50_workloads,
)
from repro.zoo.alexnet import ALEXNET_LAYERS, alexnet_conv2
from repro.zoo.deepbench import (
    DEEPBENCH_CONV,
    DEEPBENCH_GEMM,
    deepbench_representative,
    deepbench_workloads,
)
from repro.zoo.toy import (
    fig7_conv_workload,
    fig7_matmul_workload,
    table1_workload,
)
from repro.zoo.handcrafted import alexnet_conv2_strip_mined
from repro.zoo.mobilenet import (
    MOBILENET_V1_LAYERS,
    mobilenet_representative,
    mobilenet_workloads,
)
from repro.zoo.vgg16 import VGG16_LAYERS, vgg16_workloads
from repro.zoo.bert import BERT_BASE_LAYERS, bert_base_workloads, bert_representative

__all__ = [
    "RESNET50_LAYERS",
    "resnet50_layer_types",
    "resnet50_representative",
    "resnet50_workloads",
    "ALEXNET_LAYERS",
    "alexnet_conv2",
    "DEEPBENCH_CONV",
    "DEEPBENCH_GEMM",
    "deepbench_representative",
    "deepbench_workloads",
    "fig7_conv_workload",
    "fig7_matmul_workload",
    "table1_workload",
    "alexnet_conv2_strip_mined",
    "MOBILENET_V1_LAYERS",
    "mobilenet_representative",
    "mobilenet_workloads",
    "VGG16_LAYERS",
    "vgg16_workloads",
    "BERT_BASE_LAYERS",
    "bert_base_workloads",
    "bert_representative",
]

"""MobileNetV1 layer shapes (Howard et al. 2017), 224x224 input.

An extension beyond the paper's benchmark set: MobileNet's alternating
depthwise / pointwise structure is dominated by exactly the layer families
where Ruby-S helps — pointwise (1x1) convs with channel counts that rarely
align with PE arrays, and depthwise convs whose only parallelism dims are
feature maps and channels.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.problem.conv import ConvLayer
from repro.problem.depthwise import DepthwiseConvLayer
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload

MobileNetLayer = Union[ConvLayer, DepthwiseConvLayer, GemmLayer]

# (layer, occurrence count).
MOBILENET_V1_LAYERS: Tuple[Tuple[MobileNetLayer, int], ...] = (
    (ConvLayer("mb_conv1", c=3, m=32, p=112, q=112, r=3, s=3,
               stride_h=2, stride_w=2), 1),
    (DepthwiseConvLayer("mb_dw1", c=32, p=112, q=112, r=3, s=3), 1),
    (ConvLayer("mb_pw1", c=32, m=64, p=112, q=112), 1),
    (DepthwiseConvLayer("mb_dw2", c=64, p=56, q=56, r=3, s=3,
                        stride_h=2, stride_w=2), 1),
    (ConvLayer("mb_pw2", c=64, m=128, p=56, q=56), 1),
    (DepthwiseConvLayer("mb_dw3", c=128, p=56, q=56, r=3, s=3), 1),
    (ConvLayer("mb_pw3", c=128, m=128, p=56, q=56), 1),
    (DepthwiseConvLayer("mb_dw4", c=128, p=28, q=28, r=3, s=3,
                        stride_h=2, stride_w=2), 1),
    (ConvLayer("mb_pw4", c=128, m=256, p=28, q=28), 1),
    (DepthwiseConvLayer("mb_dw5", c=256, p=28, q=28, r=3, s=3), 1),
    (ConvLayer("mb_pw5", c=256, m=256, p=28, q=28), 1),
    (DepthwiseConvLayer("mb_dw6", c=256, p=14, q=14, r=3, s=3,
                        stride_h=2, stride_w=2), 1),
    (ConvLayer("mb_pw6", c=256, m=512, p=14, q=14), 1),
    (DepthwiseConvLayer("mb_dw7", c=512, p=14, q=14, r=3, s=3), 5),
    (ConvLayer("mb_pw7", c=512, m=512, p=14, q=14), 5),
    (DepthwiseConvLayer("mb_dw8", c=512, p=7, q=7, r=3, s=3,
                        stride_h=2, stride_w=2), 1),
    (ConvLayer("mb_pw8", c=512, m=1024, p=7, q=7), 1),
    (DepthwiseConvLayer("mb_dw9", c=1024, p=7, q=7, r=3, s=3), 1),
    (ConvLayer("mb_pw9", c=1024, m=1024, p=7, q=7), 1),
    (GemmLayer("mb_fc", m=1000, n=1, k=1024), 1),
)


def mobilenet_workloads() -> List[Tuple[Workload, int]]:
    """All unique MobileNetV1 layers as ``(workload, count)`` pairs."""
    return [(layer.workload(), count) for layer, count in MOBILENET_V1_LAYERS]


def mobilenet_representative() -> List[Tuple[Workload, int]]:
    """A fast subset: one depthwise and one pointwise layer per resolution."""
    picks = {
        "mb_dw3": 1,
        "mb_pw3": 1,
        "mb_dw7": 5,
        "mb_pw7": 5,
        "mb_dw9": 1,
        "mb_pw9": 1,
    }
    by_name = {layer.name: layer for layer, _ in MOBILENET_V1_LAYERS}
    return [(by_name[name].workload(), count) for name, count in picks.items()]

"""Toy workloads of the paper's Section II-D / III studies."""

from __future__ import annotations

from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer, vector_workload
from repro.problem.workload import Workload


def fig7_matmul_workload() -> Workload:
    """The Fig. 7(a/b) study: a 100x100 matrix multiplication."""
    return GemmLayer("toy_matmul_100", m=100, n=100, k=100).workload()


def fig7_conv_workload() -> Workload:
    """The Fig. 7(c/d) study: 3x3x64 filter over a 28x28x64 image.

    Valid convolution (no padding), so the output feature map is 26x26.
    The paper additionally constrains C and M to be the only spatially
    mapped dims — expressed via a ConstraintSet at the call site.
    """
    return ConvLayer(
        "toy_conv_28", c=64, m=64, p=26, q=26, r=3, s=3
    ).workload()


def table1_workload(size: int) -> Workload:
    """The Table I study: a rank-1 tensor of ``size`` elements."""
    return vector_workload(f"table1_d{size}", size)


def fig8_workload(size: int) -> Workload:
    """The Fig. 8 padding study: distribute ``size`` elements over 16 PEs."""
    return vector_workload(f"fig8_d{size}", size)

"""Job table, worker pool, and journal-backed persistence for the service.

A submitted search becomes a :class:`ServiceJob`: parsed spec, canonical
signature, priority, and a lifecycle ``queued -> running -> ok | failed``
(or ``cancelled`` while still queued). The :class:`JobManager` owns the
priority queue, the worker threads that drain it, the per-(arch, workload)
warm-evaluator pool, and — when given a journal path — a crash-safe record
of every accepted request, so ``repro serve --resume`` re-enqueues exactly
the jobs that were accepted but never finished.

Journal record kinds (sharing the campaign journal's framing — fsynced
single-line appends, torn-tail-tolerant reads):

* ``{"kind": "service", "event": "start" | "resume", ...}`` — one per
  server process, an audit trail of service lifetimes.
* ``{"kind": "request", "job_id": ..., "spec": {...}, ...}`` — one per
  *accepted* (non-coalesced) request; carries the normalized spec so
  resume can re-run it without the original client.
* ``{"kind": "job", "job_id": ..., "status": "ok" | "failed" |
  "cancelled", ...}`` — the terminal record; resume skips jobs that
  have one.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.arch.spec import Architecture
from repro.core.mapper import Mapper, MapperConfig
from repro.exceptions import ReproError, ServiceError, SpecError
from repro.io.journal import Journal
from repro.io.serde import (
    architecture_from_dict,
    architecture_to_dict,
    mapping_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.obs.progress import progress_owner
from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload
from repro.search.result import SearchResult
from repro.service.admission import (
    DEFAULT_QUEUE_LIMIT,
    PRIORITY_RANK,
    AdmissionController,
    validate_priority,
)
from repro.service.coalesce import EvaluatorPool, canonical_signature

#: Architecture presets accepted as ``"arch": "<name>"`` shorthand.
#: Mirrors the CLI's preset table (kept here to avoid importing the CLI).
def _arch_presets() -> Dict[str, Any]:
    from repro.arch import eyeriss_like, simba_like, toy_linear_architecture

    return {
        "eyeriss": eyeriss_like,
        "simba": simba_like,
        "toy16": lambda: toy_linear_architecture(16),
        "toy9": lambda: toy_linear_architecture(9),
    }


#: Search-config request keys and their MapperConfig defaults. ``workers``
#: and ``start_method`` are deliberately absent: process-pool search inside
#: a threaded service is a resource-management decision the operator makes
#: via server flags, not individual requests.
_SEARCH_KEYS = (
    "kind",
    "objective",
    "strategy",
    "max_evaluations",
    "patience",
    "seed",
    "use_batch",
    "batch_size",
)

_TOP_LEVEL_KEYS = frozenset(("arch", "workload", "priority") + _SEARCH_KEYS)

JOB_STATES = ("queued", "running", "ok", "failed", "cancelled")


@dataclass(frozen=True)
class SearchSpec:
    """A parsed, validated search request.

    ``normalized`` is the canonical JSON form (serde dicts + resolved
    search config) — the coalescing signature hashes it, the journal
    stores it, and resume re-parses it, so a preset-name request and its
    expanded-dict equivalent are literally the same spec.
    """

    arch: Architecture
    workload: Workload
    config: MapperConfig
    normalized: Dict[str, Any]
    priority: str

    @property
    def signature(self) -> str:
        return canonical_signature(self.normalized)


def parse_search_spec(payload: Any) -> SearchSpec:
    """Parse a ``POST /v1/search`` body into a :class:`SearchSpec`.

    Accepted shape (all search keys optional, MapperConfig defaults)::

        {
          "arch": "eyeriss" | {<architecture dict>},
          "workload": {"gemm": {"m": 64, ...}}
                    | {"conv": {"c": 64, ...}}
                    | {<workload dict>},
          "kind": "ruby-s", "objective": "edp", "strategy": "random",
          "max_evaluations": 500, "patience": null, "seed": 0,
          "use_batch": true, "batch_size": 512,
          "priority": "high" | "normal" | "low"
        }

    Unknown top-level keys are rejected loudly (:class:`SpecError`), so a
    typoed ``"max_evals"`` fails the request instead of silently running
    a 10k-budget default search.
    """
    if not isinstance(payload, dict):
        raise SpecError(
            f"search request must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _TOP_LEVEL_KEYS)
    if unknown:
        raise SpecError(
            f"unknown search request keys {unknown}; allowed: "
            f"{sorted(_TOP_LEVEL_KEYS)}"
        )
    arch = _parse_arch(payload.get("arch", "eyeriss"))
    workload = _parse_workload(payload.get("workload"))
    priority = validate_priority(payload.get("priority"))

    overrides: Dict[str, Any] = {}
    for key in _SEARCH_KEYS:
        if key in payload:
            overrides[key] = payload[key]
    try:
        config = MapperConfig(**overrides)
    except TypeError as error:
        raise SpecError(f"bad search configuration: {error}") from error
    # Resolve every search key (default or override) into the normalized
    # form so "omitted" and "explicitly the default" coalesce.
    search = {key: getattr(config, key) for key in _SEARCH_KEYS}
    search["kind"] = str(getattr(search["kind"], "value", search["kind"]))
    normalized = {
        "arch": architecture_to_dict(arch),
        "workload": workload_to_dict(workload),
        "search": search,
    }
    return SearchSpec(
        arch=arch,
        workload=workload,
        config=config,
        normalized=normalized,
        priority=priority,
    )


def _parse_arch(value: Any) -> Architecture:
    if isinstance(value, str):
        presets = _arch_presets()
        if value not in presets:
            raise SpecError(
                f"unknown architecture preset {value!r}; use one of "
                f"{sorted(presets)} or pass a full architecture dict"
            )
        return presets[value]()
    if isinstance(value, dict):
        return architecture_from_dict(value)
    raise SpecError(
        f"'arch' must be a preset name or an architecture dict, got "
        f"{type(value).__name__}"
    )


def _parse_workload(value: Any) -> Workload:
    if not isinstance(value, dict):
        raise SpecError(
            "'workload' must be a dict: {'gemm': {...}}, {'conv': {...}}, "
            "or a serialized workload"
        )
    if "gemm" in value or "conv" in value:
        extra = set(value) - {"gemm", "conv", "name"}
        if extra or ("gemm" in value and "conv" in value):
            raise SpecError(
                "workload shorthand takes exactly one of 'gemm'/'conv' "
                "plus an optional 'name'"
            )
        name = value.get("name", "request")
        shape = value.get("gemm") or value.get("conv")
        if not isinstance(shape, dict):
            raise SpecError("workload shape must be a dict of DIM: SIZE")
        dims = {str(k).lower(): int(v) for k, v in shape.items()}
        try:
            if "gemm" in value:
                return GemmLayer(name=name, **dims).workload()
            return ConvLayer(name=name, **dims).workload()
        except TypeError as error:
            raise SpecError(f"bad workload shape: {error}") from error
    return workload_from_dict(value)


class ServiceJob:
    """One accepted search request and its lifecycle."""

    def __init__(
        self, job_id: str, spec: SearchSpec, seq: int
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.seq = seq
        self.priority = spec.priority
        self.state = "queued"
        self.submitted_s = time.time()
        self.submitted_monotonic = time.monotonic()
        self.started_monotonic: Optional[float] = None
        self.finished_monotonic: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, Any]] = None
        #: Requests served by this job beyond the first (coalesced).
        self.attached = 0

    @property
    def signature(self) -> str:
        return self.spec.signature

    @property
    def terminal(self) -> bool:
        return self.state in ("ok", "failed", "cancelled")

    def queue_wait_s(self) -> Optional[float]:
        if self.started_monotonic is None:
            return None
        return self.started_monotonic - self.submitted_monotonic

    def run_s(self) -> Optional[float]:
        if self.started_monotonic is None or self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.started_monotonic

    def payload(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON body for ``GET /v1/jobs/<id>``."""
        body: Dict[str, Any] = {
            "job_id": self.id,
            "state": self.state,
            "priority": self.priority,
            "signature": self.signature,
            "submitted_s": self.submitted_s,
            "queue_wait_s": self.queue_wait_s(),
            "run_s": self.run_s(),
            "coalesced_requests": self.attached,
        }
        if include_result and self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        return body


def result_payload(result: SearchResult) -> Dict[str, Any]:
    """Serialize a :class:`SearchResult` for the job's JSON body."""
    body: Dict[str, Any] = {
        "objective": result.objective,
        "num_evaluated": result.num_evaluated,
        "num_valid": result.num_valid,
        "terminated_by": result.terminated_by,
        "stats": result.stats,
        "best": None,
    }
    if result.best is not None:
        best = result.best
        body["best"] = {
            "metric": best.metric(result.objective),
            "edp": best.edp,
            "energy_pj": best.energy_pj,
            "cycles": best.cycles,
            "utilization": best.utilization,
            "mapping": mapping_to_dict(best.mapping),
        }
    return body


class JobManager:
    """Priority queue + worker pool + journal behind the service routes.

    Args:
        workers: worker-thread count (each runs one search at a time).
        queue_limit: admission bound on queued jobs (429 beyond it).
        journal_path: when given, accepted requests and terminal outcomes
            are journaled for ``--resume``.
        pool_size / cache_entries: warm-evaluator pool shape
            (see :class:`~repro.service.coalesce.EvaluatorPool`).
    """

    def __init__(
        self,
        workers: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        journal_path: Optional[str] = None,
        pool_size: Optional[int] = None,
        cache_entries: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.admission = AdmissionController(queue_limit=queue_limit)
        pool_kwargs: Dict[str, Any] = {}
        if pool_size is not None:
            pool_kwargs["max_entries"] = pool_size
        if cache_entries is not None:
            pool_kwargs["cache_entries"] = cache_entries
        self.pool = EvaluatorPool(**pool_kwargs)
        self.journal = Journal(journal_path) if journal_path else None

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, ServiceJob] = {}
        #: signature -> job id for jobs still in flight (queued/running).
        self._inflight: Dict[str, str] = {}
        #: heap of (priority_rank, seq, job_id); cancelled entries are
        #: skipped lazily on pop.
        self._queue: List[Tuple[int, int, str]] = []
        self._seq = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        self.coalesced = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Journal the service start and launch the worker threads."""
        if self._threads:
            raise ServiceError("job manager already started")
        if self.journal is not None:
            self.journal.append(
                {
                    "kind": "service",
                    "event": "start",
                    "time": time.time(),
                    "workers": self.workers,
                    "queue_limit": self.admission.queue_limit,
                }
            )
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop workers after their current job; queued jobs stay journaled."""
        with self._work:
            self._shutdown = True
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    def resume(self) -> int:
        """Re-enqueue journaled requests that never reached a terminal state.

        Returns the number of jobs recovered. Must run before
        :meth:`start` (single-threaded: no locking subtleties).
        """
        if self.journal is None or not self.journal.exists():
            return 0
        records = self.journal.read()
        requests: Dict[str, Dict[str, Any]] = {}
        terminal = set()
        max_seq = 0
        for record in records:
            kind = record.get("kind")
            if kind == "request":
                requests[record["job_id"]] = record
                max_seq = max(max_seq, int(record.get("seq", 0)))
            elif kind == "job" and record.get("status") in (
                "ok",
                "failed",
                "cancelled",
            ):
                terminal.add(record["job_id"])
        # Restart the seq counter above every journaled request so
        # recovered and fresh jobs never collide on (rank, seq).
        self._seq = itertools.count(max_seq + 1)
        recovered = 0
        for job_id, record in requests.items():
            if job_id in terminal:
                continue
            spec = self._spec_from_normalized(
                record["spec"], record.get("priority")
            )
            seq = int(record.get("seq", 0)) or next(self._seq)
            job = ServiceJob(job_id, spec, seq)
            self._jobs[job.id] = job
            self._inflight[job.signature] = job.id
            heapq.heappush(
                self._queue, (PRIORITY_RANK[job.priority], seq, job.id)
            )
            recovered += 1
        if recovered or records:
            self.journal.append(
                {
                    "kind": "service",
                    "event": "resume",
                    "time": time.time(),
                    "recovered": recovered,
                }
            )
        obs.inc("service.resumed_jobs", recovered)
        return recovered

    @staticmethod
    def _spec_from_normalized(
        normalized: Dict[str, Any], priority: Optional[str]
    ) -> SearchSpec:
        """Rebuild a spec from its journaled normalized form."""
        arch = architecture_from_dict(normalized["arch"])
        workload = workload_from_dict(normalized["workload"])
        config = MapperConfig(**normalized["search"])
        return SearchSpec(
            arch=arch,
            workload=workload,
            config=config,
            normalized=normalized,
            priority=validate_priority(priority),
        )

    # ------------------------------------------------------------ submission

    def submit(self, payload: Any) -> Tuple[ServiceJob, bool]:
        """Parse, coalesce-or-admit, and enqueue one request.

        Returns ``(job, coalesced)`` — ``coalesced`` means the request
        attached to an already in-flight identical job instead of
        creating a new one. Raises :class:`SpecError` (400) on a bad
        spec and :class:`~repro.exceptions.AdmissionError` (429) when
        the queue is at its bound.
        """
        spec = parse_search_spec(payload)
        signature = spec.signature
        with self._work:
            if self._shutdown:
                raise ServiceError("service is shutting down")
            existing_id = self._inflight.get(signature)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.attached += 1
                self.coalesced += 1
                obs.inc("service.coalesced")
                return job, True
            queued = sum(
                1 for _, _, jid in self._queue
                if self._jobs[jid].state == "queued"
            )
            self.admission.admit(queued, self.workers)
            seq = next(self._seq)
            job_id = f"j{seq:06d}-{signature[:8]}"
            job = ServiceJob(job_id, spec, seq)
            # Register (so duplicates coalesce immediately) but do NOT
            # enqueue yet: the request record must hit the journal before
            # a worker can produce its terminal record, so a SIGKILL at
            # any point leaves either no trace (client got no response)
            # or a resumable request — never a lost accepted job.
            self._jobs[job.id] = job
            self._inflight[signature] = job.id
        if self.journal is not None:
            self.journal.append(
                {
                    "kind": "request",
                    "job_id": job.id,
                    "seq": job.seq,
                    "priority": job.priority,
                    "signature": signature,
                    "spec": spec.normalized,
                    "time": time.time(),
                }
            )
        with self._work:
            heapq.heappush(
                self._queue, (PRIORITY_RANK[job.priority], seq, job.id)
            )
            obs.inc("service.accepted")
            obs.set_gauge("service.queue_depth", float(queued + 1))
            self._work.notify()
        return job, False

    def get(self, job_id: str) -> Optional[ServiceJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> ServiceJob:
        """Cancel a *queued* job; running/terminal jobs raise 409.

        Searches have no preemption point, so a running job cannot be
        cancelled — the client polls it to completion (it stays cached
        for any identical future request anyway).
        """
        with self._work:
            job = self._jobs.get(job_id)
            if job is None:
                error = SpecError(f"no such job {job_id!r}")
                error.http_status = 404
                raise error
            if job.state != "queued":
                error = ServiceError(
                    f"job {job_id!r} is {job.state}; only queued jobs "
                    f"can be cancelled"
                )
                error.http_status = 409
                raise error
            job.state = "cancelled"
            job.finished_monotonic = time.monotonic()
            self._inflight.pop(job.signature, None)
            obs.inc("service.cancelled")
        self._journal_terminal(job)
        return job

    def jobs(self) -> List[ServiceJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "jobs": states,
                "coalesced": self.coalesced,
                "rejected": self.admission.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "workers": self.workers,
                "queue_limit": self.admission.queue_limit,
                "mean_latency_s": self.admission.mean_latency_s(),
                "pool": self.pool.stats(),
            }

    # ------------------------------------------------------------- execution

    def _next_job(self) -> Optional[ServiceJob]:
        """Block for the next runnable job; None means shutdown."""
        with self._work:
            while True:
                if self._shutdown:
                    # Queued jobs stay journaled for --resume rather
                    # than stretching shutdown by a whole queue drain.
                    return None
                while self._queue:
                    _, _, job_id = heapq.heappop(self._queue)
                    job = self._jobs[job_id]
                    if job.state != "queued":
                        continue  # cancelled while queued
                    job.state = "running"
                    job.started_monotonic = time.monotonic()
                    return job
                self._work.wait()

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            wait_s = job.queue_wait_s() or 0.0
            obs.observe("service.queue_wait_s", wait_s)
            try:
                result = self._execute(job)
                job.result = result_payload(result)
                job.error = None
                status = "ok"
            except ReproError as error:
                job.error = error.payload()
                status = "failed"
            except Exception as error:  # noqa: BLE001 - job boundary
                job.error = {
                    "type": type(error).__name__,
                    "message": str(error),
                    "exit_code": 1,
                    "http_status": 500,
                }
                status = "failed"
            finished = time.monotonic()
            with self._work:
                job.state = status
                job.finished_monotonic = finished
                self._inflight.pop(job.signature, None)
                if status == "ok":
                    self.completed += 1
                else:
                    self.failed += 1
            run_s = job.run_s() or 0.0
            self.admission.observe_latency(run_s)
            obs.observe("service.search_latency_s", run_s)
            obs.inc(f"service.jobs_{status}")
            self._journal_terminal(job)

    def _execute(self, job: ServiceJob) -> SearchResult:
        """Run one job's search against the warm pool, owning its progress."""
        spec = job.spec
        entry, reused = self.pool.acquire(spec.arch, spec.workload)
        if reused:
            obs.inc("service.pool_reuse")
        try:
            with progress_owner(job.id), obs.trace(
                "service.job",
                job_id=job.id,
                strategy=spec.config.strategy,
                reused_evaluator=reused,
            ):
                mapper = Mapper(
                    entry.arch,
                    entry.workload,
                    spec.config,
                    evaluator=entry.evaluator,
                    batch_engine=entry.engine,
                )
                return mapper.run()
        finally:
            self.pool.release(entry)

    def _journal_terminal(self, job: ServiceJob) -> None:
        if self.journal is None:
            return
        record: Dict[str, Any] = {
            "kind": "job",
            "job_id": job.id,
            "status": job.state,
            "time": time.time(),
            "queue_wait_s": job.queue_wait_s(),
            "run_s": job.run_s(),
        }
        if job.error is not None:
            record["error"] = job.error
        if job.result is not None and job.result.get("best") is not None:
            # Journal the scalar outcome, not the full mapping: enough to
            # audit bit-identical resume behaviour without bloating lines.
            best = job.result["best"]
            record["best"] = {
                "metric": best["metric"],
                "edp": best["edp"],
                "cycles": best["cycles"],
            }
        self.journal.append(record)

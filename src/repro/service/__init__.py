"""Mapper-as-a-service: a long-lived search server over the library.

``repro serve`` turns the one-shot :func:`~repro.core.mapper.find_best_mapping`
flow into a process that accepts JSON search requests over HTTP, runs them
on a bounded worker pool behind admission control, coalesces identical
in-flight requests, keeps evaluators (and their evaluation caches) warm
across requests, and journals accepted work so ``--resume`` recovers after
a crash. See docs/service.md for the API and operational policies.
"""

from repro.service.admission import (
    DEFAULT_QUEUE_LIMIT,
    PRIORITY_RANK,
    AdmissionController,
    validate_priority,
)
from repro.service.coalesce import (
    EvaluatorPool,
    SharedBatchEngine,
    ThreadSafeEvaluationCache,
    canonical_signature,
    pair_signature,
)
from repro.service.jobs import (
    JobManager,
    SearchSpec,
    ServiceJob,
    parse_search_spec,
    result_payload,
)
from repro.service.server import (
    SERVICE_SCHEMA,
    MappingService,
    error_response,
    service_routes,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_QUEUE_LIMIT",
    "EvaluatorPool",
    "JobManager",
    "MappingService",
    "PRIORITY_RANK",
    "SERVICE_SCHEMA",
    "SearchSpec",
    "ServiceJob",
    "SharedBatchEngine",
    "ThreadSafeEvaluationCache",
    "canonical_signature",
    "error_response",
    "pair_signature",
    "parse_search_spec",
    "result_payload",
    "service_routes",
    "validate_priority",
]

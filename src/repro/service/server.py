"""The mapper service: ``/v1/*`` search API mounted on the obs server.

One listener serves both planes: the ``/v1`` request API here and the
telemetry routes (``/healthz``, ``/metrics``, ``/progress``, ``/flame``)
from :func:`repro.obs.server.obs_routes`, so an operator probes and
scrapes the same port clients submit to.

==============================  ==========================================
route                           behaviour
==============================  ==========================================
``POST /v1/search``             submit a search; ``202`` + job body (an
                                identical in-flight request coalesces to
                                the same ``job_id``); ``429`` +
                                ``Retry-After`` when the queue is full
``GET /v1/jobs``                all jobs, oldest first
``GET /v1/jobs/<id>``           one job's state / result / error
``GET /v1/jobs/<id>/progress``  job state + live tracker snapshots owned
                                by that job
``DELETE /v1/jobs/<id>``        cancel a *queued* job (running: ``409``)
``GET /v1/stats``               queue/pool/coalescing counters
==============================  ==========================================

Errors map through the exception taxonomy: every
:class:`~repro.exceptions.ReproError` renders as its ``payload()`` under
its class ``http_status`` (SpecError 400, SearchError 422, AdmissionError
429 + ``Retry-After``, ServiceError 503, ...), so service clients see the
same structured errors campaign journals record.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro import obs
from repro.exceptions import AdmissionError, ReproError, SpecError
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import (
    ObsServer,
    RouteRequest,
    RouteResponse,
    RouteSet,
    progress_payload,
)
from repro.obs.tracing import Tracer
from repro.service.admission import DEFAULT_QUEUE_LIMIT
from repro.service.jobs import JobManager

#: Versioned envelope for service payloads (job bodies, stats).
SERVICE_SCHEMA = 1


def error_response(error: ReproError) -> RouteResponse:
    """Render a repro error as its taxonomy-assigned HTTP response."""
    headers = {}
    if isinstance(error, AdmissionError):
        # RFC 7231 wants delay-seconds as an integer; round up so a
        # compliant client never retries before the hinted window.
        headers["Retry-After"] = str(max(1, int(-(-error.retry_after_s // 1))))
    return RouteResponse.json(
        {"schema": SERVICE_SCHEMA, "error": error.payload()},
        status=error.http_status,
        headers=headers,
    )


def _guarded(handler):
    """Wrap a route so ReproErrors become structured HTTP errors."""

    def wrapped(request: RouteRequest) -> RouteResponse:
        try:
            return handler(request)
        except ReproError as error:
            obs.inc("service.http_errors", status=str(error.http_status))
            return error_response(error)

    return wrapped


def service_routes(manager: JobManager) -> RouteSet:
    """The ``/v1`` route bundle over one :class:`JobManager`."""
    routes = RouteSet()

    def submit(request: RouteRequest) -> RouteResponse:
        try:
            payload = request.json()
        except (ValueError, UnicodeDecodeError) as error:
            raise SpecError(f"request body is not valid JSON: {error}")
        job, coalesced = manager.submit(payload)
        body = job.payload(include_result=False)
        body.update({"schema": SERVICE_SCHEMA, "coalesced": coalesced})
        return RouteResponse.json(body, status=202)

    def list_jobs(_request: RouteRequest) -> RouteResponse:
        return RouteResponse.json(
            {
                "schema": SERVICE_SCHEMA,
                "jobs": [
                    job.payload(include_result=False)
                    for job in manager.jobs()
                ],
            }
        )

    def _job(request: RouteRequest):
        job_id = request.param("job_id")
        job = manager.get(job_id)
        if job is None:
            error = SpecError(f"no such job {job_id!r}")
            error.http_status = 404
            raise error
        return job

    def get_job(request: RouteRequest) -> RouteResponse:
        body = _job(request).payload()
        body["schema"] = SERVICE_SCHEMA
        return RouteResponse.json(body)

    def job_progress(request: RouteRequest) -> RouteResponse:
        job = _job(request)
        body = progress_payload(job=job.id)
        body.update(
            {
                "job_id": job.id,
                "state": job.state,
                "queue_wait_s": job.queue_wait_s(),
            }
        )
        return RouteResponse.json(body)

    def cancel_job(request: RouteRequest) -> RouteResponse:
        job = manager.cancel(request.param("job_id"))
        body = job.payload(include_result=False)
        body["schema"] = SERVICE_SCHEMA
        return RouteResponse.json(body)

    def stats(_request: RouteRequest) -> RouteResponse:
        body = manager.stats()
        body["schema"] = SERVICE_SCHEMA
        return RouteResponse.json(body)

    job_path = r"/v1/jobs/(?P<job_id>[A-Za-z0-9_.\-]+)"
    routes.add("POST", "/v1/search", _guarded(submit))
    routes.add("GET", "/v1/jobs", _guarded(list_jobs))
    routes.add("GET", "/v1/stats", _guarded(stats))
    routes.add_pattern("GET", job_path, _guarded(get_job))
    routes.add_pattern("GET", job_path + "/progress", _guarded(job_progress))
    routes.add_pattern("DELETE", job_path, _guarded(cancel_job))
    return routes


class MappingService:
    """One process's mapper service: job manager + combined HTTP listener.

    Args:
        registry: metrics registry the telemetry routes expose (install
            it as the ambient obs scope so searches record into it).
        tracer: span source for ``/flame``.
        host / port: bind address (``port=0`` picks an ephemeral port).
        workers: search worker threads.
        queue_limit: admission bound (429 beyond it).
        journal_path: service journal for crash recovery; ``None``
            disables persistence.
        resume: recover journaled unfinished jobs before serving.
        pool_size / cache_entries: warm-evaluator pool shape.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        journal_path: Optional[str] = None,
        resume: bool = False,
        pool_size: Optional[int] = None,
        cache_entries: Optional[int] = None,
    ) -> None:
        self.manager = JobManager(
            workers=workers,
            queue_limit=queue_limit,
            journal_path=journal_path,
            pool_size=pool_size,
            cache_entries=cache_entries,
        )
        self._resume = resume
        self._registry = registry
        self._tracer = tracer
        self._scope = None
        self.server = ObsServer(
            registry,
            tracer,
            host=host,
            port=port,
            extra_routes=service_routes(self.manager),
        )
        self.recovered = 0

    def start(self) -> "MappingService":
        """Recover (when asked), start workers, then bind the listener.

        Installs the service's registry as the ambient obs scope for its
        lifetime so worker-thread searches (and the service's own
        counters) land on the ``/metrics`` this listener serves, without
        requiring every embedder to wrap the service in ``obs_scope``.
        """
        if self._scope is None:
            from repro.obs import obs_scope

            self._scope = obs_scope(
                registry=self._registry, tracer=self._tracer
            )
            self._scope.__enter__()
        if self._resume:
            self.recovered = self.manager.resume()
        self.manager.start()
        self.server.start()
        return self

    def stop(self) -> None:
        """Stop accepting, then stop workers after their current job."""
        self.server.stop()
        self.manager.stop()
        if self._scope is not None:
            self._scope.__exit__(None, None, None)
            self._scope = None

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "MappingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def request_json(payload: Any) -> bytes:
    """Encode a request body for tests and the smoke client."""
    return json.dumps(payload).encode("utf-8")

"""Admission control for the mapper service: bounded queues, honest 429s.

A long-lived search server dies one of two ways under load: it accepts
everything and OOMs/queues unboundedly, or it drops requests with no
signal about when to come back. Admission control is the third option —
a hard queue-depth bound enforced *before* a request is accepted, with a
``Retry-After`` hint computed from the latency the service is actually
observing, so well-behaved clients converge on the service's real
throughput instead of hammering it.

The controller is deliberately small: one lock, one bounded deque of
recent per-job wall-clocks, one decision method. Priorities do not buy
admission — a full queue 429s a ``high`` request too (otherwise high
traffic could starve the queue bound into meaninglessness); they only
reorder what was already admitted (see :mod:`repro.service.jobs`).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Optional

from repro.exceptions import AdmissionError, SpecError

#: Request priorities, best first. The rank is the heap key prefix in
#: the job queue; admission itself is priority-blind.
PRIORITY_RANK: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}

DEFAULT_PRIORITY = "normal"

#: Default bound on queued (admitted but not yet running) requests.
DEFAULT_QUEUE_LIMIT = 32

#: Fallback per-job latency estimate before the service has completed
#: anything — better to overestimate Retry-After on a cold server than
#: to invite an immediate retry storm.
COLD_START_LATENCY_S = 2.0

#: Recent-latency window for the Retry-After estimate.
LATENCY_WINDOW = 64


def validate_priority(priority: Optional[str]) -> str:
    """Normalize and validate a request priority (SpecError on junk)."""
    if priority is None:
        return DEFAULT_PRIORITY
    if priority not in PRIORITY_RANK:
        raise SpecError(
            f"unknown priority {priority!r}; use one of "
            f"{sorted(PRIORITY_RANK)}"
        )
    return priority


class AdmissionController:
    """Queue-depth admission with a latency-derived Retry-After hint.

    Args:
        queue_limit: maximum queued (not yet running) jobs; a submit that
            would exceed it raises :class:`~repro.exceptions.AdmissionError`
            (HTTP 429).
        min_retry_after_s: floor for the Retry-After hint.
    """

    def __init__(
        self,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        min_retry_after_s: float = 1.0,
    ) -> None:
        if queue_limit < 1:
            raise SpecError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        self.min_retry_after_s = min_retry_after_s
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.rejected = 0

    def observe_latency(self, seconds: float) -> None:
        """Feed one completed job's wall-clock into the estimate."""
        with self._lock:
            self._latencies.append(max(0.0, float(seconds)))

    def mean_latency_s(self) -> float:
        """Recent mean per-job latency (cold-start fallback when empty)."""
        with self._lock:
            if not self._latencies:
                return COLD_START_LATENCY_S
            return sum(self._latencies) / len(self._latencies)

    def retry_after_s(self, queue_depth: int, workers: int) -> float:
        """How long until a queue this deep likely has room.

        ``depth / workers`` rounds of the recent mean latency must drain
        before a new slot opens; the floor keeps the hint useful when
        jobs are sub-second.
        """
        rounds = math.ceil(max(1, queue_depth) / max(1, workers))
        return max(self.min_retry_after_s, rounds * self.mean_latency_s())

    def admit(self, queue_depth: int, workers: int) -> None:
        """Raise :class:`AdmissionError` if the queue is at its bound.

        Called with the submit lock held (the depth must not race the
        insert); counts the rejection so ``/v1/stats`` and the
        ``service.rejected`` metric agree.
        """
        if queue_depth < self.queue_limit:
            return
        retry_after = round(self.retry_after_s(queue_depth, workers), 3)
        with self._lock:
            self.rejected += 1
        raise AdmissionError(
            queue_depth=queue_depth,
            limit=self.queue_limit,
            retry_after_s=retry_after,
        )

"""Request coalescing and the shared warm-evaluator pool.

Two forms of sharing keep a mapper service cheap under repeated load:

1. **Request coalescing** — two requests with the same canonical
   ``(architecture, workload, search-config)`` signature are the *same
   search* (searches are seeded and deterministic), so the second attaches
   to the first's job instead of burning a worker slot. The signature is a
   SHA-256 over the sorted-JSON serde dicts, so a preset-name request and
   the equivalent full-dict request coalesce.

2. **Evaluator warm-keep** — repeated requests against the same
   ``(architecture, workload)`` pair reuse one
   :class:`~repro.model.evaluator.Evaluator` carrying a thread-safe
   :class:`~repro.model.eval_cache.EvaluationCache` and, when supported,
   one shared :class:`~repro.model.batch.BatchEvaluator` layout. The pool
   is bounded; eviction is *warm-keep*: cold entries (fewest cache hits
   since admission) go first, and entries pinned by in-flight jobs are
   never evicted regardless of temperature.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.arch.spec import Architecture
from repro.energy.table import EnergyTable
from repro.exceptions import ServiceError
from repro.io.serde import architecture_to_dict, workload_to_dict
from repro.model.eval_cache import EvaluationCache
from repro.model.evaluator import Evaluation, Evaluator
from repro.problem.workload import Workload

#: Default bound on distinct (arch, workload) evaluator entries kept warm.
DEFAULT_POOL_SIZE = 8

#: Per-entry evaluation-cache bound. Smaller than the library default:
#: the service keeps several caches alive at once.
DEFAULT_CACHE_ENTRIES = 20_000


def canonical_signature(payload: Dict[str, Any]) -> str:
    """Deterministic hash of a JSON-serializable request payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def pair_signature(arch: Architecture, workload: Workload) -> str:
    """Signature of an (architecture, workload) pair — the pool key."""
    return canonical_signature(
        {
            "arch": architecture_to_dict(arch),
            "workload": workload_to_dict(workload),
        }
    )


class ThreadSafeEvaluationCache(EvaluationCache):
    """An :class:`EvaluationCache` safe to share across worker threads.

    The parent is deliberately lock-free (single-owner search loops); the
    service shares one cache per (arch, workload) entry across its worker
    pool, so lookups and inserts here take a lock. Counter updates ride
    inside it, keeping hit/miss stats exact under concurrency.
    """

    __slots__ = ("_cache_lock",)

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        super().__init__(max_entries)
        self._cache_lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Evaluation]:
        with self._cache_lock:
            return super().get(key)

    def put(self, key: Hashable, evaluation: Evaluation) -> None:
        with self._cache_lock:
            super().put(key, evaluation)

    def clear(self) -> None:
        with self._cache_lock:
            super().clear()


class SharedBatchEngine:
    """Serialize access to one :class:`BatchEvaluator` across threads.

    The batch engine mutates its own counters and scratch state per call,
    so concurrent searches sharing one engine must not interleave inside
    ``evaluate_mappings``. A plain lock suffices: batch calls are long
    enough that contention is amortized, and the shared evaluation cache
    means the *second* search through a region mostly hits anyway.
    """

    def __init__(self, engine: Any) -> None:
        self._engine = engine
        self._lock = threading.Lock()

    @property
    def supported(self) -> bool:
        return bool(getattr(self._engine, "supported", False))

    @property
    def unsupported_reason(self) -> str:
        return getattr(self._engine, "unsupported_reason", "")

    @property
    def evaluator(self) -> Evaluator:
        return self._engine.evaluator

    def evaluate_mappings(self, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            return self._engine.evaluate_mappings(*args, **kwargs)

    def evaluate_batch(self, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            return self._engine.evaluate_batch(*args, **kwargs)

    def stats_payload(self) -> Dict[str, Any]:
        with self._lock:
            return self._engine.stats_payload()


class _PoolEntry:
    """One warm (architecture, workload) evaluator slot."""

    __slots__ = (
        "signature",
        "arch",
        "workload",
        "evaluator",
        "cache",
        "engine",
        "pins",
        "admitted_hits",
        "last_used",
    )

    def __init__(
        self,
        signature: str,
        arch: Architecture,
        workload: Workload,
        evaluator: Evaluator,
        cache: ThreadSafeEvaluationCache,
        engine: Optional[SharedBatchEngine],
    ) -> None:
        self.signature = signature
        self.arch = arch
        self.workload = workload
        self.evaluator = evaluator
        self.cache = cache
        self.engine = engine
        self.pins = 0
        # Hit count at admission: temperature is hits *since* this entry
        # joined the pool, so a re-admitted pair starts cold again.
        self.admitted_hits = 0
        self.last_used = 0

    def temperature(self) -> int:
        """Cache hits earned since admission — the warm-keep key."""
        return self.cache.hits - self.admitted_hits


class EvaluatorPool:
    """Bounded pool of warm per-(arch, workload) evaluators.

    ``acquire`` returns a pinned entry (refcounted; call ``release`` when
    the job finishes). When admitting a new pair would exceed the bound,
    the *coldest* unpinned entry — fewest cache hits since admission,
    ties broken least-recently-used — is evicted. If every entry is
    pinned the pool grows past its bound rather than stall a job; it
    shrinks back as pins drop.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_POOL_SIZE,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        energy_table: Optional[EnergyTable] = None,
    ) -> None:
        if max_entries < 1:
            raise ServiceError(
                f"evaluator pool needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.cache_entries = cache_entries
        self.energy_table = energy_table
        self._lock = threading.Lock()
        self._entries: Dict[str, _PoolEntry] = {}
        self._clock = 0
        self.admissions = 0
        self.reuses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def acquire(
        self, arch: Architecture, workload: Workload
    ) -> Tuple[_PoolEntry, bool]:
        """Pin and return the entry for this pair; build one on miss.

        Returns ``(entry, reused)``. The build (energy table + batch
        layout precompute) runs outside the pool lock so a cold miss
        does not stall warm acquires; the small race where two threads
        build the same pair resolves by keeping the first-registered
        entry.
        """
        with self._lock:
            signature = pair_signature(arch, workload)
            entry = self._entries.get(signature)
            if entry is not None:
                entry.pins += 1
                self._clock += 1
                entry.last_used = self._clock
                self.reuses += 1
                return entry, True
        built = self._build(signature, arch, workload)
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                entry = built
                entry.admitted_hits = entry.cache.hits
                self._entries[signature] = entry
                self.admissions += 1
                reused = False
            else:
                reused = True
                self.reuses += 1
            # Pin and touch BEFORE the eviction sweep: a freshly admitted
            # entry must not be its own (coldest, never-used) victim.
            entry.pins += 1
            self._clock += 1
            entry.last_used = self._clock
            if not reused:
                self._evict_cold_locked()
            return entry, reused

    def release(self, entry: _PoolEntry) -> None:
        """Drop one pin; an over-bound pool sheds cold entries here."""
        with self._lock:
            if entry.pins <= 0:
                raise ServiceError(
                    f"evaluator pool entry {entry.signature[:8]} released "
                    f"more times than acquired"
                )
            entry.pins -= 1
            self._evict_cold_locked()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = list(self._entries.values())
            return {
                "size": len(entries),
                "max_entries": self.max_entries,
                "admissions": self.admissions,
                "reuses": self.reuses,
                "evictions": self.evictions,
                "pinned": sum(1 for e in entries if e.pins > 0),
                "cache": {
                    "hits": sum(e.cache.hits for e in entries),
                    "misses": sum(e.cache.misses for e in entries),
                },
            }

    def _build(
        self, signature: str, arch: Architecture, workload: Workload
    ) -> _PoolEntry:
        cache = ThreadSafeEvaluationCache(self.cache_entries)
        evaluator = Evaluator(
            arch, workload, self.energy_table, cache=cache
        )
        engine: Optional[SharedBatchEngine] = None
        try:
            from repro.model.batch import BatchEvaluator

            raw = BatchEvaluator(evaluator)
            if raw.supported:
                engine = SharedBatchEngine(raw)
        except RuntimeError:
            engine = None
        return _PoolEntry(signature, arch, workload, evaluator, cache, engine)

    def _evict_cold_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            evictable: List[_PoolEntry] = [
                e for e in self._entries.values() if e.pins == 0
            ]
            if not evictable:
                return  # everything in flight; shed on release
            victim = min(
                evictable, key=lambda e: (e.temperature(), e.last_used)
            )
            del self._entries[victim.signature]
            self.evictions += 1

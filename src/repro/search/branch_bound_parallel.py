"""Parallel branch-and-bound: subtree work-sharing over a process pool.

The prefix tree decomposes naturally at its top levels: the cross
product of the first one or two ``dims_order`` menus partitions the
whole enumerable space into disjoint subtrees. This driver turns each
feasible, not-yet-prunable partition cell into a **work unit**, orders
units by their admissible bound (workers start on promising subtrees,
which tightens the shared incumbent early), and fans them over the
reusable pool in :mod:`repro.search.worker_pool`.

Cross-process pruning — the part that makes this superlinear-friendly —
runs through a :class:`~repro.search.worker_pool.SharedIncumbent`: a
``multiprocessing.Value`` holding the best true metric found by *any*
worker (plus a small shared array with the argmin's menu-index
signature). Workers read it before every subtree cut and leaf flush, so
one worker's improvement shrinks every other worker's frontier; because
the cell only ever holds true candidate metrics and cuts keep the same
``PRUNE_MARGIN`` guard as the serial walk, no subtree containing a
strict improvement is ever cut — the optimum always survives in some
worker's local best.

Bit-exactness despite races: workers return their *claimed* best (menu
signature or batch row), and the driver re-prices every claim through
its own evaluator, in unit dispatch order, against the warm-start
incumbent. ``min`` over true re-priced metrics is invariant to incumbent
race timing, so the returned best metric is bit-identical to serial
search (ties between co-optimal mappings may resolve to a different
argmin; the parity invariant compares metrics). The convergence curve
is the driver's local view (warm start + re-price improvements) with
driver-local evaluation indices.

Transport is zero-copy where it matters: the
:class:`~repro.model.batch.PartialBoundEngine` factor tables (the only
Python-loop-heavy precomputation) ship to walk workers as
``multiprocessing.shared_memory`` views, and leaf-sized partitions are
driver-enumerated into packed SoA batches shipped the same way
(:meth:`MappingBatch.to_shared`), with a pickle fallback mirroring the
pool's fork→spawn→sequential ladder. The driver owns every segment and
unlinks in a ``finally``, so a crashed or SIGKILLed worker cannot leak
``/dev/shm`` entries.
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.exceptions import SearchError, WorkerError
from repro.mapspace.factory import make_mapspace
from repro.model.eval_cache import EvaluationCache
from repro.model.evaluator import Evaluator
from repro.model.shm import ShmArrayBundle
from repro.obs import SearchTimer, empty_batch_stats
from repro.search.result import SearchResult
from repro.search.worker_pool import (
    OBS_SNAPSHOT_KEY,
    LocalIncumbent,
    SharedIncumbent,
    collect_worker_obs,
    run_jobs,
    run_under_worker_obs,
)

#: Target work units per worker. More units than workers keeps the pool
#: busy when subtree costs are skewed (the whole point of work-sharing);
#: the partition depth grows to two levels when one level is too coarse.
UNITS_PER_WORKER = 4

# Per-process worker stack (mapspace, evaluator, engines) built once per
# pool lifetime from the initializer state and reused across units. The
# token guards against id-reuse when the sequential fallback runs two
# searches in one process.
_STACK_TOKEN: Optional[str] = None
_STACK: Optional[Dict[str, Any]] = None


def _get_stack(state: Dict[str, Any]) -> Dict[str, Any]:
    """Build (once per process per search) the worker's pricing stack."""
    global _STACK_TOKEN, _STACK
    if _STACK is not None and _STACK_TOKEN == state["token"]:
        return _STACK
    from repro.model.batch import BatchEvaluator, PartialBoundEngine

    from repro.search.branch_bound import dims_branch_order

    mapspace = make_mapspace(
        state["arch"], state["workload"], state["kind"], state["constraints"]
    )
    cache_size = state["cache_size"]
    cache = EvaluationCache(cache_size) if cache_size else None
    evaluator = Evaluator(
        state["arch"],
        state["workload"],
        energy_table=state["energy_table"],
        cache=cache,
    )
    layout = mapspace.batch_layout()
    engine = BatchEvaluator(evaluator, layout=layout)
    if layout is None or not engine.supported:
        raise SearchError(
            "batch engine unsupported in branch-and-bound worker"
        )
    menus = mapspace.dim_chain_menus()
    bound_engine = PartialBoundEngine(engine, menus)
    attachments: List[ShmArrayBundle] = []
    if state["table_handle"] is not None:
        attachment = ShmArrayBundle.attach(state["table_handle"])
        bound_engine.preload_tables(attachment.arrays)
        # The preloaded views live in the engine's caches; keep the
        # mapping open for the process lifetime (closing a mapping with
        # live views is undefined behavior — the driver's unlink, not a
        # worker-side close, is what reclaims the segment).
        attachments.append(attachment)
    _STACK = {
        "mapspace": mapspace,
        "evaluator": evaluator,
        "engine": engine,
        "layout": layout,
        "bound_engine": bound_engine,
        "dims_order": dims_branch_order(menus),
        "num_dims": len(menus),
        "attachments": attachments,
    }
    _STACK_TOKEN = state["token"]
    return _STACK


def _unit_entry(state: Dict[str, Any], job: Tuple[int, str, Any]) -> Dict[str, Any]:
    """Pool entry point: run one subtree work unit.

    Failures are re-raised as :class:`WorkerError` carrying the unit
    index, mirroring the random pool's job-attribution contract.
    """
    index, kind, payload = job
    try:
        return _run_unit(state, index, kind, payload)
    except WorkerError:
        raise
    except Exception as error:
        raise WorkerError(
            index, state["seed"], f"{type(error).__name__}: {error}"
        ) from error


def _run_unit(
    state: Dict[str, Any], index: int, kind: str, payload: Any
) -> Dict[str, Any]:
    stack = _get_stack(state)
    incumbent = state["incumbent"]
    engine = stack["engine"]
    started = time.perf_counter()
    before = engine.stats_payload()

    def run() -> Dict[str, Any]:
        if kind == "walk":
            return _walk_unit(stack, incumbent, state, tuple(payload))
        return _price_unit(stack, incumbent, state, payload)

    result, snapshot = run_under_worker_obs(state["obs"], run)
    after = engine.stats_payload()
    result["unit"] = index
    result["kind"] = kind
    result["elapsed_s"] = time.perf_counter() - started
    result["batch"] = {
        key: after[key] - before[key]
        for key in ("batches", "candidates", "pruned", "fallback")
    }
    if snapshot is not None:
        result[OBS_SNAPSHOT_KEY] = snapshot
    return result


def _walk_unit(
    stack: Dict[str, Any],
    incumbent,
    state: Dict[str, Any],
    root_indices: Tuple[int, ...],
) -> Dict[str, Any]:
    """Walk one subtree best-first against the shared incumbent."""
    from repro.search.branch_bound import _SubtreeWalker

    walker = _SubtreeWalker(
        stack["mapspace"],
        stack["engine"],
        stack["evaluator"],
        stack["bound_engine"],
        stack["dims_order"],
        objective=state["objective"],
        leaf_width=state["leaf_width"],
        batch_size=state["batch_size"],
        limit=state["limit"],
        incumbent=incumbent,
    )
    walker.walk(root_indices)
    return {
        "metric": walker.best_metric,
        "signature": walker.best_signature,
        "row": None,
        "counters": {
            "evaluations": walker.evaluations,
            "num_valid": walker.num_valid,
            "nodes_expanded": walker.nodes_expanded,
            "leaves_deferred": walker.leaves_deferred,
            "subtrees_pruned": walker.subtrees_pruned,
            "infeasible_subtrees": walker.infeasible_subtrees,
        },
    }


def _price_unit(
    stack: Dict[str, Any],
    incumbent,
    state: Dict[str, Any],
    descriptor: Dict[str, Any],
) -> Dict[str, Any]:
    """Price one transported leaf batch against the shared incumbent."""
    from repro.model.batch import MappingBatch

    batch, bundle = MappingBatch.from_shared(stack["layout"], descriptor)
    # Keep the attachment open for the process lifetime (see _get_stack).
    stack["attachments"].append(bundle)
    cut = float(incumbent.read())
    outcome = stack["engine"].evaluate_batch(
        batch, objective=state["objective"], incumbent=cut, prune=True
    )
    obs.inc("search.candidates", batch.size, driver="branch-bound")
    num_dims = stack["num_dims"]
    evaluations = 0
    num_valid = 0
    best_metric = float("inf")
    best_row: Optional[int] = None
    for i in range(batch.size):
        evaluations += 1
        if not outcome.valid[i]:
            continue
        num_valid += 1
        if outcome.pruned[i]:
            continue
        metric = float(outcome.metric[i])
        if metric < best_metric:
            # Track the local best even when the shared offer loses — the
            # driver's re-price, not the race, decides the final argmin.
            best_metric = metric
            best_row = i
        if metric < cut:
            if incumbent.offer(metric, (-1,) * num_dims):
                cut = metric
            else:
                cut = float(incumbent.read())
    return {
        "metric": best_metric,
        "signature": None,
        "row": best_row,
        "counters": {
            "evaluations": evaluations,
            "num_valid": num_valid,
            "nodes_expanded": 0,
            "leaves_deferred": 0,
            "subtrees_pruned": 0,
            "infeasible_subtrees": 0,
        },
    }


def run_parallel_tree(search, engine) -> SearchResult:
    """Drive ``BranchBoundSearch`` with ``workers > 1`` (see module doc).

    The driver warm-starts serially (seeding the shared incumbent),
    partitions and bound-orders the top of the tree, fans units over the
    pool, and re-prices every worker claim so the returned best metric
    is bit-identical to the serial walk.
    """
    from repro.model.batch import PRUNE_MARGIN, PartialBoundEngine

    from repro.search.branch_bound import (
        FLUSH_ROWS_FACTOR,
        _SubtreeWalker,
        _bnb_stats,
        dims_branch_order,
    )

    mapspace = search.mapspace
    evaluator = search.evaluator
    menus = mapspace.dim_chain_menus()
    menu_map = dict(menus)
    workload_dims = [dim for dim, _ in menus]
    bound_engine = PartialBoundEngine(engine, menus)
    dims_order = dims_branch_order(menus)
    num_dims = len(menus)
    workers = search.workers

    # Progress total: the pre-filter menu product (every full assignment
    # the partition covers). Partition-time pruning and per-unit arrivals
    # advance against it driver-side; workers never touch the tracker.
    total_units = 1
    for _, menu in menus:
        total_units *= len(menu)
    timer = SearchTimer(
        evaluator, driver="branch-bound", total_units=total_units
    )
    bundles: List[ShmArrayBundle] = []
    try:
        with timer, obs.trace(
            "search.run", driver="branch-bound", mode="parallel",
            objective=search.objective, workers=workers,
        ):
            # Driver-side walker: hosts warm start, partition-time
            # pruning counters, and the final re-price — all through the
            # same incumbent protocol as the serial search.
            walker = _SubtreeWalker(
                mapspace,
                engine,
                evaluator,
                bound_engine,
                dims_order,
                objective=search.objective,
                leaf_width=search.leaf_width,
                batch_size=search.batch_size,
                limit=search.limit,
                incumbent=LocalIncumbent(num_dims),
                tracker=timer.progress,
            )
            warm_metric = search._warm_start(walker)
            root_bound = float(bound_engine.bound({}, search.objective))

            # Partition the first one or two tree levels into work units
            # (two when one level is too coarse to balance the pool).
            depth = 1
            if num_dims > 1 and len(dims_order[0][1]) < (
                UNITS_PER_WORKER * workers
            ):
                depth = 2
            depth = min(depth, num_dims)
            part_dims = [dims_order[i][0] for i in range(depth)]
            units = mapspace.partition_prefixes(part_dims)
            total_cells = 1
            for i in range(depth):
                total_cells *= len(dims_order[i][1])
            walker.infeasible_subtrees += total_cells - len(units)
            # Every infeasible partition cell resolves a whole subtree.
            walker._cover(
                (total_cells - len(units)) * walker.suffix_product[depth]
            )

            # Bound every unit; prune against the warm incumbent before
            # dispatch; order the rest so workers start on promising
            # subtrees (the incumbent tightens fastest that way).
            cut = float(walker.incumbent.read())
            bounded: List[Tuple[float, Tuple[int, ...], Dict]] = []
            for indices, prefix in units:
                assigned = {
                    part_dims[i]: k for i, k in enumerate(indices)
                }
                unit_bound = float(
                    bound_engine.bound(assigned, search.objective)
                )
                if (
                    cut != float("inf")
                    and unit_bound * (1.0 - PRUNE_MARGIN) >= cut
                ):
                    walker.subtrees_pruned += 1
                    walker._cover(walker.suffix_product[depth])
                    obs.inc("search.subtrees_pruned", driver="branch-bound")
                    continue
                bounded.append((unit_bound, indices, prefix))
            bounded.sort(key=lambda unit: (unit[0], unit[1]))

            # All units at one depth share a subtree size, so the mode is
            # global. Walk is the default — each worker keeps the full
            # flush-time bound re-check against the live incumbent, so
            # pruning tracks the serial trajectory. Price mode (driver
            # enumerates packed batches, workers only evaluate) loses
            # sub-partition bound pruning, so it is reserved for spaces
            # small enough that the whole survivor set fits in a few
            # flush windows and enumeration cost is negligible.
            price_rows_cap = FLUSH_ROWS_FACTOR * search.batch_size
            price_mode = (
                walker.suffix_product[depth] <= search.leaf_width
                and len(bounded) * walker.suffix_product[depth]
                <= price_rows_cap
            )
            jobs: List[Tuple[int, str, Any]] = []
            price_batches: List[Any] = []
            table_handle = None
            if bounded and price_mode:
                walker.leaves_deferred += len(bounded)
                projected = walker.evaluations
                for batch in mapspace.iter_prefix_batches(
                    [prefix for _, _, prefix in bounded],
                    batch_size=search.batch_size,
                ):
                    projected += batch.size
                    if search.limit is not None and projected > search.limit:
                        raise SearchError(
                            f"branch-and-bound search exceeded limit of "
                            f"{search.limit} priced mappings"
                        )
                    bundle, descriptor = batch.to_shared()
                    bundles.append(bundle)
                    price_batches.append(batch)
                    jobs.append((len(jobs), "price", descriptor))
            elif bounded:
                tables = bound_engine.export_tables()
                if tables:
                    table_bundle = ShmArrayBundle.share(tables)
                    bundles.append(table_bundle)
                    table_handle = table_bundle.handle
                jobs = [
                    (j, "walk", indices)
                    for j, (_, indices, _) in enumerate(bounded)
                ]

            state: Dict[str, Any] = {
                "token": uuid.uuid4().hex,
                "arch": mapspace.arch,
                "workload": mapspace.workload,
                "kind": mapspace.kind,
                "constraints": mapspace.constraints,
                "energy_table": evaluator.energy_table,
                "cache_size": getattr(
                    getattr(evaluator, "cache", None), "max_entries", None
                ),
                "objective": search.objective,
                "leaf_width": search.leaf_width,
                "batch_size": search.batch_size,
                "limit": search.limit,
                "table_handle": table_handle,
                "obs": obs.active_obs() is not None,
                "seed": 0,
            }
            # Stream per-unit completion into the driver's tracker as
            # results arrive: a finished walk unit resolves its whole
            # subtree, a priced batch resolves one cell per row. Claimed
            # metrics feed the convergence timeline live; the post-hoc
            # re-price below still decides the actual best.
            seen_best = float(walker.best_metric)

            def _on_unit_result(result: Dict[str, Any]) -> None:
                nonlocal seen_best
                if result["kind"] == "walk":
                    timer.progress.advance(walker.suffix_product[depth])
                else:
                    timer.progress.advance(
                        result["counters"]["evaluations"]
                    )
                metric = result["metric"]
                if metric < seen_best:
                    seen_best = metric
                    timer.progress.improved(float(metric))

            if jobs:
                results, pool_mode, _ = run_jobs(
                    _unit_entry,
                    state,
                    jobs,
                    workers,
                    start_method=search.start_method,
                    shared_factory=SharedIncumbent.factory(
                        num_dims, float(walker.best_metric)
                    ),
                    on_result=_on_unit_result,
                )
            else:
                results, pool_mode = [], "sequential"
            collect_worker_obs(results)

            # Merge unit counters; re-price every claimed best through
            # the driver's evaluator, in dispatch order, so ties resolve
            # deterministically and the metric is race-independent.
            worker_evaluations = 0
            worker_valid = 0
            batch_totals = empty_batch_stats()
            unit_rows: List[Dict[str, Any]] = []
            claim_mappings: List[Any] = []
            claim_chains: List[Optional[Dict[str, Any]]] = []
            for result in results:
                counters = result["counters"]
                worker_evaluations += counters["evaluations"]
                worker_valid += counters["num_valid"]
                walker.nodes_expanded += counters["nodes_expanded"]
                walker.leaves_deferred += counters["leaves_deferred"]
                walker.subtrees_pruned += counters["subtrees_pruned"]
                walker.infeasible_subtrees += counters["infeasible_subtrees"]
                for key in ("batches", "candidates", "pruned", "fallback"):
                    batch_totals[key] += result["batch"][key]
                metric = result["metric"]
                unit_rows.append(
                    {
                        "unit": result["unit"],
                        "kind": result["kind"],
                        "evaluations": counters["evaluations"],
                        "subtrees_pruned": counters["subtrees_pruned"],
                        "elapsed_s": result["elapsed_s"],
                        "metric": (
                            metric if metric != float("inf") else None
                        ),
                    }
                )
                if metric == float("inf"):
                    continue
                if result["kind"] == "walk":
                    signature = result["signature"]
                    chains = {
                        dim: menu_map[dim][signature[i]]
                        for i, dim in enumerate(workload_dims)
                    }
                    claim_chains.append(chains)
                    claim_mappings.append(
                        mapspace.assemble(chains, rng=None)
                    )
                else:
                    claim_chains.append(None)
                    claim_mappings.append(
                        price_batches[result["unit"]].mapping_at(
                            result["row"]
                        )
                    )
            if claim_mappings:
                walker.price_mappings(
                    claim_mappings, chains_list=claim_chains
                )
            if price_mode and bounded:
                # Cells the joint-fanout filter dropped during driver-side
                # enumeration never became priced rows; resolve the
                # remainder so the fraction reaches 1.0.
                rows_priced = sum(
                    result["counters"]["evaluations"]
                    for result in results
                    if result["kind"] == "price"
                )
                walker._cover(
                    len(bounded) * walker.suffix_product[depth] - rows_priced
                )

            tightness = (
                root_bound / walker.best_metric
                if walker.best is not None and walker.best_metric > 0
                else None
            )
            if tightness is not None:
                obs.set_gauge(
                    "search.bound_tightness", tightness,
                    driver="branch-bound",
                )
    finally:
        # The driver is the only unlinker; releasing here (even on a
        # worker crash) is what keeps /dev/shm free of leaked segments.
        for bundle in bundles:
            bundle.release()

    total_evaluations = walker.evaluations + worker_evaluations
    stats = timer.stats(total_evaluations, engine=engine)
    batch_stats = stats.get("batch") or empty_batch_stats()
    for key in ("batches", "candidates", "pruned", "fallback"):
        batch_stats[key] += batch_totals[key]
    batch_stats["prune_rate"] = (
        batch_stats["pruned"] / batch_stats["candidates"]
        if batch_stats["candidates"]
        else 0.0
    )
    stats["batch"] = batch_stats
    stats["bnb"] = _bnb_stats(
        nodes_expanded=walker.nodes_expanded,
        leaves_deferred=walker.leaves_deferred,
        subtrees_pruned=walker.subtrees_pruned,
        infeasible_subtrees=walker.infeasible_subtrees,
        root_bound=root_bound,
        bound_tightness=tightness,
        warm_start_metric=warm_metric,
    )
    stats["pool_mode"] = pool_mode
    stats["pool"] = {
        "workers": workers,
        "partition_depth": depth,
        "num_units": len(jobs),
        "transport": bundles[0].transport if bundles else None,
        "units": unit_rows,
    }
    return SearchResult(
        best=walker.best,
        objective=search.objective,
        num_evaluated=total_evaluations,
        num_valid=walker.num_valid + worker_valid,
        terminated_by="exhausted",
        curve=walker.curve,
        stats=stats,
    )

"""Search results and convergence tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.evaluator import Evaluation


@dataclass(frozen=True)
class ConvergencePoint:
    """Best objective value observed after ``evaluations`` mappings."""

    evaluations: int
    best_metric: float


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes:
        best: best valid evaluation found, or None if the space yielded no
            valid mapping within budget.
        objective: the optimized metric name ("edp", "energy", "delay").
        num_evaluated: total mappings drawn (valid + invalid).
        num_valid: valid mappings among them.
        terminated_by: "patience", "budget", or "exhausted".
        curve: best-so-far trace, one point per improvement (prepend-safe
            for averaging across seeds with :func:`best_so_far_series`).
    """

    best: Optional[Evaluation]
    objective: str
    num_evaluated: int
    num_valid: int
    terminated_by: str
    curve: List[ConvergencePoint] = field(default_factory=list)

    @property
    def best_metric(self) -> Optional[float]:
        if self.best is None:
            return None
        return self.best.metric(self.objective)

    def best_so_far_series(self, length: int) -> List[float]:
        """Expand the improvement curve to a dense best-so-far series.

        Index ``i`` holds the best metric after ``i + 1`` evaluations;
        positions before the first valid mapping hold ``inf``. Used to
        average convergence behaviour across seeds (the paper's Fig. 7
        averages 100 runs).
        """
        series = [float("inf")] * length
        for point in self.curve:
            start = min(point.evaluations - 1, length)
            for i in range(start, length):
                if point.best_metric < series[i]:
                    series[i] = point.best_metric
        return series

"""Search results and convergence tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.model.eval_cache import EvaluationCache
from repro.model.evaluator import Evaluation


@dataclass(frozen=True)
class ConvergencePoint:
    """Best objective value observed after ``evaluations`` mappings."""

    evaluations: int
    best_metric: float


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes:
        best: best valid evaluation found, or None if the space yielded no
            valid mapping within budget.
        objective: the optimized metric name ("edp", "energy", "delay").
        num_evaluated: total mappings drawn (valid + invalid).
        num_valid: valid mappings among them.
        terminated_by: "patience", "budget", or "exhausted".
        curve: best-so-far trace, one point per improvement (prepend-safe
            for averaging across seeds with :func:`best_so_far_series`).
        stats: throughput/observability payload. Search drivers populate
            ``elapsed_s`` and ``evals_per_sec`` (see
            :func:`throughput_stats`); cached evaluators add a ``cache``
            sub-dict (hits/misses/hit_rate); the parallel driver adds
            ``pool_mode`` ("fork", "spawn", or "sequential") and a
            ``workers`` list with per-worker counts. Every driver that
            builds stats via :meth:`repro.obs.SearchTimer.stats` includes
            a ``batch`` sub-dict with the full uniform key set
            (batches/candidates/pruned/prune_rate/fallback — see
            :meth:`repro.model.batch.BatchEvaluator.stats_payload`);
            scalar-path runs report it with all-zero counters, so
            consumers can read the keys unconditionally. The
            branch-and-bound driver adds a ``bnb`` sub-dict
            (nodes_expanded/subtrees_pruned/infeasible_subtrees/
            root_bound/bound_tightness/warm_start_metric).
    """

    best: Optional[Evaluation]
    objective: str
    num_evaluated: int
    num_valid: int
    terminated_by: str
    curve: List[ConvergencePoint] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def best_metric(self) -> Optional[float]:
        if self.best is None:
            return None
        return self.best.metric(self.objective)

    def best_so_far_series(self, length: int) -> List[float]:
        """Expand the improvement curve to a dense best-so-far series.

        Index ``i`` holds the best metric after ``i + 1`` evaluations;
        positions before the first valid mapping hold ``inf``. Used to
        average convergence behaviour across seeds (the paper's Fig. 7
        averages 100 runs).
        """
        series = [float("inf")] * length
        for point in self.curve:
            start = min(point.evaluations - 1, length)
            for i in range(start, length):
                if point.best_metric < series[i]:
                    series[i] = point.best_metric
        return series


def throughput_stats(
    num_evaluated: int,
    elapsed_s: float,
    cache: Optional[EvaluationCache] = None,
    cache_baseline: Tuple[int, int] = (0, 0),
) -> Dict[str, Any]:
    """Build the ``SearchResult.stats`` throughput payload.

    Args:
        num_evaluated: mappings drawn during the run being reported.
        elapsed_s: wall-clock duration of the run.
        cache: the evaluator's cache, if one was attached.
        cache_baseline: ``(hits, misses)`` snapshot taken before the run,
            so a cache shared across runs reports per-run deltas.

    A live cache that saw **no lookups** during the run (e.g. the batch
    engine priced every candidate itself and ``num_evaluated`` was 0)
    reports ``hit_rate: None`` rather than a misleading ``0.0`` — zero
    means "every lookup missed", which is a different claim.
    """
    stats: Dict[str, Any] = {
        "elapsed_s": elapsed_s,
        "evals_per_sec": (num_evaluated / elapsed_s) if elapsed_s > 0 else 0.0,
    }
    if cache is not None:
        hits = cache.hits - cache_baseline[0]
        misses = cache.misses - cache_baseline[1]
        lookups = hits + misses
        stats["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
            "size": len(cache),
            "max_entries": cache.max_entries,
        }
    return stats

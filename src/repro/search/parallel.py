"""Parallel multi-start random search (the paper's 24-thread setup).

Timeloop's random-sampling search farms independent streams across
threads; the paper runs 3000-patience over 24 of them. This module does
the equivalent with a process pool: N workers each run an independent
seeded :class:`~repro.search.random_search.RandomSearch`, and the best
result (plus aggregate statistics) is merged.

Falls back to sequential execution when ``workers=1`` or the platform
cannot fork, so callers never need a code path split.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, Union

from repro.arch.spec import Architecture
from repro.exceptions import SearchError
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.factory import make_mapspace
from repro.mapspace.generator import MapspaceKind
from repro.model.evaluator import Evaluator
from repro.search.random_search import RandomSearch
from repro.search.result import SearchResult
from repro.utils.rng import make_rng


def _run_one(args: Tuple) -> SearchResult:
    """Worker entry point: rebuild the stack and run one seeded search."""
    (arch, workload, kind, constraints, objective, max_evaluations,
     patience, seed) = args
    mapspace = make_mapspace(arch, workload, kind, constraints)
    evaluator = Evaluator(arch, workload)
    return RandomSearch(
        mapspace,
        evaluator,
        objective=objective,
        max_evaluations=max_evaluations,
        patience=patience,
        seed=seed,
    ).run()


def parallel_random_search(
    arch: Architecture,
    workload,
    kind: Union[str, MapspaceKind] = MapspaceKind.RUBY_S,
    constraints: Optional[ConstraintSet] = None,
    objective: str = "edp",
    max_evaluations: int = 10_000,
    patience: Optional[int] = 3_000,
    workers: int = 4,
    seed: Optional[int] = None,
) -> SearchResult:
    """Run ``workers`` independent searches and merge the best result.

    ``max_evaluations`` and ``patience`` apply *per worker* (matching the
    paper's per-thread termination criterion). The merged result reports
    the summed evaluation counts and the single best evaluation; its curve
    is the winning worker's curve.
    """
    if workers < 1:
        raise SearchError("workers must be >= 1")
    rng = make_rng(seed)
    seeds = [rng.getrandbits(32) for _ in range(workers)]
    job_args = [
        (arch, workload, MapspaceKind(kind), constraints, objective,
         max_evaluations, patience, worker_seed)
        for worker_seed in seeds
    ]
    results: List[SearchResult]
    if workers == 1:
        results = [_run_one(job_args[0])]
    else:
        results = _map_jobs(job_args, workers)
    return _merge(results, objective)


def _map_jobs(job_args: List[Tuple], workers: int) -> List[SearchResult]:
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            return pool.map(_run_one, job_args)
    except (ImportError, OSError, ValueError):
        # No fork available (or pool creation failed): degrade gracefully.
        return [_run_one(args) for args in job_args]


def _merge(results: List[SearchResult], objective: str) -> SearchResult:
    winner = None
    for result in results:
        if result.best is None:
            continue
        if winner is None or result.best.metric(objective) < winner.best.metric(
            objective
        ):
            winner = result
    total_evaluated = sum(r.num_evaluated for r in results)
    total_valid = sum(r.num_valid for r in results)
    if winner is None:
        return SearchResult(
            best=None,
            objective=objective,
            num_evaluated=total_evaluated,
            num_valid=total_valid,
            terminated_by="budget",
        )
    return SearchResult(
        best=winner.best,
        objective=objective,
        num_evaluated=total_evaluated,
        num_valid=total_valid,
        terminated_by=winner.terminated_by,
        curve=winner.curve,
    )

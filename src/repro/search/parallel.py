"""Parallel multi-start random search (the paper's 24-thread setup).

Timeloop's random-sampling search farms independent streams across
threads; the paper runs 3000-patience over 24 of them. This module does
the equivalent with a process pool: N workers each run an independent
seeded :class:`~repro.search.random_search.RandomSearch`, and the best
result (plus aggregate statistics) is merged.

The pool is start-method agnostic. Shared, immutable state — the
architecture, workload, constraints, and the energy table (estimated
**once**, not per worker) — ships through a pool initializer, so jobs
themselves are just ``(index, seed)`` pairs and the driver works under
both ``fork`` and ``spawn``. Platforms with neither usable start method
degrade to sequential execution of the same jobs; ``stats["pool_mode"]``
records which mode actually ran.
"""

from __future__ import annotations

import logging
import math
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.arch.spec import Architecture
from repro.energy.accelergy import estimate_energy_table
from repro.energy.table import EnergyTable
from repro.exceptions import SearchError, WorkerError
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.factory import make_mapspace
from repro.mapspace.generator import MapspaceKind
from repro.model.eval_cache import DEFAULT_CACHE_SIZE, EvaluationCache
from repro.model.evaluator import Evaluator
from repro.obs import SearchTimer, TIMING_BUCKETS
from repro.search.random_search import DEFAULT_PATIENCE, RandomSearch
from repro.search.result import SearchResult
from repro.search.worker_pool import (
    OBS_SNAPSHOT_KEY as _OBS_SNAPSHOT_KEY,
    collect_worker_obs,
    run_jobs,
    run_under_worker_obs,
)
from repro.utils.rng import make_rng

logger = logging.getLogger(__name__)


def _pool_entry(state: Dict[str, Any], job: Tuple[int, int]) -> SearchResult:
    """Pool entry point: run one ``(index, seed)`` job."""
    index, seed = job
    return _search_once_indexed(state, index, seed)


def _search_once_indexed(
    state: Dict[str, Any], index: int, seed: int
) -> SearchResult:
    """Run one job, re-raising any failure as a :class:`WorkerError`.

    ``imap_unordered`` re-raises whatever bare exception a worker died
    with, losing which job failed; wrapping here attaches the failing
    job's ``(index, seed)`` and pickles cleanly back to the driver.
    """
    try:
        return _search_once(state, seed)
    except WorkerError:
        raise
    except Exception as error:
        raise WorkerError(
            index, seed, f"{type(error).__name__}: {error}"
        ) from error


def _search_once(state: Dict[str, Any], seed: int) -> SearchResult:
    """Rebuild the mapspace/evaluator stack and run one seeded search.

    The energy table arrives pre-built in ``state`` — estimating it is the
    only expensive part of evaluator construction, and it depends solely
    on the architecture, so the driver hoists it out of the workers.

    When the driver had an observability scope active it sets
    ``state["obs"]``; the worker then runs under a *private* registry
    (deliberately replacing any scope inherited across ``fork``, whose
    tracer file handle must not be shared) and ships a picklable snapshot
    back inside the result's stats for the driver to merge.
    """
    mapspace = make_mapspace(
        state["arch"], state["workload"], state["kind"], state["constraints"]
    )
    cache_size = state["cache_size"]
    cache = EvaluationCache(cache_size) if cache_size else None
    evaluator = Evaluator(
        state["arch"],
        state["workload"],
        energy_table=state["energy_table"],
        cache=cache,
    )
    strategy = state.get("strategy", "random")
    if strategy == "branch-bound":
        # Exact search: workers differ only in their warm-start seed, so
        # the merged best is a cross-seed determinism check, not a
        # coverage gain — every worker proves the same optimum.
        from repro.search.branch_bound import BranchBoundSearch

        search = BranchBoundSearch(
            mapspace,
            evaluator,
            objective=state["objective"],
            seed=seed,
            use_batch=state["use_batch"],
            batch_size=state["batch_size"],
        )
    elif strategy == "random":
        search = RandomSearch(
            mapspace,
            evaluator,
            objective=state["objective"],
            max_evaluations=state["max_evaluations"],
            patience=state["patience"],
            seed=seed,
            use_batch=state["use_batch"],
            batch_size=state["batch_size"],
        )
    else:
        raise SearchError(
            f"parallel search supports the 'random' and 'branch-bound' "
            f"strategies, not {strategy!r}"
        )
    result, snapshot = run_under_worker_obs(bool(state.get("obs")), search.run)
    if snapshot is not None:
        result.stats[_OBS_SNAPSHOT_KEY] = snapshot
    return result


def parallel_random_search(
    arch: Architecture,
    workload,
    kind: Union[str, MapspaceKind] = MapspaceKind.RUBY_S,
    constraints: Optional[ConstraintSet] = None,
    objective: str = "edp",
    max_evaluations: int = 10_000,
    patience: Optional[int] = DEFAULT_PATIENCE,
    workers: int = 4,
    seed: Optional[int] = None,
    energy_table: Optional[EnergyTable] = None,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
    start_method: Optional[str] = None,
    use_batch: bool = True,
    batch_size: int = 512,
    strategy: str = "random",
) -> SearchResult:
    """Run ``workers`` independent searches and merge the best result.

    ``max_evaluations`` and ``patience`` apply *per worker* (matching the
    paper's per-thread termination criterion). The merged result reports
    the summed evaluation counts and the single best evaluation; its curve
    is the winning worker's curve (see :func:`_merge` for the index
    semantics).

    Args:
        energy_table: pre-built per-access energies; estimated once here
            (never per worker) when omitted.
        cache_size: per-worker evaluation-cache bound; ``None`` or 0
            disables caching. Caching never changes results — only speed.
        start_method: force a multiprocessing start method ("fork" or
            "spawn"); by default each is tried in that order before
            degrading to sequential execution.
        use_batch: let each worker price candidates through the
            vectorized batch engine when supported (bit-exact; results
            are identical either way).
        batch_size: per-worker batch size on the batch path.
        strategy: "random" (the paper's multi-start setup) or
            "branch-bound" (each worker runs the exact search from its own
            warm-start seed; useful as a determinism cross-check).

    The returned ``stats`` carry ``pool_mode`` (which execution mode
    actually ran), wall-clock ``elapsed_s``/``evals_per_sec`` across the
    whole pool, an aggregate ``cache`` summary, and a ``workers`` list
    with each worker's seed, counts, hit rate, and throughput.
    """
    if workers < 1:
        raise SearchError("workers must be >= 1")
    rng = make_rng(seed)
    seeds = [rng.getrandbits(32) for _ in range(workers)]
    state: Dict[str, Any] = {
        "arch": arch,
        "workload": workload,
        "kind": MapspaceKind(kind),
        "constraints": constraints,
        "objective": objective,
        "max_evaluations": max_evaluations,
        "patience": patience,
        "energy_table": energy_table or estimate_energy_table(arch),
        "cache_size": cache_size,
        "use_batch": use_batch,
        "batch_size": batch_size,
        "strategy": strategy,
        "obs": obs.active_obs() is not None,
    }
    # Workers report whole results, not per-candidate ticks, so the
    # driver-side tracker advances in worker-sized strides as each stream
    # finishes. The nominal total is every worker spending its full
    # budget; patience stops spend less, and finish() snaps the fraction.
    # Branch-and-bound workers have no per-worker budget — leave the
    # total unknown and report rate/ETA only.
    timer = SearchTimer(
        driver="parallel",
        total_units=(
            workers * max_evaluations if strategy == "random" else None
        ),
    )
    pool_best = math.inf

    def _on_result(result: SearchResult) -> None:
        nonlocal pool_best
        timer.progress.advance(result.num_evaluated)
        if result.best is not None:
            metric = result.best.metric(objective)
            if metric < pool_best:
                pool_best = metric
                timer.progress.improved(metric)

    with timer, obs.trace(
        "search.run", driver="parallel", workers=workers, objective=objective
    ):
        results, pool_mode, _ = run_jobs(
            _pool_entry,
            state,
            list(enumerate(seeds)),
            workers,
            start_method=start_method,
            on_result=_on_result,
        )
    collect_worker_obs([result.stats for result in results])
    merged = _merge(results, objective)
    merged.stats.update(
        _pool_stats(results, seeds, pool_mode, timer.elapsed_s)
    )
    merged.stats["progress"] = timer.progress.stats_payload()
    obs.inc("search.runs", driver="parallel")
    obs.inc("search.evaluations", merged.num_evaluated, driver="parallel")
    obs.observe(
        "search.run_seconds",
        timer.elapsed_s,
        buckets=TIMING_BUCKETS,
        driver="parallel",
    )
    return merged


def _pool_stats(
    results: List[SearchResult],
    seeds: List[int],
    pool_mode: str,
    elapsed: float,
) -> Dict[str, Any]:
    """Aggregate per-worker observability into the merged stats payload."""
    from repro.obs import empty_batch_stats

    worker_rows = []
    cache_hits = 0
    cache_misses = 0
    cache_size = 0
    cache_capacity = 0
    cache_enabled = False
    batch_totals = empty_batch_stats()
    for index, (worker_seed, result) in enumerate(zip(seeds, results)):
        row: Dict[str, Any] = {
            "worker": index,
            "seed": worker_seed,
            "num_evaluated": result.num_evaluated,
            "num_valid": result.num_valid,
            "terminated_by": result.terminated_by,
            "elapsed_s": result.stats.get("elapsed_s"),
            "evals_per_sec": result.stats.get("evals_per_sec"),
        }
        cache = result.stats.get("cache")
        if cache is not None:
            cache_enabled = True
            cache_hits += cache["hits"]
            cache_misses += cache["misses"]
            cache_size += cache.get("size") or 0
            cache_capacity += cache.get("max_entries") or 0
            row["cache_hit_rate"] = cache["hit_rate"]
        batch = result.stats.get("batch")
        if batch:
            for key in ("batches", "candidates", "pruned", "fallback"):
                batch_totals[key] += batch.get(key, 0)
        worker_rows.append(row)
    if batch_totals["candidates"]:
        batch_totals["prune_rate"] = (
            batch_totals["pruned"] / batch_totals["candidates"]
        )
    total_evaluated = sum(r.num_evaluated for r in results)
    stats: Dict[str, Any] = {
        "pool_mode": pool_mode,
        "elapsed_s": elapsed,
        "evals_per_sec": (total_evaluated / elapsed) if elapsed > 0 else 0.0,
        "workers": worker_rows,
        # Uniform schema: the merged payload carries the same batch key
        # set as a single-worker payload, summed across the pool.
        "batch": batch_totals,
    }
    if cache_enabled:
        # As in throughput_stats: no lookups at all means the rate is
        # unknowable, not zero.
        lookups = cache_hits + cache_misses
        # Same key set as throughput_stats so callers can treat the
        # merged payload and a single-worker payload interchangeably;
        # size/max_entries are summed across the (now-gone) worker caches.
        stats["cache"] = {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": (cache_hits / lookups) if lookups else None,
            "size": cache_size,
            "max_entries": cache_capacity or None,
        }
    return stats


def _merge(results: List[SearchResult], objective: str) -> SearchResult:
    """Merge per-worker results into one.

    Counts are **summed** across workers while the curve is the winning
    worker's trace unchanged, so ``curve[i].evaluations`` are that
    worker's *local* evaluation indices (1-based within its own stream) —
    they are not comparable to the merged ``num_evaluated`` total and
    always satisfy ``curve[-1].evaluations <= num_evaluated``. This keeps
    the per-thread semantics of the paper's convergence plots: each
    thread's patience and budget are judged against its own stream.
    """
    winner = None
    for result in results:
        if result.best is None:
            continue
        if winner is None or result.best.metric(objective) < winner.best.metric(
            objective
        ):
            winner = result
    total_evaluated = sum(r.num_evaluated for r in results)
    total_valid = sum(r.num_valid for r in results)
    if winner is None:
        return SearchResult(
            best=None,
            objective=objective,
            num_evaluated=total_evaluated,
            num_valid=total_valid,
            terminated_by="budget",
        )
    return SearchResult(
        best=winner.best,
        objective=objective,
        num_evaluated=total_evaluated,
        num_valid=total_valid,
        terminated_by=winner.terminated_by,
        curve=winner.curve,
    )

"""Simulated-annealing mapspace search (extension).

Another point on the "Ruby composes with better search" axis: a local
search whose neighborhood re-allocates one dimension's bound chain (the
same move the genetic search uses for mutation) with Metropolis
acceptance and a geometric cooling schedule.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.utils.rng import make_rng


class SimulatedAnnealing:
    """Simulated annealing over per-dimension bound chains.

    Args:
        mapspace: source of genomes and mapping assembly.
        evaluator: objective function (lower = better).
        objective: optimization metric name.
        steps: annealing steps (each evaluates one neighbor).
        initial_temperature: Metropolis temperature as a *fraction of the
            initial objective value* — scale-free across workloads.
        cooling: geometric decay factor per step.
        restarts: independent annealing chains; best result wins.
        seed: RNG seed or generator.
        use_batch: price candidates through the vectorized
            :class:`~repro.model.batch.BatchEvaluator` when it supports
            this (arch, workload, evaluator) triple, falling back to the
            scalar evaluator otherwise — the same wiring as the other
            searchers. The Metropolis chain is inherently sequential
            (each step's candidate depends on the previous acceptance),
            so candidates are priced one at a time; the engine is
            bit-exact and evaluation consumes no RNG, so the trajectory
            is identical to the scalar path.
        batch_size: unused (the chain prices single candidates); kept for
            signature uniformity with the other searchers.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        steps: int = 1_000,
        initial_temperature: float = 0.5,
        cooling: float = 0.995,
        restarts: int = 1,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
        batch_size: int = 512,
        batch_engine=None,
    ) -> None:
        if steps < 1:
            raise SearchError("steps must be >= 1")
        if not 0.0 < cooling <= 1.0:
            raise SearchError("cooling must be in (0, 1]")
        if initial_temperature <= 0:
            raise SearchError("initial_temperature must be positive")
        if restarts < 1:
            raise SearchError("restarts must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.restarts = restarts
        self.rng = make_rng(seed)
        self.use_batch = use_batch
        self.batch_size = batch_size
        self.batch_engine = batch_engine

    def _batch_engine(self):
        """The batch engine, or None when this search must run scalar."""
        if not self.use_batch:
            return None
        if self.batch_engine is not None:
            # Injected shared engine (see RandomSearch._batch_engine).
            return (
                self.batch_engine
                if getattr(self.batch_engine, "supported", False)
                else None
            )
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        evaluations = 0
        num_valid = 0
        curve = []
        # Nominal plan: one seed draw + `steps` neighbors per restart.
        # Infeasible-seed retries can exceed it; the tracker clamps the
        # fraction at 1.0 and finish() snaps short runs up to it.
        timer = SearchTimer(
            self.evaluator,
            driver="annealing",
            total_units=self.restarts * (self.steps + 1),
        )
        engine = self._batch_engine()

        def evaluate(genome):
            nonlocal evaluations, num_valid, best, best_metric
            timer.progress.advance(1)
            mapping = self.mapspace.assemble(genome, self.rng)
            if engine is not None:
                # Batch-of-one: the Metropolis chain is sequential, but
                # pricing through the engine keeps the scalar evaluator
                # off the hot path and the trajectory bit-identical
                # (evaluation consumes no RNG).
                outcome = engine.evaluate_mappings(
                    [mapping], objective=self.objective, prune=False
                )[0]
                evaluations += 1
                if not outcome.valid:
                    return float("inf")
                num_valid += 1
                metric = outcome.metric
                evaluation = outcome.evaluation
            else:
                evaluation = self.evaluator.evaluate(mapping)
                evaluations += 1
                if not evaluation.valid:
                    return float("inf")
                num_valid += 1
                metric = evaluation.metric(self.objective)
            if metric < best_metric:
                if evaluation is None:
                    evaluation = self.evaluator.evaluate_fresh(mapping)
                best, best_metric = evaluation, metric
                curve.append(
                    ConvergencePoint(evaluations=evaluations, best_metric=metric)
                )
                obs.inc("search.improvements", driver="annealing")
                obs.set_gauge("search.best_metric", metric, driver="annealing")
                timer.progress.improved(metric)
            return metric

        with timer, obs.trace(
            "search.run", driver="annealing",
            mode="batch" if engine is not None else "scalar",
            objective=self.objective,
        ):
            for restart in range(self.restarts):
                with obs.trace("search.restart", index=restart):
                    current = self.mapspace.sample_chains(self.rng)
                    current_metric = evaluate(current)
                    attempts = 0
                    while current_metric == float("inf") and attempts < 50:
                        current = self.mapspace.sample_chains(self.rng)
                        current_metric = evaluate(current)
                        attempts += 1
                    if current_metric == float("inf"):
                        continue
                    temperature = self.initial_temperature * current_metric
                    for _ in range(self.steps):
                        dim = self.rng.choice(list(current))
                        neighbor = self.mapspace.resample_dim(
                            current, dim, self.rng
                        )
                        neighbor_metric = evaluate(neighbor)
                        if self._accept(
                            current_metric, neighbor_metric, temperature
                        ):
                            current, current_metric = neighbor, neighbor_metric
                            obs.inc("search.accepts", driver="annealing")
                        else:
                            obs.inc("search.rejects", driver="annealing")
                        temperature *= self.cooling
            obs.inc("search.candidates", evaluations, driver="annealing")
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="budget",
            curve=curve,
            stats=timer.stats(evaluations, engine=engine),
        )

    def _accept(self, current: float, candidate: float, temperature: float) -> bool:
        if candidate <= current:
            return True
        if candidate == float("inf") or temperature <= 0:
            return False
        delta = candidate - current
        return self.rng.random() < math.exp(-delta / temperature)

"""Simulated-annealing mapspace search (extension).

Another point on the "Ruby composes with better search" axis: a local
search whose neighborhood re-allocates one dimension's bound chain (the
same move the genetic search uses for mutation) with Metropolis
acceptance and a geometric cooling schedule.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.utils.rng import make_rng


class SimulatedAnnealing:
    """Simulated annealing over per-dimension bound chains.

    Args:
        mapspace: source of genomes and mapping assembly.
        evaluator: objective function (lower = better).
        objective: optimization metric name.
        steps: annealing steps (each evaluates one neighbor).
        initial_temperature: Metropolis temperature as a *fraction of the
            initial objective value* — scale-free across workloads.
        cooling: geometric decay factor per step.
        restarts: independent annealing chains; best result wins.
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        steps: int = 1_000,
        initial_temperature: float = 0.5,
        cooling: float = 0.995,
        restarts: int = 1,
        seed: Optional[Union[int, random.Random]] = None,
    ) -> None:
        if steps < 1:
            raise SearchError("steps must be >= 1")
        if not 0.0 < cooling <= 1.0:
            raise SearchError("cooling must be in (0, 1]")
        if initial_temperature <= 0:
            raise SearchError("initial_temperature must be positive")
        if restarts < 1:
            raise SearchError("restarts must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.restarts = restarts
        self.rng = make_rng(seed)

    def run(self) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        evaluations = 0
        num_valid = 0
        curve = []
        timer = SearchTimer(self.evaluator, driver="annealing")

        def evaluate(genome):
            nonlocal evaluations, num_valid, best, best_metric
            mapping = self.mapspace.assemble(genome, self.rng)
            evaluation = self.evaluator.evaluate(mapping)
            evaluations += 1
            if not evaluation.valid:
                return float("inf")
            num_valid += 1
            metric = evaluation.metric(self.objective)
            if metric < best_metric:
                best, best_metric = evaluation, metric
                curve.append(
                    ConvergencePoint(evaluations=evaluations, best_metric=metric)
                )
                obs.inc("search.improvements", driver="annealing")
                obs.set_gauge("search.best_metric", metric, driver="annealing")
            return metric

        with timer, obs.trace(
            "search.run", driver="annealing", mode="scalar",
            objective=self.objective,
        ):
            for restart in range(self.restarts):
                with obs.trace("search.restart", index=restart):
                    current = self.mapspace.sample_chains(self.rng)
                    current_metric = evaluate(current)
                    attempts = 0
                    while current_metric == float("inf") and attempts < 50:
                        current = self.mapspace.sample_chains(self.rng)
                        current_metric = evaluate(current)
                        attempts += 1
                    if current_metric == float("inf"):
                        continue
                    temperature = self.initial_temperature * current_metric
                    for _ in range(self.steps):
                        dim = self.rng.choice(list(current))
                        neighbor = self.mapspace.resample_dim(
                            current, dim, self.rng
                        )
                        neighbor_metric = evaluate(neighbor)
                        if self._accept(
                            current_metric, neighbor_metric, temperature
                        ):
                            current, current_metric = neighbor, neighbor_metric
                            obs.inc("search.accepts", driver="annealing")
                        else:
                            obs.inc("search.rejects", driver="annealing")
                        temperature *= self.cooling
            obs.inc("search.candidates", evaluations, driver="annealing")
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="budget",
            curve=curve,
            stats=timer.stats(evaluations),
        )

    def _accept(self, current: float, candidate: float, temperature: float) -> bool:
        if candidate <= current:
            return True
        if candidate == float("inf") or temperature <= 0:
            return False
        delta = candidate - current
        return self.rng.random() < math.exp(-delta / temperature)

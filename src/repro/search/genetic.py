"""GAMMA-style genetic search over a mapspace (extension).

The paper positions Ruby as orthogonal to search strategy: better search
(GAMMA, Mind Mappings, CoSA) composes with a better mapspace. This module
provides that composition — a genetic algorithm whose genome is the set of
per-dimension bound chains plus the permutation choice, with:

* **selection** — tournament by objective;
* **crossover** — per-dimension chain exchange between two parents
  (repairing joint fanout violations by re-allocating offending dims);
* **mutation** — re-allocating one random dimension's chain.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.allocation import DimChain
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.utils.rng import make_rng

Genome = Dict[str, DimChain]


class GeneticSearch:
    """Genetic mapspace search.

    Args:
        mapspace: source of genomes (chains) and mapping assembly.
        evaluator: fitness function (lower objective = fitter).
        objective: optimization metric name.
        population_size: individuals per generation.
        generations: number of generations to evolve.
        mutation_rate: probability of mutating each offspring.
        tournament: tournament size for parent selection.
        seed: RNG seed or generator.
        use_batch: score each population through the vectorized
            :class:`~repro.model.batch.BatchEvaluator` when supported.
            Genomes are assembled in population order before scoring (the
            RNG stream is untouched by evaluation), and the engine is
            bit-exact, so the evolution trajectory is identical to the
            scalar path. Pruning stays off — selection needs every
            individual's fitness, not just the incumbent-beaters.
        batch_size: unused on the scalar path; populations are scored as
            one batch each (they are search-sized, not sweep-sized).
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        population_size: int = 50,
        generations: int = 20,
        mutation_rate: float = 0.3,
        tournament: int = 3,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
        batch_size: int = 512,
        batch_engine=None,
    ) -> None:
        if population_size < 2:
            raise SearchError("population_size must be >= 2")
        if generations < 1:
            raise SearchError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SearchError("mutation_rate must be in [0, 1]")
        if tournament < 1:
            raise SearchError("tournament must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.rng = make_rng(seed)
        self.use_batch = use_batch
        self.batch_size = batch_size
        self.batch_engine = batch_engine

    def _batch_engine(self):
        """The batch engine, or None when scoring must run scalar."""
        if not self.use_batch:
            return None
        if self.batch_engine is not None:
            # Injected shared engine (see RandomSearch._batch_engine).
            return (
                self.batch_engine
                if getattr(self.batch_engine, "supported", False)
                else None
            )
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        """Evolve the population and return the best mapping found."""
        engine = self._batch_engine()
        timer = SearchTimer(
            self.evaluator,
            driver="genetic",
            total_units=(self.generations + 1) * self.population_size,
        )
        evaluations = 0
        num_valid = 0
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        curve: List[ConvergencePoint] = []
        scored: List[Tuple[float, Genome]] = []

        def score_population(genomes: List[Genome]) -> List[float]:
            """Fitness of a whole population, in population order.

            All genomes are assembled first (the only RNG consumer), then
            priced in one batch when the engine is available — the stream
            and the metrics match per-genome scalar scoring exactly.
            """
            nonlocal evaluations, num_valid, best, best_metric
            mappings = [
                self.mapspace.assemble(genome, self.rng) for genome in genomes
            ]
            outcomes = None
            if engine is not None:
                outcomes = engine.evaluate_mappings(
                    mappings, objective=self.objective, prune=False
                )
            metrics: List[float] = []
            for index, mapping in enumerate(mappings):
                if outcomes is not None:
                    outcome = outcomes[index]
                    valid = outcome.valid
                    metric = outcome.metric
                    evaluation = outcome.evaluation
                else:
                    evaluation = self.evaluator.evaluate(mapping)
                    valid = evaluation.valid
                    metric = (
                        evaluation.metric(self.objective)
                        if valid
                        else float("inf")
                    )
                evaluations += 1
                if not valid:
                    metrics.append(float("inf"))
                    continue
                num_valid += 1
                if metric < best_metric:
                    if evaluation is None:
                        evaluation = self.evaluator.evaluate_fresh(mapping)
                    best = evaluation
                    best_metric = metric
                    curve.append(
                        ConvergencePoint(
                            evaluations=evaluations, best_metric=metric
                        )
                    )
                    obs.inc("search.improvements", driver="genetic")
                    obs.set_gauge(
                        "search.best_metric", metric, driver="genetic"
                    )
                    timer.progress.improved(metric)
                metrics.append(metric)
            obs.inc("search.candidates", len(genomes), driver="genetic")
            timer.progress.advance(len(genomes))
            return metrics

        with timer, obs.trace(
            "search.run", driver="genetic",
            mode="batch" if engine is not None else "scalar",
            objective=self.objective,
        ):
            population = [
                self.mapspace.sample_chains(self.rng)
                for _ in range(self.population_size)
            ]
            with obs.trace("search.generation", index=0):
                scored = list(zip(score_population(population), population))
            for generation in range(self.generations):
                with obs.trace("search.generation", index=generation + 1):
                    offspring: List[Genome] = []
                    while len(offspring) < self.population_size:
                        mother = self._select(scored)
                        father = self._select(scored)
                        child = self._crossover(mother, father)
                        if self.rng.random() < self.mutation_rate:
                            child = self._mutate(child)
                        offspring.append(child)
                    scored_offspring = list(
                        zip(score_population(offspring), offspring)
                    )
                    pool = scored + scored_offspring
                    pool.sort(key=lambda pair: pair[0])
                    scored = pool[: self.population_size]
                obs.inc("search.generations", driver="genetic")
        stats = timer.stats(evaluations, engine=engine)
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="budget",
            curve=curve,
            stats=stats,
        )

    def _select(self, scored: List[Tuple[float, Genome]]) -> Genome:
        contenders = [
            scored[self.rng.randrange(len(scored))] for _ in range(self.tournament)
        ]
        return min(contenders, key=lambda pair: pair[0])[1]

    def _crossover(self, mother: Genome, father: Genome) -> Genome:
        child: Genome = {}
        for dim in mother:
            child[dim] = mother[dim] if self.rng.random() < 0.5 else father[dim]
        return self._repair(child)

    def _mutate(self, genome: Genome) -> Genome:
        dim = self.rng.choice(list(genome))
        return self.mapspace.resample_dim(genome, dim, self.rng)

    def _repair(self, genome: Genome) -> Genome:
        """Re-allocate random dims until the joint fanout fits."""
        repaired = dict(genome)
        attempts = 0
        while not self.mapspace.chains_within_fanout(repaired):
            dim = self.rng.choice(list(repaired))
            repaired = self.mapspace.resample_dim(repaired, dim, self.rng)
            attempts += 1
            if attempts > 20 * len(repaired):
                return self.mapspace.sample_chains(self.rng)
        return repaired

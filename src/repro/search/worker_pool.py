"""Reusable process-pool machinery for parallel searches.

:mod:`repro.search.parallel` grew the original pool: a fork→spawn→
sequential start-method ladder, an initializer that ships immutable
search state once per worker instead of once per job, and a snapshot
protocol that carries per-worker metrics registries back to the driver.
The parallel branch-and-bound driver needs exactly the same machinery
plus one more ingredient — *shared* mutable state (the incumbent bound)
that must be created from the same multiprocessing context as the pool
itself. This module hosts the generalized pieces so both searchers (and
future parallel drivers) share one implementation:

* :func:`run_jobs` — fan picklable jobs over a persistent pool of
  workers, trying each start method before degrading to sequential
  in-process execution; results come back in dispatch order regardless
  of completion order.
* ``shared_factory`` — a hook called with the pool's context (or
  ``None`` on the sequential path) to build context-matched shared
  primitives. A ``multiprocessing.Value`` created under ``fork`` cannot
  be handed to a ``spawn`` pool, so the factory runs once per ladder
  attempt and its products are merged into the worker state.
* :class:`SharedIncumbent` / :class:`LocalIncumbent` — the cross-process
  best-so-far cell used by parallel branch-and-bound, with a process-
  local stand-in exposing the same protocol for serial/sequential runs.
* :func:`run_under_worker_obs` / :func:`collect_worker_obs` — the
  metrics-registry snapshot protocol: workers accumulate into a private
  registry and ship a picklable snapshot inside their result stats; the
  driver pops and merges every snapshot into its ambient registry so
  per-worker counters sum into the caller's scope.
"""

from __future__ import annotations

import logging
import math
import os
import sys
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.exceptions import SearchError
from repro.obs import MetricsRegistry

logger = logging.getLogger(__name__)

#: Start methods tried, in order, when the caller does not force one.
#: ``fork`` is cheapest (no re-import, no pickling of the initializer
#: state); ``spawn`` is the portable fallback (and the only option on
#: Windows and recent macOS defaults).
START_METHODS = ("fork", "spawn")

#: Transient stats key a worker uses to ship its private metrics-registry
#: snapshot back to the driver; popped (and merged into the ambient
#: registry) by :func:`collect_worker_obs` before merged stats are
#: assembled, so it is never visible to callers.
OBS_SNAPSHOT_KEY = "_obs_registry"

# Per-process (entry, state) installed by the pool initializer so
# spawn-started workers (which re-import this module) can rebuild their
# stack without re-pickling the shared state for every job.
_POOL_STATE: Optional[Tuple[Callable[..., Any], Dict[str, Any]]] = None


def _init_pool_worker(entry: Callable[..., Any], state: Dict[str, Any]) -> None:
    """Pool initializer: stash the job entry point and shared state."""
    global _POOL_STATE
    _POOL_STATE = (entry, state)


def _run_pool_job(indexed_job: Tuple[int, Any]) -> Tuple[int, Any]:
    """Worker trampoline: run one job through the installed entry point."""
    index, job = indexed_job
    if _POOL_STATE is None:  # pragma: no cover - initializer always runs
        raise SearchError("worker pool state not initialized")
    entry, state = _POOL_STATE
    return index, entry(state, job)


def spawn_usable() -> bool:
    """True when ``spawn`` workers can bootstrap.

    Spawned children re-import ``__main__``; from an interactive session
    (REPL, stdin script) there is no importable main module, the children
    die during bootstrap, and the pool respawns them forever — a hang, not
    an exception. Detect that case up front and fall through to the next
    execution mode instead.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return True  # `python -m ...` (and pytest): importable by spec.
    main_file = getattr(main, "__file__", None)
    return bool(main_file) and os.path.exists(main_file)


def run_jobs(
    entry: Callable[[Dict[str, Any], Any], Any],
    state: Dict[str, Any],
    jobs: Iterable[Any],
    workers: int,
    start_method: Optional[str] = None,
    shared_factory: Optional[Callable[[Any], Dict[str, Any]]] = None,
    on_result: Optional[Callable[[Any], None]] = None,
) -> Tuple[List[Any], str, Dict[str, Any]]:
    """Fan ``jobs`` over a process pool; returns (results, mode, shared).

    ``entry(state, job)`` must be a picklable module-level callable (spawn
    workers import it by reference). ``state`` ships once per worker via
    the pool initializer; jobs stay small. Results come back sorted by
    dispatch order even though the pool consumes them via
    ``imap_unordered`` (with a chunksize that amortizes IPC for large job
    lists), so tie-breaking downstream is identical across pool modes.

    ``shared_factory(ctx)`` — when given — is called once per ladder
    attempt with the candidate ``multiprocessing`` context (``None`` on
    the sequential path) and returns a dict merged into the worker state.
    Context-matched construction is mandatory for synchronization
    primitives: a SemLock born under ``fork`` raises if shipped into a
    ``spawn`` pool. The dict from the attempt that actually ran is
    returned so the driver can read the shared objects afterwards.

    ``on_result(result)`` — when given — is called in the driver process
    once per job **as its result arrives** (completion order on the pool
    path, dispatch order sequentially), before the sorted result list is
    assembled. This is the hook parallel drivers use to stream per-unit
    progress into a live tracker; exceptions it raises propagate and
    abort the run, so callbacks should be cheap and non-throwing.

    Every candidate start method is tried before giving up on
    parallelism; the sequential fallback still runs all jobs in-process.
    """
    if workers < 1:
        raise SearchError("workers must be >= 1")
    job_list = list(jobs)
    factory = shared_factory or (lambda ctx: {})
    if workers > 1 and len(job_list) > 1:
        methods = (start_method,) if start_method else START_METHODS
        for method in methods:
            if method == "spawn" and not spawn_usable():
                logger.warning(
                    "spawn start method skipped: __main__ is not importable "
                    "(interactive session?)"
                )
                continue
            try:
                import multiprocessing

                context = multiprocessing.get_context(method)
            except (ImportError, ValueError) as error:
                logger.debug("start method %r unavailable: %s", method, error)
                continue
            try:
                shared = factory(context)
                full_state = {**state, **shared} if shared else state
                chunksize = max(1, len(job_list) // (workers * 4))
                with context.Pool(
                    processes=workers,
                    initializer=_init_pool_worker,
                    initargs=(entry, full_state),
                ) as pool:
                    indexed = []
                    for pair in pool.imap_unordered(
                        _run_pool_job,
                        list(enumerate(job_list)),
                        chunksize=chunksize,
                    ):
                        indexed.append(pair)
                        if on_result is not None:
                            on_result(pair[1])
                indexed.sort(key=lambda pair: pair[0])
                logger.info(
                    "worker pool ran %d jobs via %s", len(job_list), method
                )
                return [result for _, result in indexed], method, shared
            except (OSError, ValueError, RuntimeError) as error:
                logger.warning(
                    "start method %r failed (%s); trying next option",
                    method,
                    error,
                )
        logger.warning(
            "no multiprocessing start method usable; running sequentially"
        )
    shared = factory(None)
    full_state = {**state, **shared} if shared else state
    results = []
    for job in job_list:
        result = entry(full_state, job)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results, "sequential", shared


class LocalIncumbent:
    """Process-local best-so-far cell (serial / sequential-fallback).

    Same protocol as :class:`SharedIncumbent` — ``read`` the current
    bound, ``offer`` a strictly-better candidate, ``peek`` the pair —
    so search code is written once against the incumbent interface.
    """

    def __init__(
        self, num_dims: int, metric: float = math.inf
    ) -> None:
        self._metric = float(metric)
        self._signature: Tuple[int, ...] = (-1,) * int(num_dims)

    def read(self) -> float:
        return self._metric

    def offer(self, metric: float, signature: Sequence[int]) -> bool:
        """Install ``metric`` if strictly better; True when accepted."""
        if not metric < self._metric:
            return False
        self._metric = float(metric)
        self._signature = tuple(int(x) for x in signature)
        return True

    def peek(self) -> Tuple[float, Tuple[int, ...]]:
        return self._metric, self._signature


class SharedIncumbent:
    """Cross-process best-so-far cell for parallel branch-and-bound.

    A ``multiprocessing.Value('d')`` (with its lock) holds the incumbent
    metric and a small lock-free ``Array('q')`` holds the argmin's menu-
    index signature, written only while the Value's lock is held. Reads
    take the lock too: a torn read could observe a garbage-small metric
    and wrongly prune a subtree containing the optimum, which would
    break the bit-exactness contract. Construct via
    :func:`SharedIncumbent.factory` so the primitives are born from the
    pool's own context (see :func:`run_jobs`).
    """

    def __init__(self, ctx: Any, num_dims: int, metric: float = math.inf):
        self._value = ctx.Value("d", float(metric))
        self._signature = ctx.Array("q", [-1] * int(num_dims), lock=False)

    @staticmethod
    def factory(
        num_dims: int, metric: float = math.inf
    ) -> Callable[[Any], Dict[str, Any]]:
        """``shared_factory`` for :func:`run_jobs`: builds the incumbent
        from the attempt's context, or a :class:`LocalIncumbent` when the
        attempt is sequential (``ctx is None``)."""

        def build(ctx: Any) -> Dict[str, Any]:
            if ctx is None:
                return {"incumbent": LocalIncumbent(num_dims, metric)}
            return {"incumbent": SharedIncumbent(ctx, num_dims, metric)}

        return build

    def read(self) -> float:
        with self._value.get_lock():
            return self._value.value

    def offer(self, metric: float, signature: Sequence[int]) -> bool:
        """Install ``metric`` if strictly better; True when accepted.

        The compare and the write happen under one lock acquisition, so
        concurrent offers serialize and the cell is monotone decreasing.
        """
        metric = float(metric)
        with self._value.get_lock():
            if not metric < self._value.value:
                return False
            self._value.value = metric
            for i, x in enumerate(signature):
                self._signature[i] = int(x)
            return True

    def peek(self) -> Tuple[float, Tuple[int, ...]]:
        with self._value.get_lock():
            return self._value.value, tuple(self._signature)


def run_under_worker_obs(
    enabled: bool, run: Callable[[], Any]
) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Run ``run()`` under a private metrics registry when ``enabled``.

    Returns ``(result, snapshot)`` where ``snapshot`` is a picklable
    registry snapshot (or ``None`` when observability is off). The
    private registry deliberately replaces any scope inherited across
    ``fork`` — the driver's tracer file handle must not be shared — and
    the caller stores the snapshot under :data:`OBS_SNAPSHOT_KEY` in its
    result stats for :func:`collect_worker_obs` to merge driver-side.
    """
    if not enabled:
        return run(), None
    registry = MetricsRegistry()
    with obs.obs_scope(registry=registry):
        result = run()
    return result, registry.snapshot()


def collect_worker_obs(stats_dicts: Iterable[Dict[str, Any]]) -> None:
    """Merge worker registry snapshots into the driver's ambient registry.

    Each worker accumulated metrics into its own process-local registry
    (see :func:`run_under_worker_obs`); fold those counts into whichever
    registry the caller's :func:`~repro.obs.scope.obs_scope` installed,
    and strip the transport key so stats payloads keep their documented
    shape. Safe to call with observability off (snapshots are still
    stripped).
    """
    context = obs.active_obs()
    for stats in stats_dicts:
        snapshot = stats.pop(OBS_SNAPSHOT_KEY, None)
        if snapshot is not None and context is not None:
            context.registry.merge(snapshot)

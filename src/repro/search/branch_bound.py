"""Hierarchical branch-and-bound mapper with partial-cost pruning.

The flat searchers traverse the whole chain-product enumeration, pricing
every candidate at least partially (the batch engine's row pruning still
packs and cycles every row). This searcher instead walks the *prefix tree*
over problem dimensions: each tree level fixes one dimension's complete
Eq. (5) bound+remainder chain, and every node is priced with an admissible
lower bound over all completions
(:class:`~repro.model.batch.PartialBoundEngine`). Any subtree whose bound
cannot beat the incumbent is cut before a single one of its candidates is
enumerated — the lift from "prune rows in a packed batch" to "prune
regions of the mapspace" (ROADMAP item 2; cf. the level-by-level
ComputeLevelMapper idiom).

Search order and exactness:

* **warm start** — a short random-sampling pass seeds the incumbent. The
  samples are assembled in canonical loop order (``assemble(..., rng=None)``),
  so every warm candidate is a member of the enumerated space and the
  final best is always an enumeration member.
* **best-first** — nodes pop in ascending bound order (ties broken by a
  monotone insertion counter, so the trajectory is seed-deterministic).
  Bounds are monotone along the tree, so the first prunable node at the
  front of the heap proves every remaining node prunable and the search
  terminates with the exact optimum.
* **leaf batches** — once a subtree is small enough, it is buffered
  rather than branched; buffered subtrees flush together through
  :meth:`MapSpace.iter_prefix_batches`, which packs completions from
  *many* subtrees into shared full-width batches (tiny per-leaf batches
  would otherwise dominate the runtime). At flush time each buffered
  bound is re-checked against the incumbent — which usually improved
  since the leaf was popped — so late leaves are often cut without
  enumerating a row. Surviving rows are priced by the bit-exact
  vectorized engine with row-level pruning against the same incumbent.
  The returned best-EDP is therefore bit-identical to
  :class:`~repro.search.exhaustive.ExhaustiveSearch` — asserted by the
  ``branch-bound-parity`` invariant in :mod:`repro.verify.invariants`.

The walk itself lives in :class:`_SubtreeWalker`, parameterized by an
*incumbent cell* (:class:`~repro.search.worker_pool.LocalIncumbent` here;
:class:`~repro.search.worker_pool.SharedIncumbent` when
:mod:`repro.search.branch_bound_parallel` fans subtrees over a worker
pool with ``workers > 1``). Serial search reads and writes the local cell
exactly where it used to read ``best_metric``, so the trajectory — and
the returned best — is unchanged; parallel workers read the shared cell
at the same points, which makes every cross-process cut subject to the
same ``PRUNE_MARGIN`` guard and keeps the best-EDP bit-identical.

When the batch engine does not support the (arch, workload, evaluator)
triple, the search degrades to the scalar exhaustive sweep — same result,
no subtree pruning — and reports ``mode="scalar-fallback"`` (``workers``
is ignored on that path).
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.search.worker_pool import LocalIncumbent
from repro.utils.rng import make_rng

#: Default number of warm-start samples seeding the incumbent.
DEFAULT_WARM_SAMPLES = 64

#: Default subtree size below which completions are priced as batches
#: rather than branched further. Leaves get a dense per-completion bound
#: sweep at flush time, so wide leaves are cheap: the sweep is a handful
#: of broadcast kernels, and only surviving cells are ever enumerated.
DEFAULT_LEAF_WIDTH = 4_096

#: Buffered leaf rows (pre-fanout-filter estimate) that trigger a flush.
#: Large enough that flushes pack full batches; small enough that the
#: incumbent stays fresh between flushes.
FLUSH_ROWS_FACTOR = 8


def dims_branch_order(menus: Sequence[Tuple[str, Tuple]]) -> List[Tuple[str, Tuple]]:
    """Branch the widest menus first: that is where bounds can cut the
    largest subtrees, and it keeps the frontier small. Ties break on
    workload dim order, so the trajectory is fully deterministic — and
    identical between the serial walk and the parallel partitioning."""
    return sorted(menus, key=lambda pair: (-len(pair[1]), pair[0]))


class _SubtreeWalker:
    """Best-first walk of a prefix (sub)tree against an incumbent cell.

    One implementation serves both regimes: the serial search walks the
    whole tree with a :class:`LocalIncumbent`, and each parallel worker
    walks its assigned top-level subtree with a
    :class:`~repro.search.worker_pool.SharedIncumbent`. The walker keeps
    a cached cut metric (``_cut``) refreshed from the incumbent at every
    node pop, flush, and batch — the points where the serial search read
    ``best_metric`` — and re-reads it whenever an ``offer`` loses a race,
    so pruning is never done against anything but a real candidate's
    true metric. Under the local cell this is bit-for-bit the original
    serial trajectory.

    Alongside the incumbent the walker tracks its own best candidate
    (evaluation, metric, chains, and menu-index signature in workload dim
    order) so a parallel driver can re-price every worker's claim and
    return a bit-identical best metric regardless of race timing.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        engine,
        evaluator: Evaluator,
        bound_engine,
        dims_order: Sequence[Tuple[str, Tuple]],
        objective: str,
        leaf_width: int,
        batch_size: int,
        limit: Optional[int],
        incumbent,
        tracker=None,
    ) -> None:
        self.mapspace = mapspace
        self.engine = engine
        self.evaluator = evaluator
        self.bound_engine = bound_engine
        self.dims_order = list(dims_order)
        self.objective = objective
        self.leaf_width = leaf_width
        self.batch_size = batch_size
        self.limit = limit
        self.incumbent = incumbent
        #: Optional ProgressTracker advanced as cells are covered (serial
        #: search passes the timer's; parallel workers leave it None and
        #: the driver advances per arriving unit instead).
        self.tracker = tracker
        self.menu_by_dim = dict(self.dims_order)
        self.num_dims = len(self.dims_order)
        #: Workload dim order — the canonical signature axis (matches
        #: ``dim_chain_menus`` and the batch layout's dim columns).
        self.workload_dims = [dim for dim, _ in mapspace.dim_chain_menus()]
        # suffix_product[k] = candidates (pre-fanout-filter) below depth k.
        suffix = [1] * (self.num_dims + 1)
        for k in range(self.num_dims - 1, -1, -1):
            suffix[k] = suffix[k + 1] * len(self.dims_order[k][1])
        self.suffix_product = suffix

        self.evaluations = 0
        self.num_valid = 0
        self.nodes_expanded = 0
        self.leaves_deferred = 0
        self.subtrees_pruned = 0
        self.infeasible_subtrees = 0
        #: Pre-filter cells this walker has resolved (priced, pruned, or
        #: proved infeasible). Every cell of a walked subtree is counted
        #: exactly once, so a completed ``walk(root)`` accumulates exactly
        #: ``suffix_product[len(root)]`` — the progress-total invariant
        #: the branch-bound tests pin.
        self.cells_covered = 0.0
        self.best: Optional[Evaluation] = None
        self.best_metric = float("inf")
        self.best_chains: Optional[Dict[str, object]] = None
        self.best_signature: Optional[Tuple[int, ...]] = None
        self.curve: List[ConvergencePoint] = []

        self._cut = float(incumbent.read())
        # Leaf subtrees are buffered and flushed together so their rows
        # pack into shared full-width batches (a per-leaf iter_batches
        # call would emit mostly-empty batches and the per-batch kernel
        # overhead would swamp the pruning win).
        self._leaf_buffer: List[Tuple[float, Tuple[int, ...]]] = []
        self._leaf_rows = 0
        self._flush_rows = FLUSH_ROWS_FACTOR * batch_size
        self._counter = 1

    def _cover(self, cells: float) -> None:
        """Account ``cells`` pre-filter candidates as resolved."""
        if cells <= 0:
            return
        self.cells_covered += cells
        if self.tracker is not None:
            self.tracker.advance(cells)

    # -- improvements ----------------------------------------------------

    def _consider(
        self,
        metric: float,
        make_evaluation: Callable[[], Evaluation],
        chains: Optional[Dict[str, object]] = None,
        signature: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        """Offer a true candidate metric to the incumbent.

        The evaluation is materialized only when the candidate beats the
        cached cut (same laziness as before). A losing offer — possible
        only under a shared incumbent, when another worker posted a
        better true metric first — refreshes the cut instead.
        """
        if not metric < self._cut:
            return False

        evaluation = make_evaluation()
        if signature is None:
            signature = (-1,) * len(self.workload_dims)
        if not self.incumbent.offer(metric, signature):
            self._cut = float(self.incumbent.read())
            return False
        self._cut = metric
        self.best = evaluation
        self.best_metric = metric
        self.best_chains = dict(chains) if chains is not None else None
        self.best_signature = tuple(int(x) for x in signature)
        self.curve.append(
            ConvergencePoint(evaluations=self.evaluations, best_metric=metric)
        )
        obs.inc("search.improvements", driver="branch-bound")
        obs.set_gauge("search.best_metric", metric, driver="branch-bound")
        if self.tracker is not None:
            self.tracker.improved(metric)
        return True

    def price_mappings(self, mappings, chains_list=None) -> None:
        """Price assembled mappings through the engine (no row pruning).

        Used for the warm start and for the parallel driver's final
        re-price of worker claims; every improving candidate goes through
        :meth:`_consider`, so order decides ties deterministically.
        """
        outcomes = self.engine.evaluate_mappings(
            mappings, objective=self.objective, prune=False
        )
        for i, (mapping, outcome) in enumerate(zip(mappings, outcomes)):
            self.evaluations += 1
            if not outcome.valid:
                continue
            self.num_valid += 1

            def make_evaluation(outcome=outcome, mapping=mapping):
                if outcome.evaluation is not None:
                    return outcome.evaluation
                return self.evaluator.evaluate_fresh(mapping)

            self._consider(
                float(outcome.metric),
                make_evaluation,
                chains=chains_list[i] if chains_list is not None else None,
            )

    # -- the walk --------------------------------------------------------

    def walk(self, root_indices: Tuple[int, ...] = ()) -> float:
        """Best-first walk of the subtree rooted at ``root_indices``
        (menu indices along ``dims_order``; empty = the whole tree).
        Returns the root's bound. Buffered leaves are flushed before
        returning, so the walker's best is final when this returns.
        """
        from repro.model.batch import PRUNE_MARGIN

        dims_order = self.dims_order
        root_assigned = {
            dims_order[i][0]: k for i, k in enumerate(root_indices)
        }
        root_bound = self.bound_engine.bound(root_assigned, self.objective)
        # Heap entries: (bound, insertion counter, chain-index tuple
        # along dims_order). The counter makes ties deterministic.
        heap: List[Tuple[float, int, Tuple[int, ...]]] = [
            (root_bound, 0, tuple(root_indices))
        ]
        while heap:
            node_bound, _, indices = heapq.heappop(heap)
            self._cut = float(self.incumbent.read())
            if (
                self._cut != float("inf")
                and node_bound * (1.0 - PRUNE_MARGIN) >= self._cut
            ):
                # Best-first: every remaining node's bound is at least
                # this one, so the whole frontier is proved prunable.
                pruned_now = 1 + len(heap)
                self.subtrees_pruned += pruned_now
                obs.inc("search.subtrees_pruned", pruned_now,
                        driver="branch-bound")
                self._cover(
                    self.suffix_product[len(indices)]
                    + sum(
                        self.suffix_product[len(entry[2])] for entry in heap
                    )
                )
                heap.clear()
                break
            depth = len(indices)
            if depth == self.num_dims or (
                self.suffix_product[depth] <= self.leaf_width
            ):
                # Deferred, not expanded: the node's completions will be
                # priced (or cut) at flush time. Counted separately from
                # expansions so both stats stay meaningful.
                self.leaves_deferred += 1
                self._leaf_buffer.append((node_bound, indices))
                self._leaf_rows += self.suffix_product[depth]
                if self._leaf_rows >= self._flush_rows:
                    self.flush_leaves()
                continue
            self.nodes_expanded += 1
            dim, menu = dims_order[depth]
            prefix = {
                dims_order[i][0]: dims_order[i][1][k]
                for i, k in enumerate(indices)
            }
            assigned = {
                dims_order[i][0]: k for i, k in enumerate(indices)
            }
            # One vectorized call prices the whole menu of children —
            # per-child scalar bounds were the walk's hotspot.
            child_bounds = self.bound_engine.child_bounds(
                assigned, dim, self.objective
            )
            for k, chain in enumerate(menu):
                prefix[dim] = chain
                if not self.mapspace.prefix_feasible(prefix):
                    # No completion fits the fanout caps; not a bound
                    # decision, so counted separately.
                    self.infeasible_subtrees += 1
                    self._cover(self.suffix_product[depth + 1])
                    continue
                child_bound = float(child_bounds[k])
                if (
                    self._cut != float("inf")
                    and child_bound * (1.0 - PRUNE_MARGIN) >= self._cut
                ):
                    self.subtrees_pruned += 1
                    obs.inc("search.subtrees_pruned",
                            driver="branch-bound")
                    self._cover(self.suffix_product[depth + 1])
                    continue
                heapq.heappush(
                    heap, (child_bound, self._counter, indices + (k,))
                )
                self._counter += 1

        # Leaves buffered after the last threshold flush (including any
        # left when the frontier drained) still need pricing; the flush
        # re-checks their bounds against the final incumbent.
        self.flush_leaves()
        return root_bound

    def flush_leaves(self) -> None:
        """Price every buffered leaf subtree through shared batches.

        At flush time each leaf's stored bound is re-checked against the
        incumbent — which usually improved since the leaf was popped —
        and surviving leaves get a dense per-completion bound sweep
        (:meth:`suffix_bounds`): complete assignments are the tightest
        bounds the engine can state, and a cell cut there is never even
        enumerated into a batch.
        """
        import numpy as np

        from repro.model.batch import PRUNE_MARGIN

        if not self._leaf_buffer:
            return
        self._cut = float(self.incumbent.read())
        dims_order = self.dims_order
        pinned: List[Dict[str, object]] = []
        pinned_sigs: List[Tuple[int, ...]] = []
        for leaf_bound, leaf_indices in self._leaf_buffer:
            if (
                self._cut != float("inf")
                and leaf_bound * (1.0 - PRUNE_MARGIN) >= self._cut
            ):
                self.subtrees_pruned += 1
                obs.inc("search.subtrees_pruned", driver="branch-bound")
                self._cover(self.suffix_product[len(leaf_indices)])
                continue
            assigned = {
                dims_order[i][0]: k for i, k in enumerate(leaf_indices)
            }
            if len(leaf_indices) == self.num_dims:
                pinned.append(
                    {
                        dims_order[i][0]: dims_order[i][1][k]
                        for i, k in enumerate(leaf_indices)
                    }
                )
                pinned_sigs.append(
                    tuple(assigned[dim] for dim in self.workload_dims)
                )
                continue
            cells = self.bound_engine.suffix_bounds(assigned, self.objective)
            free = [
                dim
                for dim in self.bound_engine.layout.dims
                if dim not in assigned
            ]
            flat = cells.reshape(-1)
            if self._cut != float("inf"):
                keep = np.flatnonzero(
                    flat * (1.0 - PRUNE_MARGIN) < self._cut
                )
                cut = flat.size - keep.size
                if cut:
                    self.subtrees_pruned += cut
                    obs.inc(
                        "search.subtrees_pruned", cut,
                        driver="branch-bound",
                    )
                    # Each cut cell is one complete assignment.
                    self._cover(cut)
            else:
                keep = np.arange(flat.size)
            base = {
                dims_order[i][0]: dims_order[i][1][k]
                for i, k in enumerate(leaf_indices)
            }
            for flat_idx in keep:
                cell = np.unravel_index(int(flat_idx), cells.shape)
                full = dict(base)
                sig_map = dict(assigned)
                for dim, idx in zip(free, cell):
                    full[dim] = self.menu_by_dim[dim][idx]
                    sig_map[dim] = int(idx)
                pinned.append(full)
                pinned_sigs.append(
                    tuple(sig_map[dim] for dim in self.workload_dims)
                )
        self._leaf_buffer.clear()
        self._leaf_rows = 0
        if not pinned:
            return
        rows_priced = 0
        with obs.trace("search.leaf_flush", subtrees=len(pinned)):
            for batch in self.mapspace.iter_prefix_batches(
                pinned,
                batch_size=self.batch_size,
                tags=list(range(len(pinned))),
            ):
                if (
                    self.limit is not None
                    and self.evaluations + batch.size > self.limit
                ):
                    raise SearchError(
                        f"branch-and-bound search exceeded limit of "
                        f"{self.limit} priced mappings"
                    )
                self._cut = float(self.incumbent.read())
                outcome = self.engine.evaluate_batch(
                    batch,
                    objective=self.objective,
                    incumbent=self._cut,
                    prune=True,
                )
                obs.inc(
                    "search.candidates", batch.size, driver="branch-bound"
                )
                rows_priced += batch.size
                self._cover(batch.size)
                for i in range(batch.size):
                    self.evaluations += 1
                    if not outcome.valid[i]:
                        continue
                    self.num_valid += 1
                    if outcome.pruned[i]:
                        continue
                    metric = float(outcome.metric[i])
                    tag = int(batch.tags[i])

                    def make_evaluation(outcome=outcome, batch=batch, i=i):
                        evaluation = outcome.evaluations.get(i)
                        if evaluation is not None:
                            return evaluation
                        return self.evaluator.evaluate_fresh(
                            batch.mapping_at(i)
                        )

                    self._consider(
                        metric,
                        make_evaluation,
                        chains=pinned[tag],
                        signature=pinned_sigs[tag],
                    )
        # Pinned cells the joint-fanout filter dropped never became rows;
        # they are resolved all the same.
        self._cover(len(pinned) - rows_priced)


class BranchBoundSearch:
    """Exact best-first branch-and-bound over the per-dimension prefix tree.

    Args:
        mapspace: must be enumerable (same regime as exhaustive search).
        evaluator: prices candidates (through the batch engine when
            supported).
        objective: optimization metric name ("edp", "energy", "delay").
        warm_samples: random samples seeding the incumbent before the
            tree walk; 0 disables warm start.
        leaf_width: subtrees with at most this many candidates are priced
            as packed batches instead of being branched further.
        batch_size: candidates per packed leaf batch.
        limit: safety cap on *priced* candidates (pruned subtrees are
            free); exceeding it raises. ``None`` disables the cap. With
            ``workers > 1`` the cap applies per work unit, not globally.
        seed: RNG seed or generator (consumed only by the warm start).
        use_batch: allow the vectorized engine; without it (or NumPy, or
            an unsupported evaluator config) the search falls back to the
            scalar exhaustive sweep.
        workers: fan top-level subtrees over a process pool when > 1
            (see :mod:`repro.search.branch_bound_parallel`); the best
            metric is bit-identical to the serial walk. Ignored on the
            scalar-fallback path.
        start_method: force a multiprocessing start method ("fork" or
            "spawn") for ``workers > 1``; by default each is tried in
            that order before degrading to sequential execution.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        warm_samples: int = DEFAULT_WARM_SAMPLES,
        leaf_width: int = DEFAULT_LEAF_WIDTH,
        batch_size: int = 512,
        limit: Optional[int] = 10_000_000,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if warm_samples < 0:
            raise SearchError("warm_samples must be >= 0")
        if leaf_width < 1:
            raise SearchError("leaf_width must be >= 1")
        if batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        if workers < 1:
            raise SearchError("workers must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.warm_samples = warm_samples
        self.leaf_width = leaf_width
        self.batch_size = batch_size
        self.limit = limit
        self.rng = make_rng(seed)
        self.use_batch = use_batch
        self.workers = workers
        self.start_method = start_method

    def _batch_engine(self):
        """The batch engine, or None when this search must run scalar."""
        if not self.use_batch:
            return None
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        engine = self._batch_engine()
        if engine is None:
            return self._run_scalar_fallback()
        if self.workers > 1:
            from repro.search.branch_bound_parallel import run_parallel_tree

            return run_parallel_tree(self, engine)
        return self._run_tree(engine)

    # -- scalar fallback -------------------------------------------------

    def _run_scalar_fallback(self) -> SearchResult:
        """No engine, no bounds: degrade to the scalar exhaustive sweep.

        Same best mapping (the tree walk is exact), uniform stats schema
        (zeroed ``batch`` and ``bnb`` sub-dicts), driver relabeled so the
        run is attributable in traces and footers.
        """
        from repro.search.exhaustive import ExhaustiveSearch

        with obs.trace(
            "search.run", driver="branch-bound", mode="scalar-fallback",
            objective=self.objective,
        ):
            result = ExhaustiveSearch(
                self.mapspace,
                self.evaluator,
                objective=self.objective,
                limit=self.limit if self.limit is not None else 1_000_000_000,
                use_batch=False,
            ).run()
        result.stats["bnb"] = _bnb_stats()
        return result

    # -- the tree walk ---------------------------------------------------

    def _warm_start(self, walker: _SubtreeWalker) -> Optional[float]:
        """Seed the incumbent so bounds bite immediately.

        Runs on the walker so improvements flow through the same
        incumbent protocol (and curve/obs hooks) as tree candidates.
        """
        if not self.warm_samples:
            return None
        mapspace = self.mapspace
        with obs.trace("search.warm_start", samples=self.warm_samples):
            chain_sets = [
                mapspace.sample_chains(self.rng)
                for _ in range(self.warm_samples)
            ]
            mappings = [
                mapspace.assemble(chains, rng=None) for chains in chain_sets
            ]
            walker.price_mappings(mappings, chains_list=chain_sets)
        obs.inc("search.candidates", self.warm_samples,
                driver="branch-bound")
        return walker.best_metric if walker.best is not None else None

    def _run_tree(self, engine) -> SearchResult:
        from repro.model.batch import PartialBoundEngine

        mapspace = self.mapspace
        menus = mapspace.dim_chain_menus()
        bound_engine = PartialBoundEngine(engine, menus)
        dims_order = dims_branch_order(menus)

        # Total work = the pre-filter menu product: every cell is either
        # priced, pruned, or proved infeasible exactly once, so the
        # walker's covered-cells accounting lands exactly on this number.
        total_cells = 1
        for _, menu in menus:
            total_cells *= len(menu)
        timer = SearchTimer(
            self.evaluator, driver="branch-bound", total_units=total_cells
        )
        with timer, obs.trace(
            "search.run", driver="branch-bound", mode="batch",
            objective=self.objective,
        ):
            walker = _SubtreeWalker(
                mapspace,
                engine,
                self.evaluator,
                bound_engine,
                dims_order,
                objective=self.objective,
                leaf_width=self.leaf_width,
                batch_size=self.batch_size,
                limit=self.limit,
                incumbent=LocalIncumbent(len(menus)),
                tracker=timer.progress,
            )
            warm_metric = self._warm_start(walker)
            root_bound = walker.walk(())
            tightness = (
                root_bound / walker.best_metric
                if walker.best is not None and walker.best_metric > 0
                else None
            )
            if tightness is not None:
                obs.set_gauge(
                    "search.bound_tightness", tightness, driver="branch-bound"
                )

        stats = timer.stats(walker.evaluations, engine=engine)
        stats["bnb"] = _bnb_stats(
            nodes_expanded=walker.nodes_expanded,
            leaves_deferred=walker.leaves_deferred,
            subtrees_pruned=walker.subtrees_pruned,
            infeasible_subtrees=walker.infeasible_subtrees,
            root_bound=root_bound,
            bound_tightness=tightness,
            warm_start_metric=warm_metric,
        )
        return SearchResult(
            best=walker.best,
            objective=self.objective,
            num_evaluated=walker.evaluations,
            num_valid=walker.num_valid,
            terminated_by="exhausted",
            curve=walker.curve,
            stats=stats,
        )


def _bnb_stats(
    nodes_expanded: int = 0,
    leaves_deferred: int = 0,
    subtrees_pruned: int = 0,
    infeasible_subtrees: int = 0,
    root_bound: Optional[float] = None,
    bound_tightness: Optional[float] = None,
    warm_start_metric: Optional[float] = None,
) -> Dict[str, object]:
    """The ``bnb`` stats sub-dict (uniform keys on every path)."""
    return {
        "nodes_expanded": nodes_expanded,
        "leaves_deferred": leaves_deferred,
        "subtrees_pruned": subtrees_pruned,
        "infeasible_subtrees": infeasible_subtrees,
        "root_bound": root_bound,
        "bound_tightness": bound_tightness,
        "warm_start_metric": warm_start_metric,
    }


def branch_bound_search(
    mapspace: MapSpace,
    evaluator: Evaluator,
    objective: str = "edp",
    warm_samples: int = DEFAULT_WARM_SAMPLES,
    leaf_width: int = DEFAULT_LEAF_WIDTH,
    batch_size: int = 512,
    limit: Optional[int] = 10_000_000,
    seed: Optional[Union[int, random.Random]] = None,
    use_batch: bool = True,
    workers: int = 1,
    start_method: Optional[str] = None,
) -> SearchResult:
    """One-shot functional wrapper around :class:`BranchBoundSearch`."""
    return BranchBoundSearch(
        mapspace,
        evaluator,
        objective=objective,
        warm_samples=warm_samples,
        leaf_width=leaf_width,
        batch_size=batch_size,
        limit=limit,
        seed=seed,
        use_batch=use_batch,
        workers=workers,
        start_method=start_method,
    ).run()

"""Hierarchical branch-and-bound mapper with partial-cost pruning.

The flat searchers traverse the whole chain-product enumeration, pricing
every candidate at least partially (the batch engine's row pruning still
packs and cycles every row). This searcher instead walks the *prefix tree*
over problem dimensions: each tree level fixes one dimension's complete
Eq. (5) bound+remainder chain, and every node is priced with an admissible
lower bound over all completions
(:class:`~repro.model.batch.PartialBoundEngine`). Any subtree whose bound
cannot beat the incumbent is cut before a single one of its candidates is
enumerated — the lift from "prune rows in a packed batch" to "prune
regions of the mapspace" (ROADMAP item 2; cf. the level-by-level
ComputeLevelMapper idiom).

Search order and exactness:

* **warm start** — a short random-sampling pass seeds the incumbent. The
  samples are assembled in canonical loop order (``assemble(..., rng=None)``),
  so every warm candidate is a member of the enumerated space and the
  final best is always an enumeration member.
* **best-first** — nodes pop in ascending bound order (ties broken by a
  monotone insertion counter, so the trajectory is seed-deterministic).
  Bounds are monotone along the tree, so the first prunable node at the
  front of the heap proves every remaining node prunable and the search
  terminates with the exact optimum.
* **leaf batches** — once a subtree is small enough, it is buffered
  rather than branched; buffered subtrees flush together through
  :meth:`MapSpace.iter_prefix_batches`, which packs completions from
  *many* subtrees into shared full-width batches (tiny per-leaf batches
  would otherwise dominate the runtime). At flush time each buffered
  bound is re-checked against the incumbent — which usually improved
  since the leaf was popped — so late leaves are often cut without
  enumerating a row. Surviving rows are priced by the bit-exact
  vectorized engine with row-level pruning against the same incumbent.
  The returned best-EDP is therefore bit-identical to
  :class:`~repro.search.exhaustive.ExhaustiveSearch` — asserted by the
  ``branch-bound-parity`` invariant in :mod:`repro.verify.invariants`.

When the batch engine does not support the (arch, workload, evaluator)
triple, the search degrades to the scalar exhaustive sweep — same result,
no subtree pruning — and reports ``mode="scalar-fallback"``.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.utils.rng import make_rng

#: Default number of warm-start samples seeding the incumbent.
DEFAULT_WARM_SAMPLES = 64

#: Default subtree size below which completions are priced as batches
#: rather than branched further. Leaves get a dense per-completion bound
#: sweep at flush time, so wide leaves are cheap: the sweep is a handful
#: of broadcast kernels, and only surviving cells are ever enumerated.
DEFAULT_LEAF_WIDTH = 4_096

#: Buffered leaf rows (pre-fanout-filter estimate) that trigger a flush.
#: Large enough that flushes pack full batches; small enough that the
#: incumbent stays fresh between flushes.
FLUSH_ROWS_FACTOR = 8


class BranchBoundSearch:
    """Exact best-first branch-and-bound over the per-dimension prefix tree.

    Args:
        mapspace: must be enumerable (same regime as exhaustive search).
        evaluator: prices candidates (through the batch engine when
            supported).
        objective: optimization metric name ("edp", "energy", "delay").
        warm_samples: random samples seeding the incumbent before the
            tree walk; 0 disables warm start.
        leaf_width: subtrees with at most this many candidates are priced
            as packed batches instead of being branched further.
        batch_size: candidates per packed leaf batch.
        limit: safety cap on *priced* candidates (pruned subtrees are
            free); exceeding it raises. ``None`` disables the cap.
        seed: RNG seed or generator (consumed only by the warm start).
        use_batch: allow the vectorized engine; without it (or NumPy, or
            an unsupported evaluator config) the search falls back to the
            scalar exhaustive sweep.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        warm_samples: int = DEFAULT_WARM_SAMPLES,
        leaf_width: int = DEFAULT_LEAF_WIDTH,
        batch_size: int = 512,
        limit: Optional[int] = 10_000_000,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
    ) -> None:
        if warm_samples < 0:
            raise SearchError("warm_samples must be >= 0")
        if leaf_width < 1:
            raise SearchError("leaf_width must be >= 1")
        if batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.warm_samples = warm_samples
        self.leaf_width = leaf_width
        self.batch_size = batch_size
        self.limit = limit
        self.rng = make_rng(seed)
        self.use_batch = use_batch

    def _batch_engine(self):
        """The batch engine, or None when this search must run scalar."""
        if not self.use_batch:
            return None
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        engine = self._batch_engine()
        if engine is None:
            return self._run_scalar_fallback()
        return self._run_tree(engine)

    # -- scalar fallback -------------------------------------------------

    def _run_scalar_fallback(self) -> SearchResult:
        """No engine, no bounds: degrade to the scalar exhaustive sweep.

        Same best mapping (the tree walk is exact), uniform stats schema
        (zeroed ``batch`` and ``bnb`` sub-dicts), driver relabeled so the
        run is attributable in traces and footers.
        """
        from repro.search.exhaustive import ExhaustiveSearch

        with obs.trace(
            "search.run", driver="branch-bound", mode="scalar-fallback",
            objective=self.objective,
        ):
            result = ExhaustiveSearch(
                self.mapspace,
                self.evaluator,
                objective=self.objective,
                limit=self.limit if self.limit is not None else 1_000_000_000,
                use_batch=False,
            ).run()
        result.stats["bnb"] = _bnb_stats()
        return result

    # -- the tree walk ---------------------------------------------------

    def _run_tree(self, engine) -> SearchResult:
        from repro.model.batch import PRUNE_MARGIN, PartialBoundEngine

        mapspace = self.mapspace
        menus = mapspace.dim_chain_menus()
        menu_by_dim = dict(menus)
        bound_engine = PartialBoundEngine(engine, menus)
        # Branch the widest menus first: that is where bounds can cut the
        # largest subtrees, and it keeps the frontier small. Ties break on
        # workload dim order, so the trajectory is fully deterministic.
        dims_order: List[Tuple[str, Tuple]] = sorted(
            menus, key=lambda pair: (-len(pair[1]), pair[0])
        )
        num_dims = len(dims_order)
        # suffix_product[k] = candidates (pre-fanout-filter) below depth k.
        suffix_product = [1] * (num_dims + 1)
        for k in range(num_dims - 1, -1, -1):
            suffix_product[k] = suffix_product[k + 1] * len(dims_order[k][1])

        best: Optional[Evaluation] = None
        best_metric = float("inf")
        evaluations = 0
        num_valid = 0
        curve: List[ConvergencePoint] = []
        nodes_expanded = 0
        subtrees_pruned = 0
        infeasible_subtrees = 0
        warm_metric: Optional[float] = None

        def improve(metric: float, evaluation: Evaluation) -> None:
            nonlocal best, best_metric
            best = evaluation
            best_metric = metric
            curve.append(
                ConvergencePoint(evaluations=evaluations, best_metric=metric)
            )
            obs.inc("search.improvements", driver="branch-bound")
            obs.set_gauge("search.best_metric", metric, driver="branch-bound")

        # Leaf subtrees are buffered and flushed together so their rows
        # pack into shared full-width batches (a per-leaf iter_batches
        # call would emit mostly-empty batches and the per-batch kernel
        # overhead would swamp the pruning win). At flush time each leaf's
        # stored bound is re-checked against the incumbent — which usually
        # improved since the leaf was popped — and surviving leaves get a
        # dense per-completion bound sweep (suffix_bounds): complete
        # assignments are the tightest bounds the engine can state, and a
        # cell cut there is never even enumerated into a batch.
        leaf_buffer: List[Tuple[float, Tuple[int, ...]]] = []
        leaf_rows = 0
        flush_rows = FLUSH_ROWS_FACTOR * self.batch_size

        def flush_leaves(engine, bound_engine) -> None:
            nonlocal evaluations, num_valid, subtrees_pruned, leaf_rows
            import numpy as np

            from repro.model.batch import PRUNE_MARGIN

            if not leaf_buffer:
                return
            pinned: List[Dict[str, object]] = []
            for leaf_bound, leaf_indices in leaf_buffer:
                if (
                    best_metric != float("inf")
                    and leaf_bound * (1.0 - PRUNE_MARGIN) >= best_metric
                ):
                    subtrees_pruned += 1
                    obs.inc("search.subtrees_pruned", driver="branch-bound")
                    continue
                assigned = {
                    dims_order[i][0]: k for i, k in enumerate(leaf_indices)
                }
                if len(leaf_indices) == num_dims:
                    pinned.append(
                        {
                            dims_order[i][0]: dims_order[i][1][k]
                            for i, k in enumerate(leaf_indices)
                        }
                    )
                    continue
                cells = bound_engine.suffix_bounds(assigned, self.objective)
                free = [
                    dim
                    for dim in bound_engine.layout.dims
                    if dim not in assigned
                ]
                flat = cells.reshape(-1)
                if best_metric != float("inf"):
                    keep = np.flatnonzero(
                        flat * (1.0 - PRUNE_MARGIN) < best_metric
                    )
                    cut = flat.size - keep.size
                    if cut:
                        subtrees_pruned += cut
                        obs.inc(
                            "search.subtrees_pruned", cut,
                            driver="branch-bound",
                        )
                else:
                    keep = np.arange(flat.size)
                base = {
                    dims_order[i][0]: dims_order[i][1][k]
                    for i, k in enumerate(leaf_indices)
                }
                for flat_idx in keep:
                    cell = np.unravel_index(int(flat_idx), cells.shape)
                    full = dict(base)
                    for dim, idx in zip(free, cell):
                        full[dim] = menu_by_dim[dim][idx]
                    pinned.append(full)
            leaf_buffer.clear()
            leaf_rows = 0
            if not pinned:
                return
            with obs.trace("search.leaf_flush", subtrees=len(pinned)):
                for batch in self.mapspace.iter_prefix_batches(
                    pinned, batch_size=self.batch_size
                ):
                    if (
                        self.limit is not None
                        and evaluations + batch.size > self.limit
                    ):
                        raise SearchError(
                            f"branch-and-bound search exceeded limit of "
                            f"{self.limit} priced mappings"
                        )
                    outcome = engine.evaluate_batch(
                        batch,
                        objective=self.objective,
                        incumbent=best_metric,
                        prune=True,
                    )
                    obs.inc(
                        "search.candidates", batch.size, driver="branch-bound"
                    )
                    for i in range(batch.size):
                        evaluations += 1
                        if not outcome.valid[i]:
                            continue
                        num_valid += 1
                        if outcome.pruned[i]:
                            continue
                        metric = float(outcome.metric[i])
                        if metric < best_metric:
                            evaluation = outcome.evaluations.get(i)
                            if evaluation is None:
                                evaluation = self.evaluator.evaluate_fresh(
                                    batch.mapping_at(i)
                                )
                            improve(metric, evaluation)

        timer = SearchTimer(self.evaluator, driver="branch-bound")
        with timer, obs.trace(
            "search.run", driver="branch-bound", mode="batch",
            objective=self.objective,
        ):
            # Warm start: seed the incumbent so bounds bite immediately.
            if self.warm_samples:
                with obs.trace("search.warm_start", samples=self.warm_samples):
                    chain_sets = [
                        mapspace.sample_chains(self.rng)
                        for _ in range(self.warm_samples)
                    ]
                    mappings = [
                        mapspace.assemble(chains, rng=None)
                        for chains in chain_sets
                    ]
                    outcomes = engine.evaluate_mappings(
                        mappings, objective=self.objective, prune=False
                    )
                for mapping, outcome in zip(mappings, outcomes):
                    evaluations += 1
                    if not outcome.valid:
                        continue
                    num_valid += 1
                    if outcome.metric < best_metric:
                        evaluation = outcome.evaluation
                        if evaluation is None:
                            evaluation = self.evaluator.evaluate_fresh(mapping)
                        improve(outcome.metric, evaluation)
                warm_metric = best_metric if best is not None else None
                obs.inc("search.candidates", self.warm_samples,
                        driver="branch-bound")

            root_bound = bound_engine.bound({}, self.objective)
            # Heap entries: (bound, insertion counter, chain-index tuple
            # along dims_order). The counter makes ties deterministic.
            heap: List[Tuple[float, int, Tuple[int, ...]]] = [
                (root_bound, 0, ())
            ]
            counter = 1
            while heap:
                node_bound, _, indices = heapq.heappop(heap)
                if (
                    best_metric != float("inf")
                    and node_bound * (1.0 - PRUNE_MARGIN) >= best_metric
                ):
                    # Best-first: every remaining node's bound is at least
                    # this one, so the whole frontier is proved prunable.
                    pruned_now = 1 + len(heap)
                    subtrees_pruned += pruned_now
                    obs.inc("search.subtrees_pruned", pruned_now,
                            driver="branch-bound")
                    heap.clear()
                    break
                depth = len(indices)
                if depth == num_dims or suffix_product[depth] <= self.leaf_width:
                    leaf_buffer.append((node_bound, indices))
                    leaf_rows += suffix_product[depth]
                    if leaf_rows >= flush_rows:
                        flush_leaves(engine, bound_engine)
                    continue
                nodes_expanded += 1
                dim, menu = dims_order[depth]
                prefix = {
                    dims_order[i][0]: dims_order[i][1][k]
                    for i, k in enumerate(indices)
                }
                assigned = {
                    dims_order[i][0]: k for i, k in enumerate(indices)
                }
                # One vectorized call prices the whole menu of children —
                # per-child scalar bounds were the walk's hotspot.
                child_bounds = bound_engine.child_bounds(
                    assigned, dim, self.objective
                )
                for k, chain in enumerate(menu):
                    prefix[dim] = chain
                    if not mapspace.prefix_feasible(prefix):
                        # No completion fits the fanout caps; not a bound
                        # decision, so counted separately.
                        infeasible_subtrees += 1
                        continue
                    child_bound = float(child_bounds[k])
                    if (
                        best_metric != float("inf")
                        and child_bound * (1.0 - PRUNE_MARGIN) >= best_metric
                    ):
                        subtrees_pruned += 1
                        obs.inc("search.subtrees_pruned",
                                driver="branch-bound")
                        continue
                    heapq.heappush(
                        heap, (child_bound, counter, indices + (k,))
                    )
                    counter += 1

            # Leaves buffered after the last threshold flush (including
            # any left when the frontier drained) still need pricing; the
            # flush re-checks their bounds against the final incumbent.
            flush_leaves(engine, bound_engine)

            tightness = (
                root_bound / best_metric
                if best is not None and best_metric > 0
                else None
            )
            if tightness is not None:
                obs.set_gauge(
                    "search.bound_tightness", tightness, driver="branch-bound"
                )

        stats = timer.stats(evaluations, engine=engine)
        stats["bnb"] = _bnb_stats(
            nodes_expanded=nodes_expanded,
            subtrees_pruned=subtrees_pruned,
            infeasible_subtrees=infeasible_subtrees,
            root_bound=root_bound,
            bound_tightness=tightness,
            warm_start_metric=warm_metric,
        )
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="exhausted",
            curve=curve,
            stats=stats,
        )

def _bnb_stats(
    nodes_expanded: int = 0,
    subtrees_pruned: int = 0,
    infeasible_subtrees: int = 0,
    root_bound: Optional[float] = None,
    bound_tightness: Optional[float] = None,
    warm_start_metric: Optional[float] = None,
) -> Dict[str, object]:
    """The ``bnb`` stats sub-dict (uniform keys on every path)."""
    return {
        "nodes_expanded": nodes_expanded,
        "subtrees_pruned": subtrees_pruned,
        "infeasible_subtrees": infeasible_subtrees,
        "root_bound": root_bound,
        "bound_tightness": bound_tightness,
        "warm_start_metric": warm_start_metric,
    }


def branch_bound_search(
    mapspace: MapSpace,
    evaluator: Evaluator,
    objective: str = "edp",
    warm_samples: int = DEFAULT_WARM_SAMPLES,
    leaf_width: int = DEFAULT_LEAF_WIDTH,
    batch_size: int = 512,
    limit: Optional[int] = 10_000_000,
    seed: Optional[Union[int, random.Random]] = None,
    use_batch: bool = True,
) -> SearchResult:
    """One-shot functional wrapper around :class:`BranchBoundSearch`."""
    return BranchBoundSearch(
        mapspace,
        evaluator,
        objective=objective,
        warm_samples=warm_samples,
        leaf_width=leaf_width,
        batch_size=batch_size,
        limit=limit,
        seed=seed,
        use_batch=use_batch,
    ).run()

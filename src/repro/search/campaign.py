"""Fault-tolerant search campaigns: journal, timeouts, retry, resume.

The paper's headline figures come from long multi-start random-search
sweeps over whole workload zoos — exactly the runs that die halfway when
one worker hangs on a pathological mapping or the driver is killed. This
module runs a set of :class:`CampaignJob` s with:

* an **append-only JSONL journal** (:class:`repro.io.journal.Journal`) of
  terminal job records, fsynced per append, so an interrupted campaign
  resumes by skipping journaled entries and a SIGKILL costs at most the
  jobs that were in flight;
* **per-job wall-clock timeouts** enforced by running each job in its own
  worker process that the driver can reap, with bounded retry and
  exponential backoff;
* **quarantine**: a job that exhausts its retries becomes a structured
  failure record (`status: "quarantined"` with the last error payload)
  instead of aborting the sweep — ``InvalidMappingError`` /
  ``MapspaceError`` / ``SearchError`` from one layer never kills the
  campaign;
* a **fault-injection seam** (:class:`repro.utils.faults.FaultPlan`)
  shipped into the workers so hangs, exceptions, and hard crashes can be
  scheduled deterministically in tests.

Execution degrades gracefully: ``fork`` is tried first, then ``spawn``,
then an inline (same-process) mode that still retries and journals but
cannot enforce timeouts or survive crashes.

The experiment drivers (fig. 8–13) opt in through a
:func:`campaign_scope`; see :mod:`repro.experiments.common`.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.arch.spec import Architecture
from repro.exceptions import (
    CampaignError,
    EvaluationError,
    JobCrashError,
    JobTimeoutError,
    ReproError,
    SearchError,
)
from repro.io.journal import TERMINAL_STATUSES, Journal
from repro.obs import ProgressTracker
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapspaceKind
from repro.problem.workload import Workload
from repro.utils.faults import FaultPlan

logger = logging.getLogger(__name__)

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.5
DEFAULT_BACKOFF_FACTOR = 2.0
_POLL_INTERVAL_S = 0.02
_REAP_GRACE_S = 2.0


# ------------------------------------------------------------------- jobs


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: a multi-seed search of one mapspace.

    Everything here must be picklable — jobs ship whole into worker
    processes under both ``fork`` and ``spawn``.
    """

    job_id: str
    arch: Architecture
    workload: Workload
    kind: str = "ruby-s"
    objective: str = "edp"
    max_evaluations: int = 2_000
    patience: Optional[int] = None
    seeds: Tuple[int, ...] = (1, 2, 3)
    constraints: Optional[ConstraintSet] = None


@dataclass
class JobOutcome:
    """Terminal state of one job (fresh or replayed from the journal)."""

    job_id: str
    status: str  # "ok" | "quarantined"
    attempts: int = 1
    elapsed_s: float = 0.0
    from_journal: bool = False
    metrics: Optional[Dict[str, Any]] = None
    mapping: Optional[Dict[str, Any]] = None
    num_evaluated: int = 0
    num_valid: int = 0
    error: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self, job: Optional[CampaignJob] = None) -> Dict[str, Any]:
        """The journal form of this outcome."""
        data: Dict[str, Any] = {
            "kind": "job",
            "job_id": self.job_id,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if job is not None:
            data["arch"] = job.arch.name
            data["workload"] = job.workload.name
            data["mapspace"] = job.kind
        if self.status == "ok":
            data["metrics"] = self.metrics
            data["mapping"] = self.mapping
            data["num_evaluated"] = self.num_evaluated
            data["num_valid"] = self.num_valid
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "JobOutcome":
        return cls(
            job_id=record["job_id"],
            status=record["status"],
            attempts=record.get("attempts", 1),
            elapsed_s=record.get("elapsed_s", 0.0),
            from_journal=True,
            metrics=record.get("metrics"),
            mapping=record.get("mapping"),
            num_evaluated=record.get("num_evaluated", 0),
            num_valid=record.get("num_valid", 0),
            error=record.get("error"),
        )


@dataclass
class CampaignResult:
    """All terminal outcomes of a campaign run, in job order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    journal_path: Optional[str] = None
    pool_mode: str = "inline"
    complete: bool = True

    def by_id(self) -> Dict[str, JobOutcome]:
        return {outcome.job_id: outcome for outcome in self.outcomes}

    @property
    def num_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def num_quarantined(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "quarantined")

    @property
    def num_resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.from_journal)

    def best_edp(self) -> Dict[str, float]:
        """Per-job best EDP of the completed jobs (parity checks)."""
        return {
            o.job_id: o.metrics["edp"]
            for o in self.outcomes
            if o.ok and o.metrics is not None
        }


# ------------------------------------------------------- worker execution


def _execute_job(job: CampaignJob) -> Dict[str, Any]:
    """Run one job's multi-seed search; returns the journal payload.

    Imported lazily so this module never participates in the
    ``repro.search`` ↔ ``repro.core`` import cycle.
    """
    from repro.core.mapper import find_best_mapping
    from repro.io.serde import mapping_to_dict

    best = None
    num_evaluated = 0
    num_valid = 0
    for seed in job.seeds:
        result = find_best_mapping(
            job.arch,
            job.workload,
            kind=job.kind,
            objective=job.objective,
            seed=seed,
            max_evaluations=job.max_evaluations,
            patience=job.patience,
            constraints=job.constraints,
        )
        num_evaluated += result.num_evaluated
        num_valid += result.num_valid
        if result.best is None:
            continue
        if best is None or result.best.metric(job.objective) < best.metric(
            job.objective
        ):
            best = result.best
    if best is None:
        raise SearchError(
            f"no valid {MapspaceKind(job.kind).value} mapping found for "
            f"{job.workload.name} on {job.arch.name}"
        )
    return {
        "metrics": {
            "edp": best.edp,
            "energy_pj": best.energy_pj,
            "cycles": best.cycles,
            "utilization": best.utilization,
        },
        "mapping": mapping_to_dict(best.mapping),
        "num_evaluated": num_evaluated,
        "num_valid": num_valid,
    }


def _run_job_guarded(
    job: CampaignJob, attempt: int, fault_plan: Optional[FaultPlan]
) -> Tuple[str, Dict[str, Any]]:
    """Execute one job attempt, mapping every failure to a payload.

    This is the graceful-degradation choke point: a ``ReproError`` from
    any layer (invalid mapping, unbuildable mapspace, fruitless search)
    comes back as a structured ``("error", payload)`` — never an
    exception that could abort the campaign.
    """
    try:
        if fault_plan is not None:
            fault_plan.inject(job.job_id, attempt)
        return "ok", _execute_job(job)
    except ReproError as error:
        return "error", error.payload()
    except Exception as error:  # model blowups become EvaluationError
        wrapped = EvaluationError(
            f"job {job.job_id!r} failed: {type(error).__name__}: {error}"
        )
        return "error", wrapped.payload()


def _job_entry(job: CampaignJob, attempt: int, fault_plan, conn) -> None:
    """Worker-process entry point: run one attempt, report through the pipe."""
    try:
        conn.send(_run_job_guarded(job, attempt, fault_plan))
    finally:
        conn.close()


def _pick_context(start_method: Optional[str]):
    """Choose a multiprocessing context (fork, then spawn) or inline mode."""
    from repro.search.worker_pool import spawn_usable

    methods = (start_method,) if start_method else ("fork", "spawn")
    for method in methods:
        if method == "spawn" and not spawn_usable():
            logger.warning("campaign: spawn skipped (__main__ not importable)")
            continue
        try:
            import multiprocessing

            return multiprocessing.get_context(method), method
        except (ImportError, ValueError) as error:
            logger.debug("campaign: start method %r unavailable: %s", method, error)
    logger.warning(
        "campaign: no multiprocessing start method usable; running inline "
        "(per-job timeouts and crash isolation are disabled)"
    )
    return None, "inline"


# ------------------------------------------------------------- the runner


@dataclass
class _Pending:
    job: CampaignJob
    attempt: int = 0
    eligible_at: float = 0.0
    started_first: Optional[float] = None  # across attempts


@dataclass
class _Running:
    job: CampaignJob
    attempt: int
    proc: Any
    conn: Any
    started: float
    started_first: float
    deadline: Optional[float]


def run_campaign(
    jobs: Sequence[CampaignJob],
    journal_path: Optional[Union[str, Path]] = None,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
    fault_plan: Optional[FaultPlan] = None,
    resume: bool = True,
    retry_quarantined: bool = False,
    start_method: Optional[str] = None,
    max_jobs: Optional[int] = None,
    header_config: Optional[Dict[str, Any]] = None,
    heartbeats: bool = True,
) -> CampaignResult:
    """Run ``jobs`` with journaling, per-job timeouts, retry, and quarantine.

    Args:
        jobs: the work list; ids must be unique (they key the journal).
        journal_path: append-only JSONL journal. ``None`` disables
            persistence (no resume) but keeps timeout/retry semantics.
        workers: jobs in flight simultaneously (each in its own process).
        timeout_s: per-attempt wall-clock budget; ``None`` means no limit.
        retries: failed attempts retried this many times before the job is
            quarantined (so a job runs at most ``retries + 1`` times).
        backoff_s / backoff_factor: attempt ``n`` (0-based) re-queues
            after ``backoff_s * backoff_factor**n`` seconds.
        fault_plan: deterministic fault schedule for tests.
        resume: skip jobs that already have a terminal journal record.
        retry_quarantined: treat journaled quarantines as pending again.
        start_method: force "fork" or "spawn"; default tries both, then
            degrades to inline execution (no timeout enforcement).
        max_jobs: stop launching new work after this many *fresh* terminal
            outcomes (interruption simulation / chunked execution); the
            result's ``complete`` flag reports whether work remains.
        header_config: when given, a ``kind: "campaign"`` header carrying
            this config is appended (marked ``resumed`` on a non-empty
            journal) — the batch CLI uses it so ``campaign resume`` can
            rebuild the job list from the journal alone.
        heartbeats: append ``kind: "heartbeat"`` lifecycle records
            (start/retry/timeout/ok/quarantine, one per event) to the
            journal so ``campaign_status`` / ``repro campaign status``
            can report live per-job progress while the run is in flight.

    Every journal record carries both ``time`` (wall clock, for humans)
    and ``monotonic_s`` (``time.monotonic()``, for durations): deltas
    between monotonic stamps written by the same driver process are
    immune to NTP steps and suspend/resume wall-clock jumps.

    Returns:
        A :class:`CampaignResult` with one terminal outcome per processed
        job, in the order jobs were given.
    """
    if workers < 1:
        raise CampaignError("workers must be >= 1")
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise CampaignError(f"duplicate job ids: {dupes}")

    journal = Journal(journal_path) if journal_path is not None else None
    replayed: Dict[str, JobOutcome] = {}
    if journal is not None:
        existing = journal.terminal_jobs() if resume else {}
        had_records = journal.exists() and bool(journal.read())
        if header_config is not None or not had_records:
            header: Dict[str, Any] = {
                "kind": "campaign",
                "config": header_config or {},
                "jobs": ids,
                "time": time.time(),
                "monotonic_s": time.monotonic(),
            }
            if had_records:
                header["resumed"] = True
            journal.append(header)
        for job_id, record in existing.items():
            if record["status"] == "quarantined" and retry_quarantined:
                continue
            replayed[job_id] = JobOutcome.from_record(record)

    pending: Deque[_Pending] = deque(
        _Pending(job=job) for job in jobs if job.job_id not in replayed
    )
    context, pool_mode = (None, "inline")
    if pending:
        context, pool_mode = _pick_context(start_method)
        if context is None and timeout_s is not None:
            logger.warning(
                "campaign: timeout_s=%s cannot be enforced in inline mode",
                timeout_s,
            )

    fresh: Dict[str, JobOutcome] = {}
    running: Dict[str, _Running] = {}
    budget_left = max_jobs if max_jobs is not None else None

    # One unit per job; journal-replayed jobs count as already done, so a
    # resumed campaign starts at the fraction it previously reached.
    tracker = ProgressTracker(driver="campaign", total_units=len(jobs))
    if replayed:
        tracker.advance(len(replayed))

    def beat(event: str, job_id: str, attempt: int) -> None:
        """Record one lifecycle event: registry counter + journal record."""
        obs.inc("campaign.events", event=event)
        if journal is None or not heartbeats:
            return
        journal.append(
            {
                "kind": "heartbeat",
                "event": event,
                "job_id": job_id,
                "attempt": attempt,
                "time": time.time(),
                "monotonic_s": time.monotonic(),
            }
        )

    def finish(
        pend_or_run, status: str, attempt: int, payload: Dict[str, Any]
    ) -> None:
        nonlocal budget_left
        job = pend_or_run.job
        now = time.monotonic()
        elapsed = now - (pend_or_run.started_first or now)
        outcome = JobOutcome(
            job_id=job.job_id,
            status=status,
            attempts=attempt + 1,
            elapsed_s=elapsed,
        )
        if status == "ok":
            outcome.metrics = payload["metrics"]
            outcome.mapping = payload["mapping"]
            outcome.num_evaluated = payload["num_evaluated"]
            outcome.num_valid = payload["num_valid"]
        else:
            outcome.error = payload
        beat("ok" if status == "ok" else "quarantine", job.job_id, attempt)
        if journal is not None:
            record = outcome.record(job)
            record["time"] = time.time()
            record["monotonic_s"] = time.monotonic()
            journal.append(record)
        fresh[job.job_id] = outcome
        tracker.advance(1)
        if budget_left is not None:
            budget_left -= 1

    def fail_attempt(job: CampaignJob, attempt: int, payload: Dict[str, Any],
                     started_first: float) -> None:
        """Journal a failed attempt; re-queue with backoff or quarantine."""
        if journal is not None:
            journal.append(
                {
                    "kind": "attempt",
                    "job_id": job.job_id,
                    "attempt": attempt,
                    "error": payload,
                    "time": time.time(),
                    "monotonic_s": time.monotonic(),
                }
            )
        if attempt < retries:
            beat("retry", job.job_id, attempt)
            delay = backoff_s * (backoff_factor ** attempt)
            logger.info(
                "campaign: job %r attempt %d failed (%s); retrying in %.2fs",
                job.job_id, attempt, payload.get("type"), delay,
            )
            pending.append(
                _Pending(
                    job=job,
                    attempt=attempt + 1,
                    eligible_at=time.monotonic() + delay,
                    started_first=started_first,
                )
            )
        else:
            logger.warning(
                "campaign: job %r quarantined after %d attempts (%s)",
                job.job_id, attempt + 1, payload.get("type"),
            )
            holder = _Pending(job=job, started_first=started_first)
            finish(holder, "quarantined", attempt, payload)

    def reap(run: _Running) -> None:
        run.proc.terminate()
        run.proc.join(_REAP_GRACE_S)
        if run.proc.is_alive():
            run.proc.kill()
            run.proc.join()

    try:
        while pending or running:
            now = time.monotonic()
            progressed = False

            # Launch eligible pending jobs into free slots.
            eligible = [p for p in pending if p.eligible_at <= now]
            while (
                eligible
                and len(running) < workers
                and (budget_left is None or budget_left > 0)
            ):
                item = eligible.pop(0)
                pending.remove(item)
                started = time.monotonic()
                started_first = (
                    item.started_first if item.started_first is not None else started
                )
                beat("start", item.job.job_id, item.attempt)
                if context is None:
                    # Inline mode: synchronous, no timeout enforcement.
                    status, payload = _run_job_guarded(
                        item.job, item.attempt, fault_plan
                    )
                    if status == "ok":
                        holder = _Pending(
                            job=item.job, started_first=started_first
                        )
                        finish(holder, "ok", item.attempt, payload)
                    else:
                        fail_attempt(
                            item.job, item.attempt, payload, started_first
                        )
                    progressed = True
                    continue
                parent_conn, child_conn = context.Pipe(duplex=False)
                proc = context.Process(
                    target=_job_entry,
                    args=(item.job, item.attempt, fault_plan, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                running[item.job.job_id] = _Running(
                    job=item.job,
                    attempt=item.attempt,
                    proc=proc,
                    conn=parent_conn,
                    started=started,
                    started_first=started_first,
                    deadline=(started + timeout_s) if timeout_s else None,
                )
                progressed = True

            # Poll running jobs for completion, crash, or timeout.
            now = time.monotonic()
            for job_id, run in list(running.items()):
                if not run.proc.is_alive():
                    run.proc.join()
                    # A crashed worker's pipe reports readable at EOF, so
                    # poll() alone cannot distinguish "sent a result" from
                    # "died mid-write": treat EOF/short reads as a crash.
                    try:
                        message = run.conn.recv() if run.conn.poll() else None
                    except (EOFError, OSError):
                        message = None
                    run.conn.close()
                    del running[job_id]
                    progressed = True
                    if message is None:
                        crash = JobCrashError(
                            job_id, run.proc.exitcode, run.attempt
                        )
                        fail_attempt(
                            run.job, run.attempt, crash.payload(),
                            run.started_first,
                        )
                    else:
                        status, payload = message
                        if status == "ok":
                            holder = _Pending(
                                job=run.job, started_first=run.started_first
                            )
                            finish(holder, "ok", run.attempt, payload)
                        else:
                            fail_attempt(
                                run.job, run.attempt, payload,
                                run.started_first,
                            )
                elif run.deadline is not None and now >= run.deadline:
                    reap(run)
                    run.conn.close()
                    del running[job_id]
                    progressed = True
                    beat("timeout", job_id, run.attempt)
                    timeout = JobTimeoutError(job_id, timeout_s, run.attempt)
                    fail_attempt(
                        run.job, run.attempt, timeout.payload(),
                        run.started_first,
                    )

            # Out of budget with nothing in flight: stop early.
            if budget_left is not None and budget_left <= 0 and not running:
                break
            if not progressed:
                time.sleep(_POLL_INTERVAL_S)
    finally:
        for run in running.values():
            reap(run)
            run.conn.close()

    outcomes: List[JobOutcome] = []
    for job in jobs:
        outcome = replayed.get(job.job_id) or fresh.get(job.job_id)
        if outcome is not None:
            outcomes.append(outcome)
    complete = len(outcomes) == len(jobs)
    if complete:
        # Early-stopped runs (max_jobs) keep their honest fraction.
        tracker.finish()
    return CampaignResult(
        outcomes=outcomes,
        journal_path=str(journal_path) if journal_path is not None else None,
        pool_mode=pool_mode,
        complete=complete,
    )


# ------------------------------------------------------------------ status


class CampaignStatusTracker:
    """Incremental campaign-status folder for live followers.

    Holds the folded state (expected jobs, attempt counts, terminal
    records, heartbeat counters) plus the journal byte offset already
    consumed. Each :meth:`poll` reads only the records appended since
    the previous poll (via :meth:`~repro.io.journal.Journal.read_incremental`,
    which tolerates a torn trailing line by leaving it for the next
    poll) and returns the same summary dict :func:`campaign_status`
    produces — so ``campaign status --follow`` costs O(new records) per
    tick instead of re-reading the whole journal.
    """

    def __init__(self, journal_path: Union[str, Path]) -> None:
        self.journal_path = journal_path
        self._journal = Journal(journal_path)
        self._offset = 0
        self._expected: List[str] = []
        self._attempts: Dict[str, int] = {}
        self._terminal: Dict[str, Dict[str, Any]] = {}
        self._counters: Dict[str, Dict[str, int]] = {}
        self._config: Dict[str, Any] = {}
        self._seen_any = False

    def poll(self) -> Dict[str, Any]:
        """Fold any new journal records and return the current summary."""
        if not self._journal.exists():
            raise CampaignError(f"no journal at {self.journal_path}")
        records, self._offset = self._journal.read_incremental(self._offset)
        for record in records:
            self._fold(record)
            self._seen_any = True
        if not self._seen_any:
            raise CampaignError(f"journal {self.journal_path} is empty")
        return self._summary()

    def _fold(self, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "campaign":
            self._config = record.get("config", self._config) or self._config
            for job_id in record.get("jobs", ()):
                if job_id not in self._expected:
                    self._expected.append(job_id)
        elif kind == "attempt":
            job_id = record["job_id"]
            self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
            if job_id not in self._expected:
                self._expected.append(job_id)
        elif kind == "heartbeat":
            job_id = record["job_id"]
            event = record.get("event", "unknown")
            per_job = self._counters.setdefault(job_id, {})
            per_job[event] = per_job.get(event, 0) + 1
            if job_id not in self._expected:
                self._expected.append(job_id)
        elif kind == "job":
            job_id = record["job_id"]
            if record.get("status") in TERMINAL_STATUSES:
                self._terminal[job_id] = record
            if job_id not in self._expected:
                self._expected.append(job_id)

    def _summary(self) -> Dict[str, Any]:
        ok = sorted(
            j for j, r in self._terminal.items() if r["status"] == "ok"
        )
        quarantined = sorted(
            j
            for j, r in self._terminal.items()
            if r["status"] == "quarantined"
        )
        pendings = [j for j in self._expected if j not in self._terminal]
        # Every started attempt eventually lands either a failed-attempt
        # record or a terminal record; a surplus of starts means an
        # attempt is in flight at the journal's tail.
        running = [
            j
            for j in pendings
            if self._counters.get(j, {}).get("start", 0)
            > self._attempts.get(j, 0)
        ]
        return {
            "journal": str(self.journal_path),
            "config": self._config,
            "total": len(self._expected),
            "ok": ok,
            "quarantined": quarantined,
            "pending": pendings,
            "running": running,
            "failed_attempts": dict(self._attempts),
            "counters": {
                job_id: dict(events)
                for job_id, events in self._counters.items()
            },
            "complete": not pendings,
        }


def campaign_status(journal_path: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a campaign journal: done / quarantined / pending / attempts.

    Derives the expected job set from the union of all header records'
    job lists (scoped experiment runs may append several) plus every job
    id that shows up in an attempt, heartbeat, or terminal record.

    Heartbeat records (when the campaign ran with ``heartbeats=True``)
    additionally yield per-job lifecycle ``counters`` (start / retry /
    timeout / ok / quarantine events) and a ``running`` list: jobs whose
    latest started attempt has neither failed nor reached a terminal
    record yet — i.e. what is in flight *right now* while the journal is
    still being written.

    One-shot wrapper over :class:`CampaignStatusTracker`; followers that
    poll repeatedly should hold a tracker instead so each poll reads
    only the journal's new tail.
    """
    return CampaignStatusTracker(journal_path).poll()


# ------------------------------------------- experiment-driver integration


@dataclass
class CampaignConfig:
    """Fault-tolerance settings the experiment drivers thread through.

    Passing one of these to ``run_fig8`` … ``run_fig13`` (or entering a
    :func:`campaign_scope`) makes every per-layer search inside run as a
    journaled campaign job with timeout/retry/quarantine semantics.
    """

    journal: Union[str, Path]
    timeout_s: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    backoff_s: float = DEFAULT_BACKOFF_S
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR
    start_method: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    retry_quarantined: bool = False
    heartbeats: bool = True


_ACTIVE_CONFIG: Optional[CampaignConfig] = None


def active_campaign() -> Optional[CampaignConfig]:
    """The campaign config installed by the innermost :func:`campaign_scope`."""
    return _ACTIVE_CONFIG


@contextmanager
def campaign_scope(config: Optional[CampaignConfig]) -> Iterator[None]:
    """Install ``config`` as the ambient campaign for nested searches.

    ``None`` is a no-op scope, so drivers can wrap their bodies
    unconditionally: ``with campaign_scope(campaign): ...``.
    """
    global _ACTIVE_CONFIG
    previous = _ACTIVE_CONFIG
    if config is not None:
        _ACTIVE_CONFIG = config
    try:
        yield
    finally:
        _ACTIVE_CONFIG = previous


def run_job_under_scope(config: CampaignConfig, job: CampaignJob):
    """Run one scoped job and return its best :class:`Evaluation`.

    The job executes (or replays from the journal) under the scope's
    timeout/retry settings. A quarantined job raises
    :class:`CampaignError` — an experiment cannot compute its figure with
    a layer missing — but the journal keeps every other job's result, so
    a rerun resumes instead of starting over.
    """
    result = run_campaign(
        [job],
        journal_path=config.journal,
        workers=1,
        timeout_s=config.timeout_s,
        retries=config.retries,
        backoff_s=config.backoff_s,
        backoff_factor=config.backoff_factor,
        fault_plan=config.fault_plan,
        resume=True,
        retry_quarantined=config.retry_quarantined,
        start_method=config.start_method,
        heartbeats=config.heartbeats,
    )
    outcome = result.outcomes[0]
    if not outcome.ok:
        raise CampaignError(
            f"job {job.job_id!r} quarantined after {outcome.attempts} "
            f"attempts: {outcome.error and outcome.error.get('message')}"
        )
    return evaluation_from_outcome(job, outcome)


def evaluation_from_outcome(job: CampaignJob, outcome: JobOutcome):
    """Rebuild the best Evaluation recorded for ``job``.

    The journal stores the winning mapping; re-evaluating it through the
    (deterministic) cost model reproduces the exact metrics the search
    found, so resumed campaigns are bit-identical to uninterrupted ones.
    """
    from repro.io.serde import mapping_from_dict
    from repro.model.evaluator import Evaluator

    if outcome.mapping is None:
        raise CampaignError(
            f"job {job.job_id!r}: journal record carries no mapping"
        )
    mapping = mapping_from_dict(outcome.mapping)
    evaluation = Evaluator(job.arch, job.workload).evaluate(mapping)
    if not evaluation.valid:
        raise CampaignError(
            f"job {job.job_id!r}: journaled mapping is invalid for "
            f"{job.workload.name} on {job.arch.name} — stale journal?"
        )
    return evaluation


def default_job_id(
    arch: Architecture,
    workload: Workload,
    kind: Union[str, MapspaceKind],
    objective: str,
    max_evaluations: int,
    patience: Optional[int],
    seeds: Sequence[int],
) -> str:
    """Deterministic job id for scoped experiment searches.

    Encodes every parameter that changes the search outcome, so two
    searches share a journal entry only when they would produce identical
    results.
    """
    seed_part = ",".join(str(seed) for seed in seeds)
    return (
        f"{arch.name}|{workload.name}|{MapspaceKind(kind).value}|{objective}"
        f"|me{max_evaluations}|pa{patience}|s{seed_part}"
    )

"""Multi-objective (energy vs delay) mapspace search.

EDP collapses the energy/latency trade-off to one number; architects often
want the whole frontier instead — e.g. the lowest-energy mapping that
meets a latency target. This search samples the mapspace and maintains the
set of non-dominated (energy, cycles) mappings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.utils.rng import make_rng


@dataclass
class ParetoSearchResult:
    """The non-dominated set found by :class:`ParetoSearch`.

    ``frontier`` is sorted by ascending energy (so descending-or-equal
    cycles); every entry is a valid evaluation no other entry dominates.
    ``stats`` carries the uniform searcher stats payload (wall time,
    evaluator counters, and the always-present ``batch`` sub-dict).
    """

    frontier: List[Evaluation] = field(default_factory=list)
    num_evaluated: int = 0
    num_valid: int = 0
    stats: Dict = field(default_factory=dict)

    def best_by(self, objective: str) -> Optional[Evaluation]:
        """Frontier entry minimizing one metric ('energy'/'delay'/'edp')."""
        if not self.frontier:
            return None
        return min(self.frontier, key=lambda e: e.metric(objective))

    def fastest_within_energy(self, energy_budget_pj: float) -> Optional[Evaluation]:
        """Lowest-cycle mapping not exceeding an energy budget."""
        candidates = [
            e for e in self.frontier if e.energy_pj <= energy_budget_pj
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.cycles)

    def leanest_within_latency(self, cycle_budget: int) -> Optional[Evaluation]:
        """Lowest-energy mapping not exceeding a cycle budget."""
        candidates = [e for e in self.frontier if e.cycles <= cycle_budget]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.energy_pj)


def _dominates_xy(
    a_energy: float, a_cycles: int, b_energy: float, b_cycles: int
) -> bool:
    return (
        a_energy <= b_energy
        and a_cycles <= b_cycles
        and (a_energy < b_energy or a_cycles < b_cycles)
    )


def _dominates(a: Evaluation, b: Evaluation) -> bool:
    return _dominates_xy(a.energy_pj, a.cycles, b.energy_pj, b.cycles)


class ParetoSearch:
    """Random sampling that keeps the (energy, cycles) Pareto set.

    Args:
        mapspace: where mappings come from.
        evaluator: prices each mapping.
        max_evaluations: sampling budget.
        seed: RNG seed or generator.
        use_batch: price sampled candidates in chunks through the
            vectorized :class:`~repro.model.batch.BatchEvaluator` when it
            supports the triple (bit-exact; scalar fallback otherwise).
            Sampling consumes the RNG stream one draw at a time and
            evaluation consumes none, so chunked pricing visits exactly
            the candidates the scalar path would.
        batch_size: candidates per chunk on the batch path.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        max_evaluations: int = 10_000,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
        batch_size: int = 512,
    ) -> None:
        if max_evaluations < 1:
            raise SearchError("max_evaluations must be >= 1")
        if batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.max_evaluations = max_evaluations
        self.rng = make_rng(seed)
        self.use_batch = use_batch
        self.batch_size = batch_size

    def _batch_engine(self):
        """The batch engine, or None when this search must run scalar."""
        if not self.use_batch:
            return None
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> ParetoSearchResult:
        result = ParetoSearchResult()
        timer = SearchTimer(
            self.evaluator, driver="pareto", total_units=self.max_evaluations
        )
        engine = self._batch_engine()
        with timer, obs.trace(
            "search.run", driver="pareto",
            mode="batch" if engine is not None else "scalar",
        ):
            if engine is not None:
                frontier = self._run_batched(engine, result, timer)
            else:
                frontier = self._run_scalar(result, timer)
            obs.inc("search.candidates", result.num_evaluated, driver="pareto")
        frontier.sort(key=lambda e: (e.energy_pj, e.cycles))
        result.frontier = frontier
        result.stats = timer.stats(result.num_evaluated, engine=engine)
        return result

    def _run_scalar(
        self, result: ParetoSearchResult, timer: SearchTimer
    ) -> List[Evaluation]:
        frontier: List[Evaluation] = []
        for _ in range(self.max_evaluations):
            mapping = self.mapspace.sample(self.rng)
            evaluation = self.evaluator.evaluate(mapping)
            result.num_evaluated += 1
            timer.progress.advance(1)
            if not evaluation.valid:
                continue
            result.num_valid += 1
            if self._admit(frontier, evaluation):
                # No scalar incumbent in a multi-objective search: the
                # convergence timeline records frontier growth instead.
                timer.progress.improved(float(len(frontier)))
        return frontier

    def _run_batched(
        self, engine, result: ParetoSearchResult, timer: SearchTimer
    ) -> List[Evaluation]:
        frontier: List[Evaluation] = []
        remaining = self.max_evaluations
        while remaining > 0:
            chunk_size = min(self.batch_size, remaining)
            mappings = [
                self.mapspace.sample(self.rng) for _ in range(chunk_size)
            ]
            outcomes = engine.evaluate_mappings(mappings, prune=False)
            result.num_evaluated += chunk_size
            timer.progress.advance(chunk_size)
            remaining -= chunk_size
            for mapping, outcome in zip(mappings, outcomes):
                if not outcome.valid:
                    continue
                result.num_valid += 1
                energy, cycles = outcome.energy_pj, outcome.cycles
                if any(
                    _dominates_xy(kept.energy_pj, kept.cycles, energy, cycles)
                    for kept in frontier
                ):
                    continue
                # Materialize the full Evaluation only for frontier
                # entrants — dominated candidates never leave the batch.
                evaluation = outcome.evaluation
                if evaluation is None:
                    evaluation = self.evaluator.evaluate_fresh(mapping)
                if self._admit(frontier, evaluation):
                    timer.progress.improved(float(len(frontier)))
        return frontier

    @staticmethod
    def _admit(
        frontier: List[Evaluation], evaluation: Evaluation
    ) -> bool:
        """Admit a non-dominated evaluation; True when the frontier grew."""
        if any(_dominates(kept, evaluation) for kept in frontier):
            return False
        frontier[:] = [
            kept for kept in frontier if not _dominates(evaluation, kept)
        ]
        frontier.append(evaluation)
        return True

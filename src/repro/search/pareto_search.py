"""Multi-objective (energy vs delay) mapspace search.

EDP collapses the energy/latency trade-off to one number; architects often
want the whole frontier instead — e.g. the lowest-energy mapping that
meets a latency target. This search samples the mapspace and maintains the
set of non-dominated (energy, cycles) mappings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.utils.rng import make_rng


@dataclass
class ParetoSearchResult:
    """The non-dominated set found by :class:`ParetoSearch`.

    ``frontier`` is sorted by ascending energy (so descending-or-equal
    cycles); every entry is a valid evaluation no other entry dominates.
    """

    frontier: List[Evaluation] = field(default_factory=list)
    num_evaluated: int = 0
    num_valid: int = 0

    def best_by(self, objective: str) -> Optional[Evaluation]:
        """Frontier entry minimizing one metric ('energy'/'delay'/'edp')."""
        if not self.frontier:
            return None
        return min(self.frontier, key=lambda e: e.metric(objective))

    def fastest_within_energy(self, energy_budget_pj: float) -> Optional[Evaluation]:
        """Lowest-cycle mapping not exceeding an energy budget."""
        candidates = [
            e for e in self.frontier if e.energy_pj <= energy_budget_pj
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.cycles)

    def leanest_within_latency(self, cycle_budget: int) -> Optional[Evaluation]:
        """Lowest-energy mapping not exceeding a cycle budget."""
        candidates = [e for e in self.frontier if e.cycles <= cycle_budget]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.energy_pj)


def _dominates(a: Evaluation, b: Evaluation) -> bool:
    return (
        a.energy_pj <= b.energy_pj
        and a.cycles <= b.cycles
        and (a.energy_pj < b.energy_pj or a.cycles < b.cycles)
    )


class ParetoSearch:
    """Random sampling that keeps the (energy, cycles) Pareto set.

    Args:
        mapspace: where mappings come from.
        evaluator: prices each mapping.
        max_evaluations: sampling budget.
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        max_evaluations: int = 10_000,
        seed: Optional[Union[int, random.Random]] = None,
    ) -> None:
        if max_evaluations < 1:
            raise SearchError("max_evaluations must be >= 1")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.max_evaluations = max_evaluations
        self.rng = make_rng(seed)

    def run(self) -> ParetoSearchResult:
        result = ParetoSearchResult()
        frontier: List[Evaluation] = []
        for _ in range(self.max_evaluations):
            mapping = self.mapspace.sample(self.rng)
            evaluation = self.evaluator.evaluate(mapping)
            result.num_evaluated += 1
            if not evaluation.valid:
                continue
            result.num_valid += 1
            if any(_dominates(kept, evaluation) for kept in frontier):
                continue
            frontier = [
                kept for kept in frontier if not _dominates(evaluation, kept)
            ]
            frontier.append(evaluation)
        frontier.sort(key=lambda e: (e.energy_pj, e.cycles))
        result.frontier = frontier
        return result

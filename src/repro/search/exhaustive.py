"""Exhaustive search for toy problems (complete mapspace sweeps)."""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult


class ExhaustiveSearch:
    """Evaluate every mapping of a mapspace, each exactly once.

    By default the sweep runs through the vectorized batch engine
    (:class:`~repro.model.batch.BatchEvaluator`): candidates are packed
    straight from the chain enumerator into columnar batches and priced in
    bulk, with admissible lower-bound pruning skipping the expensive
    traffic stage for candidates that provably cannot beat the incumbent.
    Results are bit-exact against the scalar path. The scalar loop is kept
    for permutation sweeps and NumPy-less environments.

    Args:
        mapspace: must be small enough to enumerate.
        evaluator: prices each mapping.
        objective: optimization metric name.
        permutations: also enumerate temporal loop orders (scalar path).
        limit: safety cap on enumerated mappings; exceeding it raises.
        use_batch: price candidates through the batch engine when it
            supports this (arch, workload, evaluator) triple.
        batch_size: candidates per packed batch.
        prune: enable lower-bound pruning on the batch path. Never changes
            the search outcome — only which candidates get fully priced.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        permutations: bool = False,
        limit: int = 1_000_000,
        use_batch: bool = True,
        batch_size: int = 512,
        prune: bool = True,
        batch_engine=None,
    ) -> None:
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.permutations = permutations
        self.limit = limit
        self.use_batch = use_batch
        self.batch_size = batch_size
        self.prune = prune
        self.batch_engine = batch_engine

    def _batch_engine(self):
        """The batch engine, or None when this sweep must run scalar."""
        if not self.use_batch or self.permutations:
            # Permutation sweeps leave the columnar grid (several temporal
            # loops per level per dim) — enumerate them scalar.
            return None
        if self.batch_engine is not None:
            # Injected shared engine (see RandomSearch._batch_engine).
            return (
                self.batch_engine
                if getattr(self.batch_engine, "supported", False)
                else None
            )
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        engine = self._batch_engine()
        if engine is not None:
            return self._run_batched(engine)
        return self._run_scalar()

    def _run_batched(self, engine) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        num_valid = 0
        evaluations = 0
        curve = []
        # Clamp so the limit check below always fires before a batch that
        # would push past the cap is priced (and bound batch memory).
        batch_size = max(1, min(self.batch_size, self.limit + 1))
        # Pre-filter menu product: cheap, and only an over-estimate —
        # finish() snaps the progress fraction to 1.0 at the end.
        timer = SearchTimer(
            self.evaluator,
            driver="exhaustive",
            total_units=self.mapspace.enumeration_upper_bound(),
        )
        with timer, obs.trace(
            "search.run", driver="exhaustive", mode="batch",
            objective=self.objective,
        ):
            for batch in self.mapspace.iter_batches(batch_size=batch_size):
                if evaluations + batch.size > self.limit:
                    raise SearchError(
                        f"exhaustive search exceeded limit of {self.limit} "
                        "mappings"
                    )
                with obs.trace("search.batch", size=batch.size):
                    outcome = engine.evaluate_batch(
                        batch,
                        objective=self.objective,
                        incumbent=best_metric,
                        prune=self.prune,
                    )
                obs.inc("search.candidates", batch.size, driver="exhaustive")
                timer.progress.advance(batch.size)
                for i in range(batch.size):
                    evaluations += 1
                    if not outcome.valid[i]:
                        continue
                    num_valid += 1
                    if outcome.pruned[i]:
                        continue  # provably no better than the incumbent
                    metric = float(outcome.metric[i])
                    if metric < best_metric:
                        evaluation = outcome.evaluations.get(i)
                        if evaluation is None:
                            evaluation = self.evaluator.evaluate_fresh(
                                batch.mapping_at(i)
                            )
                        best = evaluation
                        best_metric = metric
                        curve.append(
                            ConvergencePoint(
                                evaluations=evaluations, best_metric=metric
                            )
                        )
                        obs.inc("search.improvements", driver="exhaustive")
                        obs.set_gauge(
                            "search.best_metric", metric, driver="exhaustive"
                        )
                        timer.progress.improved(metric)
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="exhausted",
            curve=curve,
            stats=timer.stats(evaluations, engine=engine),
        )

    def _run_scalar(self) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        num_valid = 0
        evaluations = 0
        curve = []
        # Permutation sweeps multiply the space by per-level orderings the
        # menu product doesn't see — leave their total unknown rather than
        # report a fraction that sails past 1.0.
        timer = SearchTimer(
            self.evaluator,
            driver="exhaustive",
            total_units=(
                None
                if self.permutations
                else self.mapspace.enumeration_upper_bound()
            ),
        )
        with timer, obs.trace(
            "search.run", driver="exhaustive", mode="scalar",
            objective=self.objective,
        ):
            for mapping in self.mapspace.enumerate_mappings(
                permutations=self.permutations
            ):
                # No dedup: chain enumeration emits each candidate exactly
                # once (distinct chain combinations produce distinct cells,
                # hence distinct signatures), so a seen-set would only hide
                # a count mismatch against the batched path. The
                # enumeration-count-parity invariant checks this.
                evaluations += 1
                if evaluations > self.limit:
                    raise SearchError(
                        f"exhaustive search exceeded limit of {self.limit} "
                        "mappings"
                    )
                evaluation = self.evaluator.evaluate(mapping)
                timer.progress.advance(1)
                if not evaluation.valid:
                    continue
                num_valid += 1
                metric = evaluation.metric(self.objective)
                if metric < best_metric:
                    best = evaluation
                    best_metric = metric
                    curve.append(
                        ConvergencePoint(
                            evaluations=evaluations, best_metric=metric
                        )
                    )
                    obs.inc("search.improvements", driver="exhaustive")
                    obs.set_gauge(
                        "search.best_metric", metric, driver="exhaustive"
                    )
                    timer.progress.improved(metric)
            obs.inc("search.candidates", evaluations, driver="exhaustive")
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="exhausted",
            curve=curve,
            stats=timer.stats(evaluations),
        )


def exhaustive_search(
    mapspace: MapSpace,
    evaluator: Evaluator,
    objective: str = "edp",
    permutations: bool = False,
    limit: int = 1_000_000,
    use_batch: bool = True,
    batch_size: int = 512,
    prune: bool = True,
) -> SearchResult:
    """One-shot functional wrapper around :class:`ExhaustiveSearch`."""
    return ExhaustiveSearch(
        mapspace,
        evaluator,
        objective=objective,
        permutations=permutations,
        limit=limit,
        use_batch=use_batch,
        batch_size=batch_size,
        prune=prune,
    ).run()

"""Exhaustive search for toy problems (complete mapspace sweeps)."""

from __future__ import annotations

import time
from typing import Optional

from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.search.result import ConvergencePoint, SearchResult, throughput_stats


class ExhaustiveSearch:
    """Evaluate every mapping of a mapspace (deduplicated).

    Args:
        mapspace: must be small enough to enumerate.
        evaluator: prices each mapping.
        objective: optimization metric name.
        permutations: also enumerate temporal loop orders.
        limit: safety cap on enumerated mappings; exceeding it raises.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        permutations: bool = False,
        limit: int = 1_000_000,
    ) -> None:
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.permutations = permutations
        self.limit = limit

    def run(self) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        seen = set()
        num_valid = 0
        evaluations = 0
        curve = []
        cache = getattr(self.evaluator, "cache", None)
        cache_baseline = (cache.hits, cache.misses) if cache is not None else (0, 0)
        started = time.perf_counter()
        for mapping in self.mapspace.enumerate_mappings(
            permutations=self.permutations
        ):
            key = mapping.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            evaluations += 1
            if evaluations > self.limit:
                raise SearchError(
                    f"exhaustive search exceeded limit of {self.limit} mappings"
                )
            evaluation = self.evaluator.evaluate(mapping)
            if not evaluation.valid:
                continue
            num_valid += 1
            metric = evaluation.metric(self.objective)
            if metric < best_metric:
                best = evaluation
                best_metric = metric
                curve.append(
                    ConvergencePoint(evaluations=evaluations, best_metric=metric)
                )
        elapsed = time.perf_counter() - started
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by="exhausted",
            curve=curve,
            stats=throughput_stats(evaluations, elapsed, cache, cache_baseline),
        )


def exhaustive_search(
    mapspace: MapSpace,
    evaluator: Evaluator,
    objective: str = "edp",
    permutations: bool = False,
    limit: int = 1_000_000,
) -> SearchResult:
    """One-shot functional wrapper around :class:`ExhaustiveSearch`."""
    return ExhaustiveSearch(
        mapspace,
        evaluator,
        objective=objective,
        permutations=permutations,
        limit=limit,
    ).run()

"""Mapspace search strategies.

The paper deliberately uses only Timeloop's random-sampling search (with a
consecutive-non-improving termination criterion) so that mapping quality
differences are attributable to the *mapspace*, not the search heuristic.
We provide that search, an exhaustive search for toy studies, and a
GAMMA-style genetic search as an extension — the paper notes Ruby is
orthogonal to and composable with better search.
"""

from repro.search.result import ConvergencePoint, SearchResult
from repro.search.random_search import RandomSearch, random_search
from repro.search.exhaustive import ExhaustiveSearch, exhaustive_search
from repro.search.branch_bound import BranchBoundSearch, branch_bound_search
from repro.search.genetic import GeneticSearch
from repro.search.annealing import SimulatedAnnealing
from repro.search.pareto_search import ParetoSearch, ParetoSearchResult
from repro.search.campaign import (
    CampaignConfig,
    CampaignJob,
    CampaignResult,
    JobOutcome,
    campaign_scope,
    campaign_status,
    run_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignJob",
    "CampaignResult",
    "JobOutcome",
    "campaign_scope",
    "campaign_status",
    "run_campaign",
    "ConvergencePoint",
    "SearchResult",
    "RandomSearch",
    "random_search",
    "ExhaustiveSearch",
    "exhaustive_search",
    "BranchBoundSearch",
    "branch_bound_search",
    "GeneticSearch",
    "SimulatedAnnealing",
    "ParetoSearch",
    "ParetoSearchResult",
]

"""Timeloop-style random-sampling search.

Samples mappings uniformly from the mapspace, evaluates each, and keeps the
best. Termination mirrors Timeloop: stop after ``patience`` consecutive
*valid* mappings that fail to improve the objective (the paper uses 3000
across 24 threads), or after a hard evaluation budget.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro import obs
from repro.exceptions import SearchError
from repro.mapspace.generator import MapSpace
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import SearchTimer
from repro.search.result import ConvergencePoint, SearchResult
from repro.utils.rng import make_rng

#: The paper's per-thread termination criterion (Section IV-B): 3000
#: consecutive valid non-improving mappings. Shared by :class:`RandomSearch`
#: and :func:`~repro.search.parallel.parallel_random_search` so the
#: sequential and parallel drivers agree.
DEFAULT_PATIENCE = 3_000


class RandomSearch:
    """Random sampling with a consecutive-non-improving stop criterion.

    Args:
        mapspace: where mappings come from.
        evaluator: prices each mapping. Attach an
            :class:`~repro.model.eval_cache.EvaluationCache` to it to skip
            re-pricing duplicate draws; hit counters surface in
            ``SearchResult.stats``.
        objective: "edp" (the paper's default), "energy", or "delay".
        max_evaluations: hard budget on drawn mappings (valid or not).
        patience: stop after this many consecutive valid non-improving
            mappings; ``None`` disables the criterion. Defaults to the
            paper's 3000.
        seed: RNG seed or generator for reproducibility.
        use_batch: price candidates through the vectorized
            :class:`~repro.model.batch.BatchEvaluator` when it supports
            this (arch, workload, evaluator) triple. Draws, metrics,
            improvements, and termination are identical to the scalar
            loop (bit-exact engine + chunk sizes bounded by the remaining
            patience, so the RNG stream never runs ahead).
        batch_size: candidates priced per batch on the batch path.
    """

    def __init__(
        self,
        mapspace: MapSpace,
        evaluator: Evaluator,
        objective: str = "edp",
        max_evaluations: int = 10_000,
        patience: Optional[int] = DEFAULT_PATIENCE,
        seed: Optional[Union[int, random.Random]] = None,
        use_batch: bool = True,
        batch_size: int = 512,
        batch_engine=None,
    ) -> None:
        if max_evaluations < 1:
            raise SearchError("max_evaluations must be >= 1")
        if patience is not None and patience < 1:
            raise SearchError("patience must be >= 1 or None")
        self.mapspace = mapspace
        self.evaluator = evaluator
        self.objective = objective
        self.max_evaluations = max_evaluations
        self.patience = patience
        self.rng = make_rng(seed)
        self.use_batch = use_batch
        self.batch_size = batch_size
        self.batch_engine = batch_engine

    def _batch_engine(self):
        """The batch engine, or None when this search must run scalar."""
        if not self.use_batch:
            return None
        if self.batch_engine is not None:
            # An injected engine (the service's shared cross-job batching
            # layer) skips construction; it must match this mapspace's
            # layout, which the service guarantees by keying engines on
            # the same (arch, workload, kind, constraints) signature.
            return (
                self.batch_engine
                if getattr(self.batch_engine, "supported", False)
                else None
            )
        layout = self.mapspace.batch_layout()
        if layout is None:
            return None
        from repro.model.batch import BatchEvaluator

        engine = BatchEvaluator(self.evaluator, layout=layout)
        return engine if engine.supported else None

    def run(self) -> SearchResult:
        """Run the search to termination."""
        engine = self._batch_engine()
        if engine is not None:
            return self._run_batched(engine)
        return self._run_scalar()

    def _run_batched(self, engine) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        consecutive_non_improving = 0
        num_valid = 0
        evaluations = 0
        curve = []
        terminated_by = "budget"
        timer = SearchTimer(
            self.evaluator, driver="random", total_units=self.max_evaluations
        )
        with timer, obs.trace(
            "search.run", driver="random", mode="batch",
            objective=self.objective,
        ):
            while evaluations < self.max_evaluations:
                # A chunk never outruns the scalar loop's stopping point: it
                # is capped by both the remaining budget and the draws still
                # needed to exhaust patience, so a patience break can only
                # land on the chunk's last draw and the RNG stream stays
                # position-identical to the scalar path.
                room = self.max_evaluations - evaluations
                if self.patience is not None:
                    room = min(room, self.patience - consecutive_non_improving)
                chunk = max(1, min(self.batch_size, room))
                with obs.trace("search.batch", size=chunk):
                    mappings = [
                        self.mapspace.sample(self.rng) for _ in range(chunk)
                    ]
                    outcomes = engine.evaluate_mappings(
                        mappings,
                        objective=self.objective,
                        incumbent=best_metric,
                        prune=True,
                    )
                obs.inc("search.candidates", chunk, driver="random")
                timer.progress.advance(chunk)
                stop = False
                for mapping, outcome in zip(mappings, outcomes):
                    evaluations += 1
                    if not outcome.valid:
                        continue
                    num_valid += 1
                    if not outcome.pruned and outcome.metric < best_metric:
                        evaluation = outcome.evaluation
                        if evaluation is None:
                            evaluation = self.evaluator.evaluate_fresh(mapping)
                        best = evaluation
                        best_metric = outcome.metric
                        consecutive_non_improving = 0
                        curve.append(
                            ConvergencePoint(
                                evaluations=evaluations,
                                best_metric=outcome.metric,
                            )
                        )
                        obs.inc("search.improvements", driver="random")
                        obs.set_gauge(
                            "search.best_metric", outcome.metric,
                            driver="random",
                        )
                        timer.progress.improved(outcome.metric)
                    else:
                        consecutive_non_improving += 1
                        if (
                            self.patience is not None
                            and consecutive_non_improving >= self.patience
                        ):
                            terminated_by = "patience"
                            stop = True
                            break
                if stop:
                    break
        stats = timer.stats(evaluations, engine=engine)
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by=terminated_by,
            curve=curve,
            stats=stats,
        )

    def _run_scalar(self) -> SearchResult:
        best: Optional[Evaluation] = None
        best_metric = float("inf")
        consecutive_non_improving = 0
        num_valid = 0
        curve = []
        terminated_by = "budget"
        timer = SearchTimer(
            self.evaluator, driver="random", total_units=self.max_evaluations
        )
        with timer, obs.trace(
            "search.run", driver="random", mode="scalar",
            objective=self.objective,
        ):
            for evaluations in range(1, self.max_evaluations + 1):
                mapping = self.mapspace.sample(self.rng)
                evaluation = self.evaluator.evaluate(mapping)
                timer.progress.advance(1)
                if not evaluation.valid:
                    continue
                num_valid += 1
                metric = evaluation.metric(self.objective)
                if metric < best_metric:
                    best = evaluation
                    best_metric = metric
                    consecutive_non_improving = 0
                    curve.append(
                        ConvergencePoint(
                            evaluations=evaluations, best_metric=metric
                        )
                    )
                    obs.inc("search.improvements", driver="random")
                    obs.set_gauge(
                        "search.best_metric", metric, driver="random"
                    )
                    timer.progress.improved(metric)
                else:
                    consecutive_non_improving += 1
                    if (
                        self.patience is not None
                        and consecutive_non_improving >= self.patience
                    ):
                        terminated_by = "patience"
                        break
            else:
                evaluations = self.max_evaluations
            obs.inc("search.candidates", evaluations, driver="random")
        return SearchResult(
            best=best,
            objective=self.objective,
            num_evaluated=evaluations,
            num_valid=num_valid,
            terminated_by=terminated_by,
            curve=curve,
            stats=timer.stats(evaluations),
        )


def random_search(
    mapspace: MapSpace,
    evaluator: Evaluator,
    objective: str = "edp",
    max_evaluations: int = 10_000,
    patience: Optional[int] = DEFAULT_PATIENCE,
    seed: Optional[Union[int, random.Random]] = None,
    use_batch: bool = True,
    batch_size: int = 512,
) -> SearchResult:
    """One-shot functional wrapper around :class:`RandomSearch`."""
    return RandomSearch(
        mapspace,
        evaluator,
        objective=objective,
        max_evaluations=max_evaluations,
        patience=patience,
        seed=seed,
        use_batch=use_batch,
        batch_size=batch_size,
    ).run()

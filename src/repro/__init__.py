"""repro: Ruby — imperfect-factorization mapspaces for tensor accelerators.

A from-scratch Python reproduction of "Ruby: Improving Hardware Efficiency
for Tensor Algebra Accelerators Through Imperfect Factorization"
(ISPASS 2022), including the Timeloop-style mapping evaluation stack it
builds on: workload algebra, architecture specs, an Accelergy-like energy
model, mapspace generation (PFM / Ruby / Ruby-S / Ruby-T), an exact
remainder-aware analytical cost model, and search.

Quickstart::

    from repro import ConvLayer, eyeriss_like, find_best_mapping

    arch = eyeriss_like()
    layer = ConvLayer("conv", c=64, m=64, p=56, q=56, r=3, s=3)
    result = find_best_mapping(arch, layer.workload(), kind="ruby-s", seed=0)
    print(result.best.edp, result.best.utilization)
"""

from repro.arch import (
    Architecture,
    ComputeLevel,
    StorageLevel,
    eyeriss_like,
    simba_like,
    toy_glb_architecture,
    toy_linear_architecture,
)
from repro.core import (
    Mapper,
    MapperConfig,
    find_best_mapping,
    sweep_pe_arrays,
)
from repro.energy import (
    EnergyTable,
    estimate_area_mm2,
    estimate_energy_table,
)
from repro.mapping import (
    Loop,
    Mapping,
    is_valid_mapping,
    render_mapping,
)
from repro.mapspace import (
    ConstraintSet,
    MapSpace,
    MapspaceKind,
    count_mapspace_sizes,
    make_mapspace,
    pfm_mapspace,
    ruby_mapspace,
    ruby_s_mapspace,
    ruby_t_mapspace,
)
from repro.model import Evaluation, Evaluator
from repro.problem import (
    ConvLayer,
    GemmLayer,
    TensorSpec,
    Workload,
    pad_dimension,
)
from repro.search import (
    ExhaustiveSearch,
    GeneticSearch,
    RandomSearch,
    SearchResult,
)

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "ComputeLevel",
    "StorageLevel",
    "eyeriss_like",
    "simba_like",
    "toy_glb_architecture",
    "toy_linear_architecture",
    "Mapper",
    "MapperConfig",
    "find_best_mapping",
    "sweep_pe_arrays",
    "EnergyTable",
    "estimate_area_mm2",
    "estimate_energy_table",
    "Loop",
    "Mapping",
    "is_valid_mapping",
    "render_mapping",
    "ConstraintSet",
    "MapSpace",
    "MapspaceKind",
    "count_mapspace_sizes",
    "make_mapspace",
    "pfm_mapspace",
    "ruby_mapspace",
    "ruby_s_mapspace",
    "ruby_t_mapspace",
    "Evaluation",
    "Evaluator",
    "ConvLayer",
    "GemmLayer",
    "TensorSpec",
    "Workload",
    "pad_dimension",
    "SearchResult",
    "RandomSearch",
    "ExhaustiveSearch",
    "GeneticSearch",
    "__version__",
]

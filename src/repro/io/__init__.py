"""Serialization: architectures, workloads, and mappings as JSON-able dicts.

Timeloop consumes YAML specs; this package provides the equivalent
interchange layer so architectures, workloads, and found mappings can be
saved, versioned, and re-evaluated without Python code.
"""

from repro.io.journal import Journal
from repro.io.serde import (
    architecture_from_dict,
    architecture_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
    write_text_atomic,
)

__all__ = [
    "architecture_from_dict",
    "architecture_to_dict",
    "mapping_from_dict",
    "mapping_to_dict",
    "workload_from_dict",
    "workload_to_dict",
    "load_json",
    "save_json",
    "write_text_atomic",
    "Journal",
]

"""Dict/JSON (de)serialization for the core spec objects.

The dict schemas are stable and versioned (``"schema": 1``); unknown
fields are rejected loudly so stale files fail fast instead of silently
evaluating the wrong design.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture
from repro.exceptions import SpecError
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.problem.tensor import ProjectionTerm, TensorSpec
from repro.problem.workload import Workload

SCHEMA_VERSION = 1


def _require(data: Dict[str, Any], kind: str) -> None:
    if data.get("schema") != SCHEMA_VERSION:
        raise SpecError(
            f"{kind}: expected schema {SCHEMA_VERSION}, got {data.get('schema')!r}"
        )
    if data.get("kind") != kind:
        raise SpecError(f"expected kind {kind!r}, got {data.get('kind')!r}")


# ---------------------------------------------------------------- workload


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Serialize a workload (dims + tensor projections)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "workload",
        "name": workload.name,
        "dims": {dim: size for dim, size in workload.dims},
        "tensors": [
            {
                "name": tensor.name,
                "is_output": tensor.is_output,
                "bits_per_element": tensor.bits_per_element,
                "ranks": [
                    [
                        {"dim": term.dim, "coefficient": term.coefficient}
                        for term in rank
                    ]
                    for rank in tensor.ranks
                ],
            }
            for tensor in workload.tensors
        ],
    }


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Rebuild a workload serialized by :func:`workload_to_dict`."""
    _require(data, "workload")
    tensors = [
        TensorSpec(
            name=entry["name"],
            is_output=entry["is_output"],
            bits_per_element=entry["bits_per_element"],
            ranks=tuple(
                tuple(
                    ProjectionTerm(term["dim"], term["coefficient"])
                    for term in rank
                )
                for rank in entry["ranks"]
            ),
        )
        for entry in data["tensors"]
    ]
    return Workload.create(data["name"], data["dims"], tensors)


# ------------------------------------------------------------ architecture


def architecture_to_dict(arch: Architecture) -> Dict[str, Any]:
    """Serialize an architecture (levels, fanouts, capacities)."""
    levels: List[Dict[str, Any]] = []
    for level in arch.levels:
        levels.append(
            {
                "name": level.name,
                "capacity_words": level.capacity_words,
                "word_bits": level.word_bits,
                "keeps": sorted(level.keeps) if level.keeps is not None else None,
                "per_tensor_capacity": (
                    dict(level.per_tensor_capacity)
                    if level.per_tensor_capacity is not None
                    else None
                ),
                "fanout": level.fanout,
                "fanout_x": level.fanout_x,
                "fanout_y": level.fanout_y,
                "spatial_dims": (
                    sorted(level.spatial_dims)
                    if level.spatial_dims is not None
                    else None
                ),
                "bandwidth_words_per_cycle": level.bandwidth_words_per_cycle,
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "architecture",
        "name": arch.name,
        "levels": levels,
        "compute": {
            "name": arch.compute.name,
            "word_bits": arch.compute.word_bits,
            "ops_per_cycle": arch.compute.ops_per_cycle,
        },
        "mesh_x": arch.mesh_x,
        "mesh_y": arch.mesh_y,
    }


def architecture_from_dict(data: Dict[str, Any]) -> Architecture:
    """Rebuild an architecture serialized by :func:`architecture_to_dict`."""
    _require(data, "architecture")
    levels = tuple(
        StorageLevel.build(
            name=entry["name"],
            capacity_words=entry["capacity_words"],
            word_bits=entry["word_bits"],
            keeps=set(entry["keeps"]) if entry["keeps"] is not None else None,
            per_tensor_capacity=entry["per_tensor_capacity"],
            fanout=entry["fanout"],
            fanout_x=entry["fanout_x"],
            fanout_y=entry["fanout_y"],
            spatial_dims=(
                set(entry["spatial_dims"])
                if entry["spatial_dims"] is not None
                else None
            ),
            bandwidth_words_per_cycle=entry["bandwidth_words_per_cycle"],
        )
        for entry in data["levels"]
    )
    compute = ComputeLevel(
        name=data["compute"]["name"],
        word_bits=data["compute"]["word_bits"],
        ops_per_cycle=data["compute"]["ops_per_cycle"],
    )
    return Architecture(
        name=data["name"],
        levels=levels,
        compute=compute,
        mesh_x=data["mesh_x"],
        mesh_y=data["mesh_y"],
    )


# ------------------------------------------------------------------ mapping


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping (loop nests with remainders and axes)."""

    def loop_entry(loop: Loop) -> Dict[str, Any]:
        return {
            "dim": loop.dim,
            "bound": loop.bound,
            "remainder": loop.remainder,
            "axis": loop.axis,
        }

    return {
        "schema": SCHEMA_VERSION,
        "kind": "mapping",
        "bypass": sorted(list(pair) for pair in mapping.bypass),
        "levels": [
            {
                "level": nest.level_name,
                "temporal": [loop_entry(l) for l in nest.temporal],
                "spatial": [loop_entry(l) for l in nest.spatial],
            }
            for nest in mapping.levels
        ],
    }


def mapping_from_dict(data: Dict[str, Any]) -> Mapping:
    """Rebuild a mapping serialized by :func:`mapping_to_dict`."""
    _require(data, "mapping")
    nests = []
    for entry in data["levels"]:
        temporal = tuple(
            Loop(l["dim"], l["bound"], l["remainder"], spatial=False)
            for l in entry["temporal"]
        )
        spatial = tuple(
            Loop(l["dim"], l["bound"], l["remainder"], spatial=True, axis=l["axis"])
            for l in entry["spatial"]
        )
        nests.append(
            LevelNest(
                level_name=entry["level"], temporal=temporal, spatial=spatial
            )
        )
    bypass = frozenset(tuple(pair) for pair in data.get("bypass", ()))
    return Mapping(levels=tuple(nests), bypass=bypass)


# --------------------------------------------------------------- JSON files


def write_text_atomic(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The content goes to a temporary file in the *same directory* (so the
    final rename never crosses filesystems), is fsynced, and then renamed
    over the target with ``os.replace``. A crash at any point leaves
    either the old file or the new file — never a truncated hybrid.
    """
    target = Path(path)
    parent = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_json(obj: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a serialized spec to ``path`` (pretty-printed JSON).

    The write is atomic (temp file + ``os.replace``): a kill mid-write
    never leaves a truncated or corrupt results file behind.
    """
    write_text_atomic(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a serialized spec from ``path``."""
    return json.loads(Path(path).read_text())

"""Append-only JSONL journal for long-running campaigns.

One JSON record per line. Appends are flushed and fsynced so a completed
job's record survives a SIGKILL of the driver; reads tolerate a torn
trailing line (the one write that *was* in flight when the process died)
by dropping it, while corruption anywhere else fails loudly.

Record kinds used by :mod:`repro.search.campaign`:

* ``{"kind": "campaign", "config": {...}, "jobs": [...]}`` — written once
  at the start of a fresh campaign; re-appended with ``"resumed": true``
  on every resume so the file is its own audit trail.
* ``{"kind": "attempt", "job_id": ..., "attempt": n, "error": {...}}`` —
  one per failed attempt (timeout, crash, or recorded exception).
* ``{"kind": "heartbeat", "event": "start" | "retry" | "timeout" | "ok" |
  "quarantine", "job_id": ..., "attempt": n}`` — lifecycle breadcrumbs for
  live status tooling; never consulted by resume.
* ``{"kind": "job", "job_id": ..., "status": "ok" | "quarantined", ...}``
  — the terminal record; resume skips jobs that have one.

Timestamped records carry both ``time`` (wall clock) and ``monotonic_s``
(``time.monotonic()``); durations should be computed from the latter,
which is immune to wall-clock jumps within one driver process.

Span traces (:mod:`repro.obs.tracing`) reuse this framing — one JSON
object per line with a ``schema`` field, torn-tail-tolerant reads — but
stream through their own flushed (not fsynced) handle, since spans are
diagnostics rather than checkpoints.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import CampaignError

logger = logging.getLogger(__name__)

JOURNAL_SCHEMA = 1

#: Statuses that mean "this job needs no further work on resume".
TERMINAL_STATUSES = ("ok", "quarantined")


class Journal:
    """An append-only JSONL file of campaign records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        # In-process append serialization. Single appends are one
        # O_APPEND write each, but the mapper service shares one Journal
        # across worker threads, and interleaved open/write/fsync
        # sequences through one instance must not tear each other's
        # lines. Cross-process writers still rely on O_APPEND atomicity
        # of the single line write.
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record as a single fsynced JSON line.

        The line is written with one ``write`` call and fsynced before
        returning, so a driver killed right after :meth:`append` still
        leaves the record recoverable on disk. Appends through one
        :class:`Journal` instance are thread-safe.
        """
        record = dict(record)
        record.setdefault("schema", JOURNAL_SCHEMA)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def read(self) -> List[Dict[str, Any]]:
        """All records, oldest first; a torn trailing line is dropped.

        A line that fails to parse anywhere *except* the end of the file
        means real corruption and raises :class:`CampaignError` — silently
        skipping it could resurrect half a campaign's state.
        """
        if not self.exists():
            return []
        lines = self.path.read_text().splitlines()
        records: List[Dict[str, Any]] = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                if number == len(lines) - 1:
                    logger.warning(
                        "journal %s: dropping torn trailing line %d "
                        "(interrupted write)",
                        self.path,
                        number + 1,
                    )
                    break
                raise CampaignError(
                    f"journal {self.path}: corrupt record on line "
                    f"{number + 1}: {error}"
                ) from error
        return records

    def read_incremental(
        self, offset: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Records appended at or after byte ``offset``; returns
        ``(records, new_offset)``.

        Only complete (newline-terminated) lines are consumed: a torn
        trailing line — the one write in flight if the driver dies — is
        left unconsumed, so the *next* poll picks it up once the
        terminator lands. This is what live followers
        (``campaign status --follow``) use instead of re-reading the
        whole journal every poll. ``new_offset`` is the byte position
        after the last consumed line; pass it back on the next call.

        Appends are single fsynced writes, so a newline-terminated line
        that still fails to parse is real corruption, not a torn write,
        and raises :class:`CampaignError`.
        """
        if not self.exists():
            return [], offset
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
        records: List[Dict[str, Any]] = []
        consumed = 0
        while True:
            newline = data.find(b"\n", consumed)
            if newline < 0:
                break
            line = data[consumed:newline]
            consumed = newline + 1
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise CampaignError(
                    f"journal {self.path}: corrupt record at byte "
                    f"{offset + consumed - len(line) - 1}: {error}"
                ) from error
        return records, offset + consumed

    def terminal_jobs(self) -> Dict[str, Dict[str, Any]]:
        """Latest terminal (``kind == "job"``) record per job id."""
        terminal: Dict[str, Dict[str, Any]] = {}
        for record in self.read():
            if record.get("kind") != "job":
                continue
            if record.get("status") in TERMINAL_STATUSES:
                terminal[record["job_id"]] = record
        return terminal

    def header(self) -> Dict[str, Any]:
        """The most recent campaign header record (config + job list)."""
        headers = [r for r in self.read() if r.get("kind") == "campaign"]
        if not headers:
            raise CampaignError(
                f"journal {self.path}: no campaign header record"
            )
        return headers[-1]

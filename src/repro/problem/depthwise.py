"""Depthwise convolution workloads.

A depthwise conv applies one filter per channel: there is no output-channel
reduction (no M dim); the channel dim C indexes all three operands. This
shape family (MobileNet and friends) stresses mappers differently from
standard convs — with C relevant everywhere, channel tiling gives no
weight-vs-input reuse trade-off, and feature-map dims dominate the
parallelism options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import SpecError
from repro.problem.tensor import ProjectionTerm, TensorSpec, simple_tensor
from repro.problem.workload import Workload


@dataclass(frozen=True)
class DepthwiseConvLayer:
    """Shape of a depthwise convolution (output-size formulation)."""

    name: str
    n: int = 1
    c: int = 1
    p: int = 1
    q: int = 1
    r: int = 1
    s: int = 1
    stride_h: int = 1
    stride_w: int = 1

    def __post_init__(self) -> None:
        for field_name in ("n", "c", "p", "q", "r", "s", "stride_h", "stride_w"):
            value = getattr(self, field_name)
            if value < 1:
                raise SpecError(
                    f"depthwise layer {self.name}: {field_name}={value} must be >= 1"
                )

    @property
    def dim_sizes(self) -> Dict[str, int]:
        return {
            "N": self.n,
            "C": self.c,
            "P": self.p,
            "Q": self.q,
            "R": self.r,
            "S": self.s,
        }

    def workload(self) -> Workload:
        return depthwise_workload(self)


def depthwise_workload(layer: DepthwiseConvLayer) -> Workload:
    """Build the 6-loop depthwise convolution workload."""
    weights = simple_tensor("Weights", ("C", "R", "S"))
    inputs = TensorSpec(
        name="Inputs",
        ranks=(
            (ProjectionTerm("N", 1),),
            (ProjectionTerm("C", 1),),
            (ProjectionTerm("P", layer.stride_h), ProjectionTerm("R", 1)),
            (ProjectionTerm("Q", layer.stride_w), ProjectionTerm("S", 1)),
        ),
    )
    outputs = simple_tensor("Outputs", ("N", "C", "P", "Q"), is_output=True)
    return Workload.create(
        name=layer.name,
        dims=layer.dim_sizes,
        tensors=[weights, inputs, outputs],
    )

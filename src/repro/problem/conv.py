"""Convolution layers as workloads.

Uses the 7-dimensional CNN loopnest of the paper's Fig. 1:

* ``N`` — batch size
* ``C`` — input channels
* ``M`` — output channels
* ``P`` / ``Q`` — output feature-map height / width
* ``R`` / ``S`` — filter height / width

Operands: Weights ``[M, C, R, S]``, Inputs ``[N, C, H, W]`` with the
sliding-window projections ``H = stride_h*p + dilation_h*r`` (likewise W),
and Outputs ``[N, M, P, Q]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import SpecError
from repro.problem.tensor import ProjectionTerm, TensorSpec, simple_tensor
from repro.problem.workload import Workload

CONV_DIMS = ("N", "C", "M", "P", "Q", "R", "S")


@dataclass(frozen=True)
class ConvLayer:
    """Shape of a convolution layer (output-size formulation).

    ``P`` and ``Q`` are the *output* spatial sizes; the implied input sizes
    are ``H = (P-1)*stride_h + (R-1)*dilation_h + 1`` (and similarly ``W``),
    i.e. padding is assumed already folded into the shape, matching how
    Timeloop problem files specify convs.
    """

    name: str
    n: int = 1
    c: int = 1
    m: int = 1
    p: int = 1
    q: int = 1
    r: int = 1
    s: int = 1
    stride_h: int = 1
    stride_w: int = 1
    dilation_h: int = 1
    dilation_w: int = 1

    def __post_init__(self) -> None:
        for field_name in ("n", "c", "m", "p", "q", "r", "s"):
            value = getattr(self, field_name)
            if value < 1:
                raise SpecError(
                    f"conv layer {self.name}: {field_name}={value} must be >= 1"
                )
        for field_name in ("stride_h", "stride_w", "dilation_h", "dilation_w"):
            value = getattr(self, field_name)
            if value < 1:
                raise SpecError(
                    f"conv layer {self.name}: {field_name}={value} must be >= 1"
                )

    @property
    def input_height(self) -> int:
        return (self.p - 1) * self.stride_h + (self.r - 1) * self.dilation_h + 1

    @property
    def input_width(self) -> int:
        return (self.q - 1) * self.stride_w + (self.s - 1) * self.dilation_w + 1

    @property
    def dim_sizes(self) -> Dict[str, int]:
        return {
            "N": self.n,
            "C": self.c,
            "M": self.m,
            "P": self.p,
            "Q": self.q,
            "R": self.r,
            "S": self.s,
        }

    def workload(self) -> Workload:
        """Materialize this layer as a :class:`Workload`."""
        return conv_workload(self)


def conv_workload(layer: ConvLayer) -> Workload:
    """Build the 7-loop convolution workload for ``layer``."""
    weights = simple_tensor("Weights", ("M", "C", "R", "S"))
    inputs = TensorSpec(
        name="Inputs",
        ranks=(
            (ProjectionTerm("N", 1),),
            (ProjectionTerm("C", 1),),
            (ProjectionTerm("P", layer.stride_h), ProjectionTerm("R", layer.dilation_h)),
            (ProjectionTerm("Q", layer.stride_w), ProjectionTerm("S", layer.dilation_w)),
        ),
    )
    outputs = simple_tensor("Outputs", ("N", "M", "P", "Q"), is_output=True)
    return Workload.create(
        name=layer.name,
        dims=layer.dim_sizes,
        tensors=[weights, inputs, outputs],
    )


def depthwise_pointwise_equivalent(layer: ConvLayer) -> Workload:
    """Workload for a 1x1 (pointwise) convolution with the same C/M/P/Q.

    Pointwise layers are where the paper reports Ruby-S's largest ResNet-50
    wins (their dims are typically misaligned with the 14x12 array).
    """
    pointwise = ConvLayer(
        name=layer.name + "_pw",
        n=layer.n,
        c=layer.c,
        m=layer.m,
        p=layer.p,
        q=layer.q,
        r=1,
        s=1,
        stride_h=1,
        stride_w=1,
    )
    return conv_workload(pointwise)

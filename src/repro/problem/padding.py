"""The padding baseline of Section III-B.

A common workaround for dimension/hardware misalignment pads a tensor
dimension up to the nearest multiple of the PE-array size, so perfect
factorization can parallelize it fully. Padding introduces *ineffectual*
computations (the padded elements are zeros); absent fine-grained sparsity
hardware, those zeros cost real MACs and memory accesses. Fig. 8 compares
this strategy against Ruby-S across dimension sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.problem.workload import Workload
from repro.utils.mathx import ceil_div


@dataclass(frozen=True)
class PaddingResult:
    """Outcome of padding a workload.

    Attributes:
        workload: the padded workload (dimension sizes rounded up).
        original_operations: MAC count of the unpadded problem.
        padded_operations: MAC count after padding.
    """

    workload: Workload
    original_operations: int
    padded_operations: int

    @property
    def overcompute_fraction(self) -> float:
        """Fraction of all executed MACs that are ineffectual zero work.

        At D=113 padded to 128 this is ~12%, matching the paper's example of
        a 20% EDP overhead driven by padded zeros.
        """
        wasted = self.padded_operations - self.original_operations
        return wasted / self.padded_operations

    @property
    def effectual_fraction(self) -> float:
        return 1.0 - self.overcompute_fraction


def pad_dimension(workload: Workload, dim: str, multiple: int) -> PaddingResult:
    """Pad one dimension of ``workload`` up to the nearest ``multiple``."""
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    original = workload.size(dim)
    padded = ceil_div(original, multiple) * multiple
    padded_workload = workload.with_dims({dim: padded}, suffix=f"_pad{dim}{padded}")
    return PaddingResult(
        workload=padded_workload,
        original_operations=workload.total_operations,
        padded_operations=padded_workload.total_operations,
    )


def pad_to_multiple(
    workload: Workload, multiples: Mapping[str, int]
) -> PaddingResult:
    """Pad several dimensions at once; ``multiples`` maps dim -> multiple."""
    new_sizes = {}
    suffix_parts = []
    for dim, multiple in multiples.items():
        if multiple < 1:
            raise ValueError(f"multiple for {dim} must be >= 1, got {multiple}")
        original = workload.size(dim)
        padded = ceil_div(original, multiple) * multiple
        if padded != original:
            new_sizes[dim] = padded
            suffix_parts.append(f"{dim}{padded}")
    suffix = "_pad" + "-".join(suffix_parts) if suffix_parts else ""
    padded_workload = workload.with_dims(new_sizes, suffix=suffix)
    return PaddingResult(
        workload=padded_workload,
        original_operations=workload.total_operations,
        padded_operations=padded_workload.total_operations,
    )

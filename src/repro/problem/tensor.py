"""Tensor specifications: how operand coordinates project onto problem dims.

Each tensor rank is a linear combination of problem dimensions, mirroring
Timeloop's projection expressions. A convolution input's height coordinate,
for example, is ``stride * p + dilation * r`` — a rank with two projection
terms. The projection determines (a) which problem dimensions are *relevant*
to the tensor (they index it, so iterating them changes the data touched) and
(b) the tile footprint of the tensor for given per-dimension tile extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class ProjectionTerm:
    """One ``coefficient * dim`` term inside a tensor rank's projection."""

    dim: str
    coefficient: int = 1

    def __post_init__(self) -> None:
        if self.coefficient < 1:
            raise ValueError(
                f"projection coefficient must be >= 1, got {self.coefficient}"
            )


@dataclass(frozen=True)
class TensorSpec:
    """An operand tensor of a workload.

    Attributes:
        name: operand name, e.g. ``"Inputs"``.
        ranks: one entry per tensor rank; each rank is a tuple of
            :class:`ProjectionTerm` whose sum (over dim coordinates) gives
            the tensor coordinate along that rank.
        is_output: True for tensors that are written (accumulated) rather
            than only read. Output tensors incur read-modify-write traffic.
        bits_per_element: datatype width, used for capacity accounting.
    """

    name: str
    ranks: Tuple[Tuple[ProjectionTerm, ...], ...]
    is_output: bool = False
    bits_per_element: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if self.bits_per_element < 1:
            raise ValueError(
                f"bits_per_element must be >= 1, got {self.bits_per_element}"
            )
        for rank in self.ranks:
            if not rank:
                raise ValueError(f"tensor {self.name} has an empty rank projection")

    @property
    def relevant_dims(self) -> FrozenSet[str]:
        """Problem dimensions that index this tensor.

        Iterating an irrelevant dimension re-touches the same tensor elements
        (reuse opportunity); iterating a relevant one touches new elements.
        """
        return frozenset(term.dim for rank in self.ranks for term in rank)

    def rank_extent(self, rank: Sequence[ProjectionTerm], tile: Mapping[str, int]) -> int:
        """Footprint of one rank for per-dim tile extents ``tile``.

        A rank ``sum(c_i * d_i)`` with each ``d_i`` spanning ``tile[d_i]``
        contiguous values touches ``sum(c_i * (tile[d_i] - 1)) + 1`` distinct
        coordinates (the classic sliding-window footprint).
        """
        span = 0
        for term in rank:
            extent = tile.get(term.dim, 1)
            if extent < 1:
                raise ValueError(
                    f"tile extent for {term.dim} must be >= 1, got {extent}"
                )
            span += term.coefficient * (extent - 1)
        return span + 1

    def tile_footprint(self, tile: Mapping[str, int]) -> int:
        """Number of distinct elements touched for per-dim tile extents.

        ``tile`` maps problem dims to tile extents; missing dims default to 1.
        """
        footprint = 1
        for rank in self.ranks:
            footprint *= self.rank_extent(rank, tile)
        return footprint

    def full_size(self, dim_sizes: Mapping[str, int]) -> int:
        """Total number of elements of the tensor for the full problem."""
        return self.tile_footprint(dict(dim_sizes))


def simple_tensor(
    name: str,
    dims: Sequence[str],
    is_output: bool = False,
    bits_per_element: int = 16,
) -> TensorSpec:
    """Build a tensor whose ranks are single unit-coefficient dims.

    Covers every tensor except convolution inputs (which need compound
    sliding-window ranks).
    """
    ranks = tuple((ProjectionTerm(dim, 1),) for dim in dims)
    return TensorSpec(
        name=name, ranks=ranks, is_output=is_output, bits_per_element=bits_per_element
    )

"""Workload (problem) representation.

A :class:`~repro.problem.workload.Workload` describes a tensor-algebra
operation einsum-style: a set of named iteration dimensions with sizes, and a
set of operand tensors whose coordinates project onto those dimensions. Convs
and GEMMs are built through the helpers in :mod:`repro.problem.conv` and
:mod:`repro.problem.gemm`.
"""

from repro.problem.tensor import ProjectionTerm, TensorSpec
from repro.problem.workload import Workload
from repro.problem.conv import ConvLayer, conv_workload
from repro.problem.depthwise import DepthwiseConvLayer, depthwise_workload
from repro.problem.groupconv import GroupConvLayer, group_conv_workload
from repro.problem.gemm import GemmLayer, gemm_workload
from repro.problem.padding import PaddingResult, pad_dimension, pad_to_multiple

__all__ = [
    "ProjectionTerm",
    "TensorSpec",
    "Workload",
    "ConvLayer",
    "conv_workload",
    "DepthwiseConvLayer",
    "depthwise_workload",
    "GroupConvLayer",
    "group_conv_workload",
    "GemmLayer",
    "gemm_workload",
    "PaddingResult",
    "pad_dimension",
    "pad_to_multiple",
]

"""Grouped convolution workloads.

A grouped conv partitions channels into ``G`` independent groups: group
``g`` convolves its own ``C`` input channels into its own ``M`` output
channels. AlexNet's conv2 (2 groups — the paper evaluates one group's
shape), ResNeXt blocks, and ShuffleNet are grouped; depthwise conv is the
``C = M = 1`` special case (see :mod:`repro.problem.depthwise`).

The group dim ``G`` indexes all three operands, so it behaves like a batch
dim with no cross-group reuse — another dimension whose sizes (2, 32, 48…)
rarely align with PE arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import SpecError
from repro.problem.tensor import ProjectionTerm, TensorSpec, simple_tensor
from repro.problem.workload import Workload


@dataclass(frozen=True)
class GroupConvLayer:
    """Shape of a grouped convolution (output-size formulation).

    ``c`` and ``m`` are the *per-group* channel counts; the full tensor has
    ``g * c`` input and ``g * m`` output channels.
    """

    name: str
    g: int = 1
    n: int = 1
    c: int = 1
    m: int = 1
    p: int = 1
    q: int = 1
    r: int = 1
    s: int = 1
    stride_h: int = 1
    stride_w: int = 1

    def __post_init__(self) -> None:
        for field_name in ("g", "n", "c", "m", "p", "q", "r", "s",
                           "stride_h", "stride_w"):
            value = getattr(self, field_name)
            if value < 1:
                raise SpecError(
                    f"group conv {self.name}: {field_name}={value} must be >= 1"
                )

    @property
    def dim_sizes(self) -> Dict[str, int]:
        return {
            "N": self.n,
            "G": self.g,
            "C": self.c,
            "M": self.m,
            "P": self.p,
            "Q": self.q,
            "R": self.r,
            "S": self.s,
        }

    @property
    def total_input_channels(self) -> int:
        return self.g * self.c

    @property
    def total_output_channels(self) -> int:
        return self.g * self.m

    def workload(self) -> Workload:
        return group_conv_workload(self)


def group_conv_workload(layer: GroupConvLayer) -> Workload:
    """Build the 8-loop grouped-convolution workload."""
    weights = simple_tensor("Weights", ("G", "M", "C", "R", "S"))
    inputs = TensorSpec(
        name="Inputs",
        ranks=(
            (ProjectionTerm("N", 1),),
            (ProjectionTerm("G", 1),),
            (ProjectionTerm("C", 1),),
            (ProjectionTerm("P", layer.stride_h), ProjectionTerm("R", 1)),
            (ProjectionTerm("Q", layer.stride_w), ProjectionTerm("S", 1)),
        ),
    )
    outputs = simple_tensor("Outputs", ("N", "G", "M", "P", "Q"), is_output=True)
    return Workload.create(
        name=layer.name,
        dims=layer.dim_sizes,
        tensors=[weights, inputs, outputs],
    )

"""GEMM (dense matrix multiply) workloads.

``C[M, N] += A[M, K] * B[K, N]`` — the operation used by the paper's toy
mapspace studies (Fig. 7a/b: 100x100 matmul) and by DeepBench's GEMM suite.
Dense (fully-connected) DNN layers are GEMMs with N = batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import SpecError
from repro.problem.tensor import simple_tensor
from repro.problem.workload import Workload

GEMM_DIMS = ("M", "N", "K")


@dataclass(frozen=True)
class GemmLayer:
    """Shape of a GEMM: ``C[m, n] += A[m, k] * B[k, n]``."""

    name: str
    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for field_name in ("m", "n", "k"):
            value = getattr(self, field_name)
            if value < 1:
                raise SpecError(f"gemm {self.name}: {field_name}={value} must be >= 1")

    @property
    def dim_sizes(self) -> Dict[str, int]:
        return {"M": self.m, "N": self.n, "K": self.k}

    def workload(self) -> Workload:
        return gemm_workload(self)


def gemm_workload(layer: GemmLayer) -> Workload:
    """Build the 3-loop GEMM workload for ``layer``."""
    a = simple_tensor("A", ("M", "K"))
    b = simple_tensor("B", ("K", "N"))
    c = simple_tensor("C", ("M", "N"), is_output=True)
    return Workload.create(
        name=layer.name,
        dims=layer.dim_sizes,
        tensors=[a, b, c],
    )


def vector_workload(name: str, d: int) -> Workload:
    """A rank-1 'distribute D elements' workload.

    This is the single-dimensional allocation problem used throughout
    Section II-D/III of the paper (Figs. 4, 5, 8 and Table I): one tensor of
    ``D`` elements streamed through the hierarchy, one op per element.
    """
    src = simple_tensor("X", ("D",))
    dst = simple_tensor("Y", ("D",), is_output=True)
    return Workload.create(name=name, dims={"D": d}, tensors=[src, dst])

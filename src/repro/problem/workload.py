"""The Workload: an einsum-style tensor operation to be mapped.

A workload is a bag of named iteration dimensions with integer sizes plus the
operand tensors projecting onto them. The full iteration space is the
Cartesian product of the dimensions; each point performs one multiply-
accumulate (or, generally, one compute operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.exceptions import SpecError
from repro.problem.tensor import TensorSpec
from repro.utils.mathx import product


@dataclass(frozen=True)
class Workload:
    """A tensor-algebra operation.

    Attributes:
        name: human-readable identifier, e.g. ``"resnet50_conv3_x"``.
        dims: ordered mapping ``{dim_name: size}``; sizes are >= 1.
        tensors: operand tensors; exactly one must have ``is_output=True``
            for the standard single-output operations modelled here.
    """

    name: str
    dims: Tuple[Tuple[str, int], ...]
    tensors: Tuple[TensorSpec, ...]

    @staticmethod
    def create(
        name: str,
        dims: Mapping[str, int],
        tensors: List[TensorSpec],
    ) -> "Workload":
        """Validate and build a workload from plain containers."""
        workload = Workload(
            name=name,
            dims=tuple(dims.items()),
            tensors=tuple(tensors),
        )
        workload.validate()
        return workload

    def validate(self) -> None:
        """Raise :class:`SpecError` on any structural problem."""
        if not self.name:
            raise SpecError("workload name must be non-empty")
        if not self.dims:
            raise SpecError(f"workload {self.name} has no dimensions")
        seen = set()
        for dim, size in self.dims:
            if dim in seen:
                raise SpecError(f"workload {self.name} repeats dimension {dim}")
            seen.add(dim)
            if size < 1:
                raise SpecError(
                    f"workload {self.name} dimension {dim} has size {size}"
                )
        if not self.tensors:
            raise SpecError(f"workload {self.name} has no tensors")
        outputs = [t for t in self.tensors if t.is_output]
        if len(outputs) != 1:
            raise SpecError(
                f"workload {self.name} must have exactly one output tensor, "
                f"found {len(outputs)}"
            )
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise SpecError(f"workload {self.name} has duplicate tensor names")
        dim_names = set(seen)
        for tensor in self.tensors:
            unknown = tensor.relevant_dims - dim_names
            if unknown:
                raise SpecError(
                    f"tensor {tensor.name} projects onto unknown dims {sorted(unknown)}"
                )

    @property
    def dim_sizes(self) -> Dict[str, int]:
        """Return ``{dim: size}`` as a fresh dict."""
        return dict(self.dims)

    @property
    def dim_names(self) -> Tuple[str, ...]:
        return tuple(dim for dim, _ in self.dims)

    def size(self, dim: str) -> int:
        """Size of a single dimension."""
        for name, size in self.dims:
            if name == dim:
                return size
        raise KeyError(f"workload {self.name} has no dimension {dim}")

    @property
    def total_operations(self) -> int:
        """Total compute operations (MACs) = product of all dim sizes."""
        return product(size for _, size in self.dims)

    @property
    def output(self) -> TensorSpec:
        """The unique output tensor."""
        for tensor in self.tensors:
            if tensor.is_output:
                return tensor
        raise SpecError(f"workload {self.name} has no output tensor")

    @property
    def inputs(self) -> Tuple[TensorSpec, ...]:
        """All read-only tensors."""
        return tuple(t for t in self.tensors if not t.is_output)

    def tensor(self, name: str) -> TensorSpec:
        """Look up a tensor by name."""
        for tensor in self.tensors:
            if tensor.name == name:
                return tensor
        raise KeyError(f"workload {self.name} has no tensor {name}")

    def tensor_size(self, name: str) -> int:
        """Total element count of tensor ``name`` for the full problem."""
        return self.tensor(name).full_size(self.dim_sizes)

    def with_dims(self, new_sizes: Mapping[str, int], suffix: str = "") -> "Workload":
        """Return a copy with some dimension sizes replaced.

        Used by the padding baseline and by parameter sweeps.
        """
        updated = tuple(
            (dim, new_sizes.get(dim, size)) for dim, size in self.dims
        )
        workload = Workload(
            name=self.name + suffix,
            dims=updated,
            tensors=self.tensors,
        )
        workload.validate()
        return workload

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        dims = " ".join(f"{d}={s}" for d, s in self.dims)
        return f"{self.name}: {dims} ({self.total_operations:,} MACs)"

"""Metamorphic invariants of the mapspace / evaluation stack.

Where :mod:`repro.verify.differential` asks "do all the evaluation paths
agree on this one mapping?", this module asks structural questions whose
answers are known a priori:

* **PFM containment** — every perfect-factorization mapping also lives in
  the Ruby mapspace (canonical-key set containment) and prices identically
  no matter which space produced it;
* **Counting consistency** — the :mod:`repro.mapspace.chain_count` closed
  forms match :meth:`DimAllocator.enumerate_chains` chain-by-chain, and
  the enumeration-based mapspace size never exceeds the closed-form upper
  bound;
* **Cache transparency** — a cache hit and ``evaluate_fresh`` both
  reproduce the uncached evaluation exactly;
* **Prune parity** — batch evaluation with lower-bound pruning on and off
  agrees on every surviving row, never prunes the best row, and every
  pruned row's true metric is at or above the incumbent;
* **Enumeration count parity** — the scalar chain enumeration emits each
  candidate exactly once (unique signatures), and its count matches both
  the prefix-tree closed-form count and the number of rows the batched
  path packs — the differential check behind removing the scalar path's
  vestigial dedup set;
* **Branch-bound parity** — the hierarchical branch-and-bound searcher
  finds the bit-identical best mapping (same signature, energy, and
  cycles) as exhaustive enumeration on toy and Eyeriss-preset mapspaces,
  regardless of its warm-start seed;
* **Seed determinism** — each of the six searchers run twice from one
  seed produces the same trajectory, and ``parallel_random_search`` finds
  the same best metric under fork and spawn start methods.

Each invariant is a seed-deterministic callable returning a list of
violation strings, so the CLI can run them without Hypothesis; the
property-test layer re-drives the same callables under generated inputs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import toy_glb_architecture, toy_linear_architecture
from repro.energy.accelergy import estimate_energy_table
from repro.mapspace.allocation import DimAllocator
from repro.mapspace.chain_count import count_dim_chains, mapspace_upper_bound
from repro.mapspace.counting import count_mapspace_size
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.mapspace.slots import build_slots
from repro.model.eval_cache import EvaluationCache
from repro.model.evaluator import Evaluator
from repro.problem import GemmLayer
from repro.problem.gemm import vector_workload
from repro.search import (
    BranchBoundSearch,
    ExhaustiveSearch,
    GeneticSearch,
    ParetoSearch,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.search.parallel import parallel_random_search

#: Multiprocessing start methods the determinism invariant compares.
START_METHODS = ("fork", "spawn")


@dataclass
class InvariantReport:
    """Aggregate outcome of one invariant sweep."""

    checked: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"invariants: {sum(self.checked.values())} checks across "
            f"{len(self.checked)} invariants  "
            f"violations={len(self.violations)}  "
            f"elapsed={self.elapsed_s:.1f}s"
        ]
        for name, count in sorted(self.checked.items()):
            lines.append(f"  {name}: {count}")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        return "\n".join(lines)


def _toy_setup(seed: int):
    """Small shared fixture: toy GLB arch + a GEMM small enough to count."""
    rng = random.Random(seed)
    arch = toy_glb_architecture(num_pes=6, glb_bytes=4096)
    m, n, k = rng.choice(((4, 3, 2), (6, 2, 2), (5, 3, 2)))
    workload = GemmLayer("g", m=m, n=n, k=k).workload()
    return rng, arch, workload


def check_pfm_containment(
    seed: int = 0, enumeration_limit: int = 20_000
) -> Tuple[int, List[str]]:
    """PFM mappings are contained in and score identically inside Ruby.

    Enumerates the PFM space of a small GEMM, requires every canonical key
    to appear in each Ruby variant's enumeration, and prices the PFM
    mapping against its Ruby twin (same canonical key) exactly.
    """
    _, arch, workload = _toy_setup(seed)
    table = estimate_energy_table(arch)
    evaluator = Evaluator(arch, workload, table)
    pfm = {
        m.canonical_key(): m
        for m in MapSpace(
            arch, workload, MapspaceKind.PFM
        ).enumerate_mappings(limit=enumeration_limit)
    }
    checked = 0
    violations: List[str] = []
    for kind in (MapspaceKind.RUBY_S, MapspaceKind.RUBY_T, MapspaceKind.RUBY):
        ruby = {
            m.canonical_key(): m
            for m in MapSpace(arch, workload, kind).enumerate_mappings(
                limit=enumeration_limit
            )
        }
        missing = set(pfm) - set(ruby)
        if missing:
            violations.append(
                f"pfm-containment: {len(missing)} PFM mappings absent from "
                f"{kind.value} ({workload.name})"
            )
        for key, mapping in pfm.items():
            twin = ruby.get(key)
            if twin is None:
                continue
            checked += 1
            mine = evaluator.evaluate_fresh(mapping)
            theirs = evaluator.evaluate_fresh(twin)
            if (
                mine.valid != theirs.valid
                or mine.energy_pj != theirs.energy_pj
                or mine.cycles != theirs.cycles
            ):
                violations.append(
                    f"pfm-containment: canonical twin prices differently in "
                    f"{kind.value}: {key}"
                )
    return checked, violations


def check_counting_consistency(seed: int = 0) -> Tuple[int, List[str]]:
    """Closed-form chain counts match allocator enumeration exactly.

    Also checks the whole-mapspace enumeration count never exceeds the
    closed-form upper bound (permutations/bypass off on both sides).
    """
    rng, arch, _ = _toy_setup(seed)
    slots = build_slots(arch)
    checked = 0
    violations: List[str] = []
    sizes = rng.sample((3, 4, 5, 6, 7, 9, 11, 12), 4)
    for kind in MapspaceKind:
        allocator = DimAllocator(
            slots, kind.spatial_imperfect, kind.temporal_imperfect
        )
        for size in sizes:
            checked += 1
            enumerated = sum(1 for _ in allocator.enumerate_chains("D", size))
            closed = count_dim_chains(slots, kind, "D", size)
            if enumerated != closed:
                violations.append(
                    f"counting: {kind.value} D={size}: closed form {closed} "
                    f"!= enumerated {enumerated}"
                )
    linear = toy_linear_architecture(9)
    for size in (9, 12):
        workload = vector_workload("v", size)
        for kind in MapspaceKind:
            checked += 1
            counted = count_mapspace_size(
                linear, workload, kind, count_valid=False
            )
            bound = mapspace_upper_bound(linear, {"D": size}, kind)
            if counted.raw > bound:
                violations.append(
                    f"counting: {kind.value} D={size}: enumerated size "
                    f"{counted.raw} exceeds closed-form bound {bound}"
                )
    return checked, violations


def check_cache_transparency(
    seed: int = 0, samples: int = 25
) -> Tuple[int, List[str]]:
    """Cache hits and ``evaluate_fresh`` reproduce the uncached result."""
    rng, arch, workload = _toy_setup(seed)
    table = estimate_energy_table(arch)
    plain = Evaluator(arch, workload, table)
    cache = EvaluationCache()
    cached = Evaluator(arch, workload, table, cache=cache)
    space = MapSpace(arch, workload, MapspaceKind.RUBY, explore_bypass=True)
    checked = 0
    violations: List[str] = []
    for mapping in space.sample_many(samples, rng):
        checked += 1
        baseline = plain.evaluate(mapping)
        first = cached.evaluate(mapping)
        second = cached.evaluate(mapping)
        fresh = cached.evaluate_fresh(mapping)
        for label, other in (
            ("miss", first), ("hit", second), ("fresh", fresh)
        ):
            if (
                baseline.valid != other.valid
                or baseline.energy_pj != other.energy_pj
                or baseline.cycles != other.cycles
                or baseline.utilization != other.utilization
            ):
                violations.append(
                    f"cache-transparency: {label} diverges from uncached on "
                    f"{mapping.signature()}"
                )
    if cache.hits == 0:
        violations.append("cache-transparency: repeated lookups never hit")
    return checked, violations


def check_prune_parity(
    seed: int = 0, samples: int = 64
) -> Tuple[int, List[str]]:
    """Batch pruning must be lossless: same winner, consistent rows."""
    from repro.model.batch import BatchEvaluator, PRUNE_MARGIN, pack_mappings

    rng, arch, workload = _toy_setup(seed)
    table = estimate_energy_table(arch)
    engine = BatchEvaluator(Evaluator(arch, workload, table))
    if not engine.supported:
        return 0, []  # NumPy absent: nothing to compare
    space = MapSpace(arch, workload, MapspaceKind.RUBY)
    # A draw can land on all-invalid mappings (infinite metric everywhere),
    # which would make the parity check vacuous — resample until at least
    # one finite row anchors the incumbent.
    for _ in range(8):
        mappings = space.sample_many(samples, rng)
        batch = pack_mappings(engine.layout, mappings)
        free = engine.evaluate_batch(batch, prune=False)
        metrics = [float(m) for m in free.metric]
        finite = [m for m in metrics if m != float("inf")]
        if finite:
            break
    else:
        return 0, [
            "prune-parity: no valid mapping found in "
            f"{8 * samples} samples; cannot anchor an incumbent"
        ]
    incumbent = min(finite)
    pruned = engine.evaluate_batch(batch, incumbent=incumbent, prune=True)
    checked = 0
    violations: List[str] = []
    best_row = metrics.index(incumbent)
    if bool(pruned.pruned[best_row]):
        violations.append(
            f"prune-parity: best row {best_row} (metric {incumbent}) was "
            "pruned against its own incumbent"
        )
    for row in range(len(mappings)):
        checked += 1
        if bool(pruned.pruned[row]):
            if metrics[row] < incumbent - PRUNE_MARGIN:
                violations.append(
                    f"prune-parity: row {row} pruned but its true metric "
                    f"{metrics[row]} beats the incumbent {incumbent}"
                )
            continue
        if metrics[row] != float(pruned.metric[row]):
            violations.append(
                f"prune-parity: row {row} metric differs with pruning on "
                f"({float(pruned.metric[row])}) vs off ({metrics[row]})"
            )
        if bool(free.valid[row]) != bool(pruned.valid[row]):
            violations.append(
                f"prune-parity: row {row} validity differs with pruning "
                "on vs off"
            )
    return checked, violations


def check_enumeration_count_parity(seed: int = 0) -> Tuple[int, List[str]]:
    """Scalar enumeration, batched packing, and the closed count agree.

    The scalar exhaustive path used to carry a signature dedup set; this
    check is the evidence it was vestigial: chain enumeration emits each
    candidate exactly once (distinct chain combinations produce distinct
    cells, hence distinct signatures), so all three counts must match.
    """
    _, arch, workload = _toy_setup(seed)
    checked = 0
    violations: List[str] = []
    for kind in MapspaceKind:
        checked += 1
        space = MapSpace(arch, workload, kind)
        signatures = [
            m.signature() for m in space.enumerate_mappings(limit=200_000)
        ]
        scalar_count = len(signatures)
        unique_count = len(set(signatures))
        if scalar_count != unique_count:
            violations.append(
                f"count-parity: {kind.value} scalar enumeration emitted "
                f"{scalar_count - unique_count} duplicate signatures"
            )
        closed_count = space.count_completions()
        if scalar_count != closed_count:
            violations.append(
                f"count-parity: {kind.value} scalar enumeration count "
                f"{scalar_count} != closed-form count {closed_count}"
            )
        batch_rows = sum(
            batch.size for batch in space.iter_batches(batch_size=512)
        )
        if batch_rows != scalar_count:
            violations.append(
                f"count-parity: {kind.value} batched path packed "
                f"{batch_rows} rows vs {scalar_count} scalar candidates"
            )
    return checked, violations


def _parity_fixtures(seed: int):
    """(label, mapspace, evaluator) triples for branch-bound parity."""
    from repro.arch.eyeriss import eyeriss_like

    _, toy_arch, toy_workload = _toy_setup(seed)
    toy_table = estimate_energy_table(toy_arch)
    fixtures = []
    for kind in (MapspaceKind.PFM, MapspaceKind.RUBY_S):
        fixtures.append(
            (
                f"toy/{kind.value}",
                MapSpace(toy_arch, toy_workload, kind),
                Evaluator(toy_arch, toy_workload, toy_table),
            )
        )
    eyeriss = eyeriss_like()
    gemm = GemmLayer("g8x4x4", m=8, n=4, k=4).workload()
    eyeriss_table = estimate_energy_table(eyeriss)
    fixtures.append(
        (
            "eyeriss/pfm",
            MapSpace(eyeriss, gemm, MapspaceKind.PFM),
            Evaluator(eyeriss, gemm, eyeriss_table),
        )
    )
    return fixtures


def check_branch_bound_parity(seed: int = 0) -> Tuple[int, List[str]]:
    """Branch-and-bound matches exhaustive search on the optimum exactly.

    On each fixture the B&B searcher must reach the bit-identical best
    EDP that full enumeration finds, from two different warm-start seeds —
    the pruning bound is admissible, so the warm start only affects speed,
    never the answer. The comparison is on the metric, not the mapping
    signature: mapspaces routinely hold several co-optimal mappings, and
    which one a searcher reports depends on visit order (enumeration order
    for exhaustive, best-first heap order for B&B).

    The parallel searcher (``workers=2``, subtree work-sharing over a
    shared incumbent) is held to the same standard: cross-process cuts
    keep the serial prune margin and the driver re-prices every worker
    claim, so the optimum must be bit-identical regardless of incumbent
    race timing.
    """
    checked = 0
    violations: List[str] = []
    for label, space, evaluator in _parity_fixtures(seed):
        checked += 1
        exhaustive = ExhaustiveSearch(space, evaluator, limit=200_000).run()
        runs = [
            BranchBoundSearch(space, evaluator, seed=s).run()
            for s in (seed, seed + 1)
        ]
        runs.append(
            BranchBoundSearch(space, evaluator, seed=seed, workers=2).run()
        )
        keys = []
        for result in (exhaustive, *runs):
            best = result.best
            keys.append(
                best.metric("edp") if best is not None else None
            )
        if any(key != keys[0] for key in keys[1:]):
            violations.append(
                f"branch-bound-parity: {label}: best EDP diverges from "
                f"exhaustive (exhaustive={keys[0]!r}, "
                f"bnb={keys[1]!r}/{keys[2]!r}, parallel={keys[3]!r})"
            )
    return checked, violations


def _searcher_runs(seed: int):
    """(name, run-callable) pairs for the six searchers, tiny budgets."""
    _, arch, workload = _toy_setup(seed)
    table = estimate_energy_table(arch)

    def fixture(kind: MapspaceKind):
        space = MapSpace(arch, workload, kind)
        return space, Evaluator(arch, workload, table)

    def random_run():
        space, evaluator = fixture(MapspaceKind.RUBY)
        return RandomSearch(
            space, evaluator, max_evaluations=200, patience=None, seed=seed
        ).run()

    def exhaustive_run():
        space, evaluator = fixture(MapspaceKind.PFM)
        return ExhaustiveSearch(space, evaluator, limit=20_000).run()

    def genetic_run():
        space, evaluator = fixture(MapspaceKind.RUBY_S)
        return GeneticSearch(
            space, evaluator, population_size=8, generations=4, seed=seed
        ).run()

    def annealing_run():
        space, evaluator = fixture(MapspaceKind.RUBY_T)
        return SimulatedAnnealing(space, evaluator, steps=80, seed=seed).run()

    def pareto_run():
        space, evaluator = fixture(MapspaceKind.RUBY)
        return ParetoSearch(space, evaluator, max_evaluations=150, seed=seed).run()

    def branch_bound_run():
        space, evaluator = fixture(MapspaceKind.RUBY_S)
        return BranchBoundSearch(space, evaluator, seed=seed).run()

    return [
        ("random", random_run),
        ("exhaustive", exhaustive_run),
        ("branch-bound", branch_bound_run),
        ("genetic", genetic_run),
        ("annealing", annealing_run),
        ("pareto", pareto_run),
    ]


def _result_fingerprint(result) -> Tuple:
    frontier = getattr(result, "frontier", None)
    if frontier is not None:
        front_key = tuple(
            (e.mapping.signature(), e.energy_pj, e.cycles) for e in frontier
        )
        return (None, front_key, getattr(result, "num_evaluated", None))
    best = result.best
    best_key = (
        (best.mapping.signature(), best.energy_pj, best.cycles)
        if best is not None
        else None
    )
    return (best_key, None, getattr(result, "num_evaluated", None))


def check_seed_determinism(seed: int = 0) -> Tuple[int, List[str]]:
    """Each searcher run twice from one seed retraces itself exactly."""
    checked = 0
    violations: List[str] = []
    for name, run in _searcher_runs(seed):
        checked += 1
        if _result_fingerprint(run()) != _result_fingerprint(run()):
            violations.append(
                f"seed-determinism: {name} search diverged between two runs "
                f"with seed {seed}"
            )
    return checked, violations


def check_parallel_start_methods(
    seed: int = 0, max_evaluations: int = 240, workers: int = 2
) -> Tuple[int, List[str]]:
    """Fork and spawn parallel searches agree on the best mapping found."""
    import multiprocessing

    _, arch, workload = _toy_setup(seed)
    available = multiprocessing.get_all_start_methods()
    fingerprints: Dict[str, Tuple] = {}
    checked = 0
    violations: List[str] = []
    for method in START_METHODS:
        if method not in available:
            continue
        checked += 1
        result = parallel_random_search(
            arch,
            workload,
            kind=MapspaceKind.RUBY_S,
            max_evaluations=max_evaluations,
            patience=None,
            workers=workers,
            seed=seed,
            start_method=method,
        )
        best = result.best
        fingerprints[method] = (
            (best.mapping.signature(), best.energy_pj, best.cycles)
            if best is not None
            else None
        )
    if len(set(fingerprints.values())) > 1:
        violations.append(
            "start-method-determinism: parallel search best differs across "
            + ", ".join(sorted(fingerprints))
        )
    return checked, violations


#: The invariant registry, in the order the CLI reports them.
INVARIANTS: Tuple[Tuple[str, Callable[[int], Tuple[int, List[str]]]], ...] = (
    ("pfm-containment", check_pfm_containment),
    ("counting-consistency", check_counting_consistency),
    ("cache-transparency", check_cache_transparency),
    ("prune-parity", check_prune_parity),
    ("count-parity", check_enumeration_count_parity),
    ("branch-bound-parity", check_branch_bound_parity),
    ("seed-determinism", check_seed_determinism),
    ("start-method-determinism", check_parallel_start_methods),
)


def run_invariants(
    seed: int = 0,
    include_parallel: bool = True,
    only: Optional[List[str]] = None,
) -> InvariantReport:
    """Run the metamorphic invariant suite.

    ``include_parallel=False`` skips the fork/spawn comparison (the one
    invariant that spins up worker processes — the quick CLI profile keeps
    it, CI smoke under constrained runners may not want it). ``only``
    restricts to a subset of invariant names.
    """
    started = time.monotonic()
    report = InvariantReport()
    for name, check in INVARIANTS:
        if only is not None and name not in only:
            continue
        if name == "start-method-determinism" and not include_parallel:
            continue
        checked, violations = check(seed)
        report.checked[name] = checked
        report.violations += violations
    report.elapsed_s = time.monotonic() - started
    return report

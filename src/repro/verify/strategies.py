"""Case generators for the differential verification harness.

Two layers live here:

* **Seed-deterministic cores** — plain-``random.Random`` generators for
  workloads, preset architectures, and (valid, remaindered) mappings,
  including the adversarial corners the paper's Eq. 5 semantics make
  interesting: prime dimension sizes, ``R = 1`` remainders, ``R = P``
  collapse-to-perfect loops, and bypass combinations. The differential
  runner and the CLI use these directly, so ``repro verify --seed N`` is
  reproducible without Hypothesis installed.
* **Hypothesis strategies** — thin wrappers over the same cores (plus the
  spec-level strategies that used to live inline in
  ``tests/test_io_properties.py``), so property tests across the suite
  share one vocabulary and get shrinking for free. These require the
  optional ``hypothesis`` test dependency and raise a clear error when it
  is missing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch import (
    Architecture,
    StorageLevel,
    eyeriss_like,
    simba_like,
    toy_glb_architecture,
    toy_linear_architecture,
)
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem import ConvLayer, GemmLayer
from repro.problem.gemm import vector_workload
from repro.problem.workload import Workload

try:  # pragma: no cover - exercised indirectly by the property tests
    from hypothesis import strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    st = None  # type: ignore[assignment]
    HAS_HYPOTHESIS = False

#: Sizes the workload generator draws from. Primes (7, 11, 13, 17) force
#: genuinely imperfect factorizations; composites exercise the perfect
#: sub-space; 1 exercises trivial-loop elision.
DIM_SIZE_POOL: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13)

#: Vector (rank-1) problem sizes: the paper's 100-element example plus
#: primes and power-of-two/odd mixes around it.
VECTOR_SIZE_POOL: Tuple[int, ...] = (17, 24, 36, 49, 60, 97, 100, 127)


def preset_architecture_names() -> Tuple[str, ...]:
    """Architecture presets the verification harness draws from."""
    return ("toy-glb", "toy-linear", "eyeriss", "simba")


def preset_architecture(
    name: str, rng: Optional[random.Random] = None
) -> Architecture:
    """Build one preset architecture, with toy shapes varied by ``rng``."""
    rng = rng or random.Random(0)
    if name == "toy-glb":
        return toy_glb_architecture(
            num_pes=rng.choice((4, 6, 8)),
            glb_bytes=rng.choice((1024, 4096, 8192)),
        )
    if name == "toy-linear":
        return toy_linear_architecture(rng.choice((9, 16)))
    if name == "eyeriss":
        return eyeriss_like()
    if name == "simba":
        return simba_like()
    raise ValueError(f"unknown architecture preset {name!r}")


def random_workload(
    rng: random.Random, sim_friendly: bool = False
) -> Workload:
    """Draw a random small workload (vector, GEMM, or conv).

    With ``sim_friendly=True`` the shape is kept small enough that most
    mappings of it stay within the reference simulator's budget.
    """
    kind = rng.choice(("vector", "gemm", "gemm", "conv"))
    if kind == "vector":
        return vector_workload("v", rng.choice(VECTOR_SIZE_POOL))
    cap = 7 if sim_friendly else max(DIM_SIZE_POOL)
    pool = [s for s in DIM_SIZE_POOL if s <= cap]
    if kind == "gemm":
        m, n, k = (rng.choice(pool) for _ in range(3))
        return GemmLayer("g", m=m, n=n, k=k).workload()
    conv_pool = [s for s in pool if s <= 6]
    c, m, p = (rng.choice(conv_pool) for _ in range(3))
    q = rng.choice((1, 2, 3))
    r = rng.choice((1, 2, 3))
    s = rng.choice((1, 2))
    return ConvLayer("c", c=c, m=m, p=p, q=q, r=r, s=s).workload()


def eq5_chain(size: int, inner: int) -> Tuple[int, int, int]:
    """Split ``size`` into an Eq. 5 two-loop chain around bound ``inner``.

    Returns ``(outer, inner, remainder)`` with
    ``(outer - 1) * inner + remainder == size`` — the outer loop takes
    ``outer`` passes, the inner takes ``inner`` iterations on each but the
    globally-last pass, which takes ``remainder``.
    """
    if size < 1 or inner < 1:
        raise ValueError("size and inner must be >= 1")
    inner = min(inner, size)
    outer = -(-size // inner)  # ceil division
    remainder = size - (outer - 1) * inner
    return outer, inner, remainder


@dataclass(frozen=True)
class VerifyCase:
    """One differential-verification case: an (arch, workload, mapping).

    ``kind`` records which mapspace the mapping was sampled from (``None``
    for handcrafted adversarial cases); ``source`` is a human-readable tag
    of how the case was produced, carried into counterexample dumps.
    """

    name: str
    arch: Architecture
    workload: Workload
    mapping: Mapping
    kind: Optional[MapspaceKind] = None
    source: str = "sampled"
    seed: Optional[int] = None


def _bypass_candidates(
    arch: Architecture, workload: Workload
) -> List[Tuple[str, str]]:
    return [
        (level.name, tensor.name)
        for level in arch.levels[1:]
        for tensor in workload.tensors
        if level.keeps_tensor(tensor.name)
    ]


def _tweak_mapping(
    mapping: Mapping, arch: Architecture, workload: Workload, rng: random.Random
) -> Tuple[Mapping, str]:
    """Apply one adversarial transformation to a sampled mapping.

    The result is not guaranteed valid — validity *agreement* across
    evaluation paths is itself a checked property — but every transform
    preserves mapping well-formedness.
    """
    choice = rng.choice(("perfect", "r1", "bypass"))
    if choice == "bypass":
        candidates = _bypass_candidates(arch, workload)
        if candidates:
            picked = [p for p in candidates if rng.random() < 0.5]
            if picked:
                return mapping.with_bypass(picked), "adversarial:bypass"
        choice = "perfect"
    imperfect = [
        (i, j, loop)
        for i, nest in enumerate(mapping.levels)
        for j, loop in enumerate(nest.temporal + nest.spatial)
        if not loop.is_perfect
    ]
    if choice == "perfect" and imperfect:
        # Collapse every remainder to R = P: the mapping drops back into
        # the perfect-factorization notation (coverage may overshoot).
        new_levels = tuple(
            LevelNest(
                level_name=nest.level_name,
                temporal=tuple(
                    replace(l, remainder=l.bound) for l in nest.temporal
                ),
                spatial=tuple(
                    replace(l, remainder=l.bound) for l in nest.spatial
                ),
            )
            for nest in mapping.levels
        )
        return (
            Mapping(levels=new_levels, bypass=mapping.bypass),
            "adversarial:collapse-to-perfect",
        )
    nontrivial = [
        (i, j, loop)
        for i, nest in enumerate(mapping.levels)
        for j, loop in enumerate(nest.temporal + nest.spatial)
        if loop.bound > 1
    ]
    if not nontrivial:
        return mapping, "sampled"
    i, j, loop = rng.choice(nontrivial)
    nest = mapping.levels[i]
    flat = list(nest.temporal + nest.spatial)
    flat[j] = replace(loop, remainder=1)
    split = len(nest.temporal)
    new_nest = LevelNest(
        level_name=nest.level_name,
        temporal=tuple(flat[:split]),
        spatial=tuple(flat[split:]),
    )
    levels = list(mapping.levels)
    levels[i] = new_nest
    return (
        Mapping(levels=tuple(levels), bypass=mapping.bypass),
        "adversarial:r1",
    )


#: Probability a sampled case gets an adversarial transformation.
TWEAK_PROBABILITY = 0.25


def random_case(
    rng: random.Random,
    sim_bias: float = 0.7,
    index: int = 0,
) -> VerifyCase:
    """Draw one verification case.

    ``sim_bias`` is the probability of drawing a toy architecture with a
    sim-friendly workload (so reference-simulator cross-checks stay
    plentiful); the rest of the mass goes to the eyeriss/simba presets,
    which exercise deeper hierarchies through the analytical paths only.
    """
    toy = rng.random() < sim_bias
    arch_name = rng.choice(("toy-glb", "toy-linear")) if toy else rng.choice(
        ("eyeriss", "simba")
    )
    arch = preset_architecture(arch_name, rng)
    workload = random_workload(rng, sim_friendly=toy)
    kind = rng.choice(tuple(MapspaceKind))
    space = MapSpace(
        arch, workload, kind, explore_bypass=rng.random() < 0.3
    )
    mapping = space.sample(rng)
    source = "sampled"
    if rng.random() < TWEAK_PROBABILITY:
        mapping, source = _tweak_mapping(mapping, arch, workload, rng)
    return VerifyCase(
        name=f"case-{index}:{arch.name}:{workload.name}:{kind.value}",
        arch=arch,
        workload=workload,
        mapping=mapping,
        kind=kind,
        source=source,
    )


def adversarial_cases(rng: random.Random) -> List[VerifyCase]:
    """Handcrafted Eq. 5-exact corner cases (always-valid mappings).

    Covers prime sizes, ``R = 1``, ``R = P`` collapse-to-perfect, bypass,
    and the multicast/spatial-reduction geometry of the toy GLB hierarchy.
    """
    cases: List[VerifyCase] = []
    glb = toy_glb_architecture(num_pes=6, glb_bytes=4096)

    def vector_case(tag: str, d: int, inner: int, spatial: bool) -> VerifyCase:
        workload = vector_workload("v", d)
        outer, inner_b, rem = eq5_chain(d, inner)
        inner_loop = Loop("D", inner_b, rem, spatial=spatial)
        if spatial:
            glb_block = ("GlobalBuffer", [Loop("D", outer)], [inner_loop])
        else:
            glb_block = ("GlobalBuffer", [Loop("D", outer), inner_loop], [])
        mapping = Mapping.from_blocks(
            [("DRAM", [], []), glb_block, ("PERegister", [], [])]
        )
        return VerifyCase(
            name=f"adv:{tag}", arch=glb, workload=workload, mapping=mapping,
            source=f"adversarial:{tag}",
        )

    # Prime size, imperfect spatial remainder (Fig. 5 geometry).
    cases.append(vector_case("prime-spatial", 97, 6, spatial=True))
    # R = 1: 100 = 34 passes of 3 with a 1-wide last pass.
    cases.append(vector_case("r1-temporal", 100, 3, spatial=False))
    # R = P collapse-to-perfect: 100 = 20 x 5 exactly.
    cases.append(vector_case("perfect-collapse", 100, 5, spatial=True))

    # Imperfect spatial GEMM with a prime M (multicast + reduction mix).
    m = rng.choice((7, 11, 13))
    outer, inner, rem = eq5_chain(m, 4)
    gemm = GemmLayer("g", m=m, n=3, k=2).workload()
    cases.append(
        VerifyCase(
            name="adv:imperfect-spatial-gemm",
            arch=glb,
            workload=gemm,
            mapping=Mapping.from_blocks(
                [
                    ("DRAM", [], []),
                    (
                        "GlobalBuffer",
                        [Loop("K", 2), Loop("M", outer)],
                        [Loop("M", inner, rem, spatial=True)],
                    ),
                    ("PERegister", [Loop("N", 3)], []),
                ]
            ),
            source="adversarial:imperfect-spatial-gemm",
        )
    )

    # Bypass combination: weights skip the GLB entirely.
    gemm2 = GemmLayer("g", m=6, n=5, k=4).workload()
    cases.append(
        VerifyCase(
            name="adv:bypass-combo",
            arch=glb,
            workload=gemm2,
            mapping=Mapping.from_blocks(
                [
                    ("DRAM", [Loop("M", 2)], []),
                    (
                        "GlobalBuffer",
                        [Loop("K", 4), Loop("M", 3)],
                        [Loop("N", 5, spatial=True)],
                    ),
                    ("PERegister", [], []),
                ],
                bypass=[("GlobalBuffer", "B")],
            ),
            source="adversarial:bypass-combo",
        )
    )

    # Conv sliding window with an imperfect output-column chain.
    outer, inner, rem = eq5_chain(5, 2)
    conv = ConvLayer("c", c=2, m=2, p=5, q=1, r=3, s=1).workload()
    cases.append(
        VerifyCase(
            name="adv:conv-sliding-window",
            arch=glb,
            workload=conv,
            mapping=Mapping.from_blocks(
                [
                    ("DRAM", [Loop("P", outer)], []),
                    (
                        "GlobalBuffer",
                        [Loop("C", 2), Loop("P", inner, rem)],
                        [Loop("M", 2, spatial=True)],
                    ),
                    ("PERegister", [Loop("R", 3)], []),
                ]
            ),
            source="adversarial:conv-sliding-window",
        )
    )
    return cases


# --------------------------------------------------------------------------
# Hypothesis strategies (optional dependency).
# --------------------------------------------------------------------------


def _require_hypothesis() -> None:
    if not HAS_HYPOTHESIS:
        raise RuntimeError(
            "repro.verify.strategies' Hypothesis strategies need the "
            "optional 'hypothesis' package (pip install repro[test])"
        )


def dim_sizes(max_size: int = 64):
    """Dimension sizes ``1..max_size`` (the old test_io_properties `dims`)."""
    _require_hypothesis()
    return st.integers(min_value=1, max_value=max_size)


def strides(max_stride: int = 3):
    """Convolution strides ``1..max_stride``."""
    _require_hypothesis()
    return st.integers(min_value=1, max_value=max_stride)


def gemm_workloads(max_dim: int = 64):
    """GEMM workloads with dims up to ``max_dim``."""
    _require_hypothesis()
    return st.builds(
        lambda m, n, k: GemmLayer("g", m=m, n=n, k=k).workload(),
        m=dim_sizes(max_dim),
        n=dim_sizes(max_dim),
        k=dim_sizes(max_dim),
    )


def conv_workloads(max_dim: int = 64, max_rs: int = 7):
    """Conv workloads with spatial dims up to ``max_dim``."""
    _require_hypothesis()
    return st.builds(
        lambda c, m, p, q, r, s, stride: ConvLayer(
            "w", c=c, m=m, p=p, q=q, r=r, s=s,
            stride_h=stride, stride_w=stride,
        ).workload(),
        c=dim_sizes(max_dim),
        m=dim_sizes(max_dim),
        p=dim_sizes(max_dim),
        q=dim_sizes(max_dim),
        r=st.integers(min_value=1, max_value=max_rs),
        s=st.integers(min_value=1, max_value=max_rs),
        stride=strides(),
    )


def workloads(max_dim: int = 12):
    """Small mixed workloads (vector / GEMM / conv) for model checks."""
    _require_hypothesis()
    return st.one_of(
        st.sampled_from(VECTOR_SIZE_POOL).map(
            lambda d: vector_workload("v", d)
        ),
        gemm_workloads(max_dim),
        conv_workloads(max_dim, max_rs=3),
    )


def mapspace_kinds():
    """One of the paper's four mapspace kinds."""
    _require_hypothesis()
    return st.sampled_from(list(MapspaceKind))


def two_level_architectures(max_capacity: int = 10**6, max_fanout: int = 32):
    """Arbitrary DRAM + L1 architectures (spec round-trip coverage)."""
    _require_hypothesis()

    def build(capacity, fanout_x, fanout_y, word_bits, bandwidth):
        return Architecture(
            name="prop",
            levels=(
                StorageLevel.build("DRAM", word_bits=word_bits),
                StorageLevel.build(
                    "L1",
                    capacity_words=capacity,
                    word_bits=word_bits,
                    fanout=fanout_x * fanout_y,
                    fanout_x=fanout_x,
                    fanout_y=fanout_y,
                    bandwidth_words_per_cycle=bandwidth,
                ),
            ),
        )

    return st.builds(
        build,
        capacity=st.integers(min_value=1, max_value=max_capacity),
        fanout_x=st.integers(min_value=1, max_value=max_fanout),
        fanout_y=st.integers(min_value=1, max_value=max_fanout),
        word_bits=st.sampled_from([8, 16, 32]),
        bandwidth=st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=64.0)
        ),
    )


def sampled_mappings(max_dim: int = 64):
    """Mappings sampled from a toy-GLB mapspace over random GEMMs.

    Mirrors what the serde round-trip property used to build inline: all
    four mapspace kinds, optional bypass exploration, seed-deterministic.
    """
    _require_hypothesis()

    def build(kind, m, n, k, seed, bypass):
        arch = toy_glb_architecture(6, 4096)
        workload = GemmLayer("g", m, n, k).workload()
        space = MapSpace(arch, workload, kind, explore_bypass=bypass)
        return space.sample(random.Random(seed))

    return st.builds(
        build,
        kind=mapspace_kinds(),
        m=dim_sizes(max_dim),
        n=dim_sizes(max_dim),
        k=dim_sizes(max_dim),
        seed=st.integers(min_value=0, max_value=2**16),
        bypass=st.booleans(),
    )


def verify_cases(sim_bias: float = 0.7):
    """Full differential-verification cases, driven by a drawn seed."""
    _require_hypothesis()
    return st.builds(
        lambda seed: random_case(random.Random(seed), sim_bias=sim_bias),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )

"""Differential verification: cross-check every evaluation path.

The repo prices a mapping four ways — the scalar
:class:`~repro.model.evaluator.Evaluator`, cached
:class:`~repro.model.eval_cache.EvaluationCache` hits, the vectorized
:class:`~repro.model.batch.BatchEvaluator`, and (for toy-sized iteration
spaces) the ground-truth :mod:`~repro.model.reference_sim` walker. The
paper's headline numbers rest on these paths agreeing bit for bit, so this
package keeps an always-on oracle harness over them:

* :mod:`repro.verify.strategies` — seed-deterministic case generators
  (random workloads, preset architectures, valid remaindered mappings,
  adversarial corners) plus reusable Hypothesis strategies built on them;
* :mod:`repro.verify.differential` — the differential runner: evaluates
  each generated mapping through every path, compares access counts,
  energy, cycles, and EDP under the documented tolerance policy, and
  shrinks any divergence to a minimal serialized counterexample;
* :mod:`repro.verify.invariants` — metamorphic invariants: PFM ⊂ Ruby
  containment, counting closed forms vs enumeration, cache-hit
  equivalence, batch/prune parity, and seed determinism of the searchers.

Surfaced as ``repro verify [--quick|--deep]`` and ``make verify-diff``;
see ``docs/verification.md`` for the oracle hierarchy and replay workflow.
"""

from repro.verify.strategies import (
    VerifyCase,
    adversarial_cases,
    eq5_chain,
    preset_architecture,
    preset_architecture_names,
    random_case,
    random_workload,
)
from repro.verify.differential import (
    CaseReport,
    DifferentialConfig,
    DifferentialReport,
    Divergence,
    compare_case,
    replay_counterexample,
    run_differential,
    shrink_case,
)
from repro.verify.invariants import (
    InvariantReport,
    run_invariants,
)

__all__ = [
    "VerifyCase",
    "adversarial_cases",
    "eq5_chain",
    "preset_architecture",
    "preset_architecture_names",
    "random_case",
    "random_workload",
    "CaseReport",
    "DifferentialConfig",
    "DifferentialReport",
    "Divergence",
    "compare_case",
    "replay_counterexample",
    "run_differential",
    "shrink_case",
    "InvariantReport",
    "run_invariants",
]

"""Differential cross-checking of every evaluation path.

For one :class:`~repro.verify.strategies.VerifyCase` the runner prices the
mapping through every path the repo has:

* **scalar** — the plain :class:`~repro.model.evaluator.Evaluator`
  (validity -> access counts -> energy), the comparison baseline;
* **cache** — the same evaluator behind an
  :class:`~repro.model.eval_cache.EvaluationCache`: the miss, the hit, and
  ``evaluate_fresh`` must all reproduce the baseline exactly;
* **batch-single** — the vectorized
  :class:`~repro.model.batch.BatchEvaluator` on a one-row batch;
* **batch-packed** — the same engine with the mapping hidden among decoy
  rows (packing must not perturb any row);
* **reference-sim** — for toy-sized iteration spaces, the ground-truth
  :func:`~repro.model.reference_sim.simulate` walker, compared against the
  analytical access counts and cycle model.

Tolerance policy (see ``docs/verification.md``): integer quantities
(cycles, access counts) compare exactly; float quantities (energy, EDP,
utilization) compare exactly by default — the batch engine promises
bit-exactness — with an optional ULP budget for experimentation. The one
documented exception is the conservative corner of the analytical model
(spatial remainder on a relevant dim under an irrelevant counting loop),
where the closed form may overcount but never undercount; there the
reference-sim comparison enforces ``analytical >= simulated`` plus a
bounded slack instead of equality.

A divergence shrinks greedily to a minimal mapping that still diverges and
is dumped through :mod:`repro.io.serde` as a replayable counterexample
(``repro verify --replay FILE``).
"""

from __future__ import annotations

import math
import random
import struct
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.energy.accelergy import estimate_energy_table
from repro.energy.table import EnergyTable
from repro.exceptions import ReproError, VerificationError
from repro.io.serde import (
    architecture_from_dict,
    architecture_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.mapping.chains import chain_coverage
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.model.access_counts import compute_access_counts
from repro.model.eval_cache import EvaluationCache
from repro.model.evaluator import Evaluation, Evaluator
from repro.model.latency import compute_cycles
from repro.model.reference_sim import SimulationTooLargeError, simulate
from repro.verify.strategies import VerifyCase, adversarial_cases, random_case

#: Iteration-point budget for reference-sim cross-checks. Lower than the
#: simulator's own ceiling: verification favors many small oracles over a
#: few slow ones.
DEFAULT_SIM_POINTS = 20_000

#: Conservative-corner slack bounds (mirrors the reference-sim test suite):
#: the analytical overcount may not exceed ``max(sim * RATIO, sim + PAD)``.
CONSERVATIVE_RATIO = 3.0
CONSERVATIVE_PAD = 12

__all__ = [
    "CaseReport",
    "DifferentialConfig",
    "DifferentialReport",
    "Divergence",
    "VerificationError",
    "compare_case",
    "counterexample_to_dict",
    "replay_counterexample",
    "run_differential",
    "shrink_case",
    "ulp_distance",
]


def ulp_distance(a: float, b: float) -> float:
    """Number of representable doubles between ``a`` and ``b``.

    Returns ``inf`` for NaN/infinite inputs or sign disagreement (other
    than exact zero); 0 when bit-identical.
    """
    if a == b:
        return 0.0
    if math.isnan(a) or math.isnan(b) or math.isinf(a) or math.isinf(b):
        return float("inf")

    def ordered(x: float) -> int:
        (bits,) = struct.unpack("<q", struct.pack("<d", x))
        return bits if bits >= 0 else -(bits & 0x7FFFFFFFFFFFFFFF)

    return float(abs(ordered(a) - ordered(b)))


@dataclass(frozen=True)
class Divergence:
    """One quantity on which two evaluation paths disagree."""

    path: str  # e.g. "cache-hit", "batch-single", "reference-sim"
    quantity: str  # e.g. "energy_pj", "cycles", "reads[(1, 'X')]"
    expected: Any  # baseline-side value
    actual: Any  # diverging-path value
    detail: str = ""

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.path}: {self.quantity} expected {self.expected!r}, "
            f"got {self.actual!r}{extra}"
        )


@dataclass
class CaseReport:
    """Outcome of differentially checking one case."""

    case: VerifyCase
    paths_checked: List[str] = field(default_factory=list)
    ref_sim_checked: bool = False
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class DifferentialConfig:
    """Knobs of one differential run (the CLI's --quick/--deep profiles)."""

    cases: int = 500
    seed: int = 0
    min_ref_sim: int = 50
    max_sim_points: int = DEFAULT_SIM_POINTS
    decoys: int = 6
    sim_bias: float = 0.7
    include_adversarial: bool = True
    max_divergent_cases: int = 5
    dump_dir: Optional[str] = None
    energy_ulps: float = 0.0  # float-comparison budget; 0 = bit-exact
    shrink_budget: int = 200  # compare_case calls the shrinker may spend


@dataclass
class DifferentialReport:
    """Aggregate outcome of a differential run."""

    config: DifferentialConfig
    cases_checked: int = 0
    path_counts: Dict[str, int] = field(default_factory=dict)
    ref_sim_checks: int = 0
    divergent: List[CaseReport] = field(default_factory=list)
    counterexample_paths: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergent

    def summary(self) -> str:
        lines = [
            f"differential: {self.cases_checked} cases  "
            f"ref-sim cross-checks={self.ref_sim_checks}  "
            f"divergent={len(self.divergent)}  "
            f"elapsed={self.elapsed_s:.1f}s"
        ]
        parts = "  ".join(
            f"{name}={count}" for name, count in sorted(self.path_counts.items())
        )
        if parts:
            lines.append(f"  paths: {parts}")
        for report in self.divergent:
            lines.append(f"  DIVERGENT {report.case.name} [{report.case.source}]")
            for divergence in report.divergences[:4]:
                lines.append(f"    {divergence.describe()}")
        for path in self.counterexample_paths:
            lines.append(f"  counterexample: {path}")
        return "\n".join(lines)


# -------------------------------------------------------------- comparison


def _float_divergence(
    path: str,
    quantity: str,
    expected: float,
    actual: float,
    ulps: float,
) -> Optional[Divergence]:
    distance = ulp_distance(expected, actual)
    if distance <= ulps:
        return None
    return Divergence(
        path, quantity, expected, actual, detail=f"{distance:g} ulps apart"
    )


def _compare_evaluations(
    path: str,
    baseline: Evaluation,
    other: Evaluation,
    ulps: float,
    check_counts: bool = True,
) -> List[Divergence]:
    """All-field comparison of a path's Evaluation against the baseline."""
    divergences: List[Divergence] = []
    if baseline.valid != other.valid:
        return [Divergence(path, "valid", baseline.valid, other.valid)]
    if not baseline.valid:
        if tuple(baseline.violations) != tuple(other.violations):
            divergences.append(
                Divergence(
                    path, "violations", baseline.violations, other.violations
                )
            )
        return divergences
    if baseline.cycles != other.cycles:
        divergences.append(
            Divergence(path, "cycles", baseline.cycles, other.cycles)
        )
    for quantity in ("energy_pj", "utilization", "edp"):
        maybe = _float_divergence(
            path, quantity,
            getattr(baseline, quantity), getattr(other, quantity), ulps,
        )
        if maybe is not None:
            divergences.append(maybe)
    if check_counts and baseline.access_counts and other.access_counts:
        for label, a, b in (
            ("reads", baseline.access_counts.reads, other.access_counts.reads),
            ("writes", baseline.access_counts.writes, other.access_counts.writes),
        ):
            for key in sorted(set(a) | set(b)):
                if a.get(key, 0) != b.get(key, 0):
                    divergences.append(
                        Divergence(
                            path, f"{label}[{key}]", a.get(key, 0), b.get(key, 0)
                        )
                    )
    return divergences


def _check_cache_path(
    case: VerifyCase, table: EnergyTable, baseline: Evaluation, ulps: float
) -> List[Divergence]:
    """Miss, hit, and evaluate_fresh must all reproduce the baseline."""
    cache = EvaluationCache()
    evaluator = Evaluator(case.arch, case.workload, table, cache=cache)
    miss = evaluator.evaluate(case.mapping)
    hit = evaluator.evaluate(case.mapping)
    fresh = evaluator.evaluate_fresh(case.mapping)
    divergences = _compare_evaluations("cache-miss", baseline, miss, ulps)
    divergences += _compare_evaluations("cache-hit", baseline, hit, ulps)
    divergences += _compare_evaluations("cache-fresh", baseline, fresh, ulps)
    if cache.hits < 1:
        divergences.append(
            Divergence("cache-hit", "cache.hits", ">= 1", cache.hits,
                       detail="second lookup did not hit")
        )
    return divergences


def _batch_row_divergences(
    path: str,
    baseline: Evaluation,
    outcome: Any,
    row: int,
    ulps: float,
) -> List[Divergence]:
    """Compare one batch row against the scalar baseline evaluation."""
    divergences: List[Divergence] = []
    row_valid = bool(outcome.valid[row])
    if baseline.valid != row_valid:
        return [Divergence(path, "valid", baseline.valid, row_valid)]
    if not baseline.valid:
        if float(outcome.metric[row]) != float("inf"):
            divergences.append(
                Divergence(
                    path, "metric", float("inf"), float(outcome.metric[row]),
                    detail="invalid row must price as inf",
                )
            )
        return divergences
    if bool(outcome.pruned[row]):
        return [
            Divergence(path, "pruned", False, True,
                       detail="unpruned comparison row was pruned")
        ]
    fallback_eval = outcome.evaluations.get(row)
    if fallback_eval is not None:
        return _compare_evaluations(
            f"{path}-fallback", baseline, fallback_eval, ulps
        )
    if baseline.cycles != int(outcome.cycles[row]):
        divergences.append(
            Divergence(path, "cycles", baseline.cycles, int(outcome.cycles[row]))
        )
    for quantity, actual in (
        ("energy_pj", float(outcome.energy_pj[row])),
        ("utilization", float(outcome.utilization[row])),
        ("edp", float(outcome.metric[row])),
    ):
        maybe = _float_divergence(
            path, quantity, getattr(baseline, quantity), actual, ulps
        )
        if maybe is not None:
            divergences.append(maybe)
    return divergences


def _check_batch_paths(
    case: VerifyCase,
    table: EnergyTable,
    baseline: Evaluation,
    decoys: Sequence[Mapping],
    ulps: float,
) -> Tuple[List[str], List[Divergence]]:
    """One-row and packed-among-decoys batch evaluation vs the baseline."""
    from repro.model.batch import BatchEvaluator, pack_mappings

    engine = BatchEvaluator(Evaluator(case.arch, case.workload, table))
    if not engine.supported:
        return [], []
    layout = engine.layout
    assert layout is not None
    paths: List[str] = []
    divergences: List[Divergence] = []
    try:
        single = pack_mappings(layout, [case.mapping])
    except ReproError as error:
        return [], [
            Divergence("batch-single", "packable", "packed", "error",
                       detail=str(error))
        ]
    outcome = engine.evaluate_batch(single)
    paths.append("batch-single")
    divergences += _batch_row_divergences(
        "batch-single", baseline, outcome, 0, ulps
    )
    if decoys:
        rows = list(decoys)
        target = len(rows) // 2
        rows.insert(target, case.mapping)
        try:
            packed = pack_mappings(layout, rows)
        except ReproError:
            return paths, divergences  # decoys unpackable; single row stands
        packed_outcome = engine.evaluate_batch(packed)
        paths.append("batch-packed")
        divergences += _batch_row_divergences(
            "batch-packed", baseline, packed_outcome, target, ulps
        )
    return paths, divergences


def _conservative_corner(case: VerifyCase, tensor) -> bool:
    """The documented approximation corners of the analytical model.

    Two geometries make the closed form a conservative overcount (never an
    undercount) for a tensor:

    * a *spatial* remainder on a relevant dim — an instance idling through
      the remainder window keeps its resident tile, so revisits are not
      refetches (see the ``repro.model.access_counts`` docstring);
    * a *temporal* remainder on a relevant dim under an irrelevant
      counting loop — when the remainder pass collapses to a single tile,
      consecutive revisits across the counting loop see an unchanged tile
      and cost nothing, but the closed form still multiplies the trip
      count.

    Both need a second dimension to supply the counting loop, so rank-1
    workloads always compare exactly.
    """
    if len(case.workload.dims) <= 1:
        return False
    relevant = tensor.relevant_dims
    placed = list(case.mapping.placed_loops())
    if any(
        p.loop.spatial and not p.loop.is_perfect and p.loop.dim in relevant
        for p in placed
    ):
        return True
    if not any(
        not p.loop.spatial and not p.loop.is_perfect and p.loop.dim in relevant
        for p in placed
    ):
        return False
    return any(
        p.loop.dim not in relevant and p.loop.bound > 1 for p in placed
    )


def _check_reference_sim(
    case: VerifyCase,
    baseline: Evaluation,
    max_points: int,
) -> Tuple[bool, List[Divergence]]:
    """Ground-truth walker vs the analytical counts and cycle model.

    Only runs when the mapping's per-dimension chains cover the workload
    exactly (otherwise Eq. 5 semantics are undefined) and the iteration
    space fits the point budget. Returns ``(checked, divergences)``.
    """
    structure = [nest.level_name for nest in case.mapping.levels]
    if structure != [level.name for level in case.arch.levels]:
        return False, []
    for dim, size in case.workload.dim_sizes.items():
        loops = [
            p.loop for p in case.mapping.placed_loops() if p.loop.dim == dim
        ]
        if chain_coverage(loops) != size:
            return False, []
    try:
        sim = simulate(
            case.arch, case.workload, case.mapping, max_points=max_points
        )
    except SimulationTooLargeError:
        return False, []
    divergences: List[Divergence] = []
    counts = compute_access_counts(case.arch, case.workload, case.mapping)
    cycles = compute_cycles(case.workload, case.mapping)
    if sim.macs != case.workload.total_operations:
        divergences.append(
            Divergence("reference-sim", "macs",
                       case.workload.total_operations, sim.macs)
        )
    if sim.cycles != cycles:
        divergences.append(
            Divergence("reference-sim", "cycles", cycles, sim.cycles)
        )
    for dim, size in case.workload.dim_sizes.items():
        if sim.coverage.get(dim) != size:
            divergences.append(
                Divergence("reference-sim", f"coverage[{dim}]",
                           size, sim.coverage.get(dim))
            )
    for tensor in case.workload.tensors:
        approximate = _conservative_corner(case, tensor)
        for level in range(len(case.arch.levels)):
            key = (level, tensor.name)
            for label, analytical_counts, sim_counts in (
                ("reads", counts.reads, sim.reads),
                ("writes", counts.writes, sim.writes),
            ):
                analytical = analytical_counts.get(key, 0)
                simulated = sim_counts.get(key, 0)
                if approximate:
                    if analytical < simulated:
                        divergences.append(
                            Divergence(
                                "reference-sim", f"{label}[{key}]",
                                simulated, analytical,
                                detail="conservative corner must never "
                                "undercount",
                            )
                        )
                    elif analytical > max(
                        simulated * CONSERVATIVE_RATIO,
                        simulated + CONSERVATIVE_PAD,
                    ):
                        divergences.append(
                            Divergence(
                                "reference-sim", f"{label}[{key}]",
                                simulated, analytical,
                                detail="conservative overcount beyond "
                                "documented slack",
                            )
                        )
                elif analytical != simulated:
                    divergences.append(
                        Divergence(
                            "reference-sim", f"{label}[{key}]",
                            simulated, analytical,
                        )
                    )
    # The scalar Evaluation must carry the same counts the analytical
    # model produces — this is the hook that catches a corrupted
    # access-count pipeline inside the Evaluator itself.
    if baseline.valid and baseline.access_counts is not None:
        for label, eval_counts, direct_counts in (
            ("reads", baseline.access_counts.reads, counts.reads),
            ("writes", baseline.access_counts.writes, counts.writes),
        ):
            for key in sorted(set(eval_counts) | set(direct_counts)):
                if eval_counts.get(key, 0) != direct_counts.get(key, 0):
                    divergences.append(
                        Divergence(
                            "scalar-vs-analytical", f"{label}[{key}]",
                            direct_counts.get(key, 0),
                            eval_counts.get(key, 0),
                        )
                    )
    return True, divergences


_TABLE_MEMO: Dict[str, EnergyTable] = {}


def _energy_table_for(arch) -> EnergyTable:
    """Per-architecture energy table, memoized on the serialized spec."""
    import json

    key = json.dumps(architecture_to_dict(arch), sort_keys=True)
    table = _TABLE_MEMO.get(key)
    if table is None:
        table = estimate_energy_table(arch)
        if len(_TABLE_MEMO) > 64:
            _TABLE_MEMO.clear()
        _TABLE_MEMO[key] = table
    return table


def compare_case(
    case: VerifyCase,
    decoys: Sequence[Mapping] = (),
    max_sim_points: int = DEFAULT_SIM_POINTS,
    energy_ulps: float = 0.0,
    table: Optional[EnergyTable] = None,
) -> CaseReport:
    """Run every evaluation path on one case and collect divergences."""
    table = table or _energy_table_for(case.arch)
    report = CaseReport(case=case)
    baseline = Evaluator(case.arch, case.workload, table).evaluate(case.mapping)
    report.paths_checked.append("scalar")
    report.divergences += _check_cache_path(case, table, baseline, energy_ulps)
    report.paths_checked.append("cache")
    batch_paths, batch_divergences = _check_batch_paths(
        case, table, baseline, decoys, energy_ulps
    )
    report.paths_checked += batch_paths
    report.divergences += batch_divergences
    checked, sim_divergences = _check_reference_sim(
        case, baseline, max_sim_points
    )
    if checked:
        report.ref_sim_checked = True
        report.paths_checked.append("reference-sim")
        report.divergences += sim_divergences
    return report


# ---------------------------------------------------------------- shrinking


def _mapping_size(mapping: Mapping) -> Tuple[int, int, int]:
    """Lexicographic shrink metric: fewer loops beats smaller bounds."""
    loops = [p.loop for p in mapping.placed_loops()]
    return (
        sum(1 for l in loops if l.bound > 1),
        sum(l.bound for l in loops),
        len(mapping.bypass),
    )


def _collapse_dim_chain(mapping: Mapping, dim: str) -> Optional[Mapping]:
    """Replace a dim's whole loop chain with one temporal loop.

    The replacement bound is the chain's coverage, so validity along that
    dimension is preserved — this is the transform that lets handcrafted
    Eq. 5 chains (where any single-loop edit breaks coverage) shrink at
    all.
    """
    dim_loops = [p.loop for p in mapping.placed_loops() if p.loop.dim == dim]
    if len([l for l in dim_loops if l.bound > 1]) < 2:
        return None
    total = chain_coverage(dim_loops)
    placed = False
    levels: List[LevelNest] = []
    for nest in mapping.levels:
        temporal = []
        for loop in nest.temporal:
            if loop.dim == dim:
                if not placed:
                    temporal.append(Loop(dim, total))
                    placed = True
                continue
            temporal.append(loop)
        spatial = []
        for loop in nest.spatial:
            if loop.dim == dim:
                if not placed:
                    temporal.append(Loop(dim, total))
                    placed = True
                continue
            spatial.append(loop)
        levels.append(
            LevelNest(
                level_name=nest.level_name,
                temporal=tuple(temporal),
                spatial=tuple(spatial),
            )
        )
    return Mapping(levels=tuple(levels), bypass=mapping.bypass)


def _shrink_candidates(mapping: Mapping) -> List[Mapping]:
    """All one-step simplifications of ``mapping``, smallest-first."""
    candidates: List[Mapping] = []
    for dim in sorted({p.loop.dim for p in mapping.placed_loops()}):
        collapsed = _collapse_dim_chain(mapping, dim)
        if collapsed is not None:
            candidates.append(collapsed)
    for pair in sorted(mapping.bypass):
        candidates.append(
            Mapping(
                levels=mapping.levels,
                bypass=frozenset(mapping.bypass - {pair}),
            )
        )
    for i, nest in enumerate(mapping.levels):
        flat = list(nest.temporal + nest.spatial)
        split = len(nest.temporal)
        for j, loop in enumerate(flat):
            edits: List[Optional[Loop]] = []
            if loop.bound > 1:
                edits.append(None)  # drop the loop
                half = loop.bound // 2
                edits.append(
                    replace(loop, bound=half, remainder=min(loop.remainder, half))
                )
            if not loop.is_perfect:
                edits.append(replace(loop, remainder=loop.bound))
            for edit in edits:
                new_flat = list(flat)
                if edit is None:
                    new_flat.pop(j)
                else:
                    new_flat[j] = edit
                new_split = split - (1 if edit is None and j < split else 0)
                levels = list(mapping.levels)
                levels[i] = LevelNest(
                    level_name=nest.level_name,
                    temporal=tuple(new_flat[:new_split]),
                    spatial=tuple(new_flat[new_split:]),
                )
                candidates.append(
                    Mapping(levels=tuple(levels), bypass=mapping.bypass)
                )
    candidates.sort(key=_mapping_size)
    return candidates


def shrink_case(
    case: VerifyCase,
    decoys: Sequence[Mapping] = (),
    max_sim_points: int = DEFAULT_SIM_POINTS,
    energy_ulps: float = 0.0,
    budget: int = 200,
) -> Tuple[VerifyCase, CaseReport]:
    """Greedily minimize a diverging case while it still diverges.

    Returns the smallest case found and its report. ``budget`` caps the
    number of candidate re-comparisons (each runs the full path set).
    """
    current = case
    report = compare_case(
        current, decoys, max_sim_points=max_sim_points, energy_ulps=energy_ulps
    )
    if report.ok:
        return current, report
    spent = 0
    improved = True
    while improved and spent < budget:
        improved = False
        for candidate_mapping in _shrink_candidates(current.mapping):
            if _mapping_size(candidate_mapping) >= _mapping_size(current.mapping):
                continue
            if spent >= budget:
                break
            candidate = replace(current, mapping=candidate_mapping)
            try:
                candidate_report = compare_case(
                    candidate, decoys,
                    max_sim_points=max_sim_points, energy_ulps=energy_ulps,
                )
            except ReproError:
                spent += 1
                continue
            spent += 1
            if not candidate_report.ok:
                current = candidate
                report = candidate_report
                improved = True
                break
    return current, report


# ------------------------------------------------------------ serialization


def counterexample_to_dict(
    case: VerifyCase,
    report: CaseReport,
    config: Optional[DifferentialConfig] = None,
    original: Optional[VerifyCase] = None,
) -> Dict[str, Any]:
    """Serialize a (shrunk) diverging case for replay."""
    payload: Dict[str, Any] = {
        "schema": 1,
        "kind": "verify-counterexample",
        "case": {
            "name": case.name,
            "source": case.source,
            "mapspace_kind": case.kind.value if case.kind else None,
        },
        "architecture": architecture_to_dict(case.arch),
        "workload": workload_to_dict(case.workload),
        "mapping": mapping_to_dict(case.mapping),
        "divergences": [
            {
                "path": d.path,
                "quantity": d.quantity,
                "expected": repr(d.expected),
                "actual": repr(d.actual),
                "detail": d.detail,
            }
            for d in report.divergences
        ],
    }
    if original is not None and original.mapping != case.mapping:
        payload["original_mapping"] = mapping_to_dict(original.mapping)
    if config is not None:
        payload["config"] = {
            "seed": config.seed,
            "decoys": config.decoys,
            "max_sim_points": config.max_sim_points,
            "energy_ulps": config.energy_ulps,
        }
    return payload


def replay_counterexample(path: str) -> CaseReport:
    """Re-run the differential comparison of a dumped counterexample."""
    data = load_json(path)
    if data.get("kind") != "verify-counterexample":
        raise ReproError(f"{path} is not a verify counterexample dump")
    arch = architecture_from_dict(data["architecture"])
    workload = workload_from_dict(data["workload"])
    mapping = mapping_from_dict(data["mapping"])
    config = data.get("config", {})
    kind = data["case"].get("mapspace_kind")
    case = VerifyCase(
        name=data["case"].get("name", "replay"),
        arch=arch,
        workload=workload,
        mapping=mapping,
        kind=MapspaceKind(kind) if kind else None,
        source=data["case"].get("source", "replay"),
    )
    decoys = _decoys_for(case, random.Random(config.get("seed", 0)),
                         config.get("decoys", 6))
    return compare_case(
        case,
        decoys,
        max_sim_points=config.get("max_sim_points", DEFAULT_SIM_POINTS),
        energy_ulps=config.get("energy_ulps", 0.0),
    )


# ------------------------------------------------------------------ runner


def _decoys_for(
    case: VerifyCase, rng: random.Random, count: int
) -> List[Mapping]:
    """Deterministic decoy mappings drawn from the case's own mapspace."""
    if count <= 0:
        return []
    kind = case.kind or MapspaceKind.RUBY
    try:
        space = MapSpace(case.arch, case.workload, kind)
        return space.sample_many(count, rng)
    except ReproError:
        return []


def run_differential(
    config: DifferentialConfig,
    on_case: Optional[Callable[[int, CaseReport], None]] = None,
) -> DifferentialReport:
    """Run the full differential sweep described by ``config``.

    Generation is deterministic in ``config.seed``. After the main sweep,
    extra sim-biased cases are drawn until at least ``config.min_ref_sim``
    reference-sim cross-checks have run (bounded at 4x the case budget).
    """
    started = time.monotonic()
    rng = random.Random(config.seed)
    report = DifferentialReport(config=config)
    dump_dir = Path(config.dump_dir) if config.dump_dir else None

    def handle(index: int, case: VerifyCase) -> None:
        decoys = _decoys_for(case, rng, config.decoys)
        case_report = compare_case(
            case,
            decoys,
            max_sim_points=config.max_sim_points,
            energy_ulps=config.energy_ulps,
        )
        report.cases_checked += 1
        if case_report.ref_sim_checked:
            report.ref_sim_checks += 1
        for path in case_report.paths_checked:
            report.path_counts[path] = report.path_counts.get(path, 0) + 1
        if not case_report.ok:
            shrunk_case, shrunk_report = shrink_case(
                case,
                decoys,
                max_sim_points=config.max_sim_points,
                energy_ulps=config.energy_ulps,
                budget=config.shrink_budget,
            )
            report.divergent.append(shrunk_report)
            if dump_dir is not None:
                dump_dir.mkdir(parents=True, exist_ok=True)
                dump_path = dump_dir / (
                    f"verify_counterexample_{len(report.divergent)}.json"
                )
                save_json(
                    counterexample_to_dict(
                        shrunk_case, shrunk_report, config, original=case
                    ),
                    dump_path,
                )
                report.counterexample_paths.append(str(dump_path))
        if on_case is not None:
            on_case(index, case_report)

    index = 0
    if config.include_adversarial:
        for case in adversarial_cases(rng):
            if len(report.divergent) >= config.max_divergent_cases:
                break
            handle(index, case)
            index += 1
    while (
        report.cases_checked < config.cases
        and len(report.divergent) < config.max_divergent_cases
    ):
        handle(index, random_case(rng, sim_bias=config.sim_bias, index=index))
        index += 1
    attempts = 0
    while (
        report.ref_sim_checks < config.min_ref_sim
        and attempts < 4 * config.cases
        and len(report.divergent) < config.max_divergent_cases
    ):
        handle(index, random_case(rng, sim_bias=1.0, index=index))
        index += 1
        attempts += 1
    report.elapsed_s = time.monotonic() - started
    return report

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``search`` — find the best mapping of a conv/GEMM on a preset
  architecture and print it as a loopnest (optionally save it as JSON).
* ``evaluate`` — re-evaluate a saved mapping JSON against saved (or
  preset) architecture and workload specs.
* ``experiment`` — run one of the paper-reproduction harnesses
  (fig7a..fig7d, table1, fig8, fig9, fig10, fig11, fig12, fig13) and
  print its report; ``--journal`` makes fig8–fig13 fault-tolerant
  (checkpointed, resumable, per-search timeouts).
* ``campaign`` — run/resume/inspect a fault-tolerant search campaign
  over a whole workload suite (``campaign run``, ``campaign resume``,
  ``campaign status``; ``status --follow`` polls a live journal).
* ``obs`` — inspect a span-trace JSONL written via ``--trace``
  (``obs dump``, ``obs summarize``).
* ``bench`` — benchmark regression ledger: ``bench record`` normalizes
  BENCH_*.json payloads into a machine-tagged JSONL history,
  ``bench compare`` diffs the latest record against its baseline and
  exits nonzero on a thresholded regression.
* ``serve`` — run the mapper-as-a-service HTTP server: JSON search
  requests over ``POST /v1/search`` with job polling, request
  coalescing, admission control, a warm evaluator cache, and journaled
  crash recovery (``--journal`` + ``--resume``); see ``docs/service.md``.
* ``verify`` — differential verification: cross-check the scalar, cached,
  batch, and reference-simulator evaluation paths on generated mappings
  and run the metamorphic invariant suite (``--quick`` / ``--deep``
  profiles, ``--seed N``, ``--replay COUNTEREXAMPLE.json``); see
  ``docs/verification.md``.

``search``, ``experiment``, and the ``campaign`` run/resume commands
accept ``--trace PATH`` (stream span records as JSONL),
``--metrics-out PATH`` (write the metrics-registry snapshot as JSON on
exit), ``--serve-metrics PORT`` (serve live ``/metrics`` + ``/progress``
HTTP endpoints for the run's duration; 0 picks an ephemeral port), and
``--progress`` (live search-progress/ETA line on stderr); see
``docs/observability.md``.

Failures exit with per-error-class status codes (SpecError=2,
InvalidMappingError=3, MapspaceError=4, SearchError=5,
EvaluationError=6, JobTimeoutError=7, CampaignError=8,
VerificationError=9, BenchLedgerError=10) and a one-line stderr
message; pass ``--debug`` for the full traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.arch import eyeriss_like, simba_like, toy_linear_architecture
from repro.core.mapper import find_best_mapping
from repro.exceptions import ReproError
from repro.io import (
    architecture_from_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.mapping.render import render_mapping
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model.evaluator import Evaluator
from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer

ARCH_PRESETS = {
    "eyeriss": lambda: eyeriss_like(),
    "simba": lambda: simba_like(),
    "toy16": lambda: toy_linear_architecture(16),
    "toy9": lambda: toy_linear_architecture(9),
}


def _parse_shape(text: str) -> Dict[str, int]:
    """Parse ``C=512,M=128,P=28`` into a dict."""
    shape: Dict[str, int] = {}
    for chunk in text.split(","):
        if not chunk:
            continue
        key, _, value = chunk.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"bad shape fragment {chunk!r}; expected DIM=SIZE"
            )
        shape[key.strip().upper()] = int(value)
    return shape


def _build_workload(args: argparse.Namespace):
    if args.workload_json:
        return workload_from_dict(load_json(args.workload_json))
    if args.conv:
        shape = _parse_shape(args.conv)
        return ConvLayer(
            name=args.name,
            n=shape.get("N", 1),
            c=shape.get("C", 1),
            m=shape.get("M", 1),
            p=shape.get("P", 1),
            q=shape.get("Q", 1),
            r=shape.get("R", 1),
            s=shape.get("S", 1),
        ).workload()
    if args.gemm:
        shape = _parse_shape(args.gemm)
        return GemmLayer(
            name=args.name,
            m=shape.get("M", 1),
            n=shape.get("N", 1),
            k=shape.get("K", 1),
        ).workload()
    raise SystemExit("specify one of --conv, --gemm, or --workload-json")


def _build_arch(args: argparse.Namespace):
    if args.arch_json:
        return architecture_from_dict(load_json(args.arch_json))
    return ARCH_PRESETS[args.arch]()


def _format_search_stats(stats: Dict) -> List[str]:
    """Render SearchResult.stats (throughput, pool mode, cache) for the CLI."""
    if not stats:
        return []
    lines: List[str] = []
    summary = []
    if stats.get("evals_per_sec"):
        summary.append(f"throughput={stats['evals_per_sec']:,.0f} evals/s")
    if stats.get("elapsed_s") is not None:
        summary.append(f"elapsed={stats['elapsed_s']:.2f}s")
    if stats.get("pool_mode"):
        summary.append(f"pool={stats['pool_mode']}")
    cache = stats.get("cache")
    if cache is not None:
        rate = cache.get("hit_rate")
        # hit_rate is None when the cache saw no lookups during the run.
        summary.append(
            f"cache-hit-rate={rate:.1%}" if rate is not None
            else "cache-hit-rate=n/a"
        )
    if summary:
        lines.append("  ".join(summary))
    # The batch sub-dict is schema-uniform across searchers (present with
    # zero counters on scalar paths) — gate the footer on activity, never
    # on key existence.
    batch = stats.get("batch")
    if batch and batch.get("candidates"):
        lines.append(
            f"  batch: {batch['batches']:,} batches  "
            f"{batch['candidates']:,} candidates  "
            f"pruned={batch['pruned']:,} ({batch['prune_rate']:.1%})  "
            f"scalar-fallback={batch['fallback']:,}"
        )
    bnb = stats.get("bnb")
    # Gate on either counter: a parallel (or shallow) run can defer every
    # top-level subtree straight to leaf pricing without expanding a node.
    if bnb and (bnb.get("nodes_expanded") or bnb.get("leaves_deferred")):
        tightness = bnb.get("bound_tightness")
        tightness_part = (
            f"  bound-tightness={tightness:.1%}" if tightness is not None else ""
        )
        lines.append(
            f"  bnb: {bnb['nodes_expanded']:,} nodes expanded  "
            f"leaves-deferred={bnb.get('leaves_deferred', 0):,}  "
            f"subtrees-pruned={bnb['subtrees_pruned']:,}  "
            f"infeasible={bnb['infeasible_subtrees']:,}{tightness_part}"
        )
    pool = stats.get("pool")
    if pool:
        lines.append(
            f"  pool: {pool['workers']} workers  "
            f"depth={pool['partition_depth']}  units={pool['num_units']:,}  "
            f"transport={pool.get('transport') or 'n/a'}"
        )
    for row in stats.get("workers", ()):
        hit_rate = row.get("cache_hit_rate")
        cache_part = f"  cache-hit={hit_rate:.1%}" if hit_rate is not None else ""
        rate = row.get("evals_per_sec") or 0.0
        lines.append(
            f"  worker {row['worker']}: seed={row['seed']}  "
            f"evaluated={row['num_evaluated']:,}  valid={row['num_valid']:,}  "
            f"{rate:,.0f} evals/s{cache_part}  ({row['terminated_by']})"
        )
    return lines


@contextmanager
def _obs_session(args: argparse.Namespace) -> Iterator[None]:
    """Route a command through ``obs_scope`` when any observability flag
    (``--trace``, ``--metrics-out``, ``--serve-metrics``, ``--progress``)
    was given; a no-op otherwise.

    The registry snapshot is written (and the tracer closed, the HTTP
    server and progress printer stopped) after the command body
    finishes, so the JSON artifacts reflect the whole run.
    """
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    serve = getattr(args, "serve_metrics", None)
    progress = getattr(args, "progress", False)
    if not trace and not metrics_out and serve is None and not progress:
        yield
        return
    from repro.obs import (
        MetricsRegistry,
        ObsServer,
        ProgressPrinter,
        Tracer,
        obs_scope,
    )

    registry = MetricsRegistry()
    # An explicit tracer feeds live spans to the server's /flame even
    # when no --trace file was asked for; with --trace it streams the
    # JSONL too. obs_scope adopts (and does not close) a caller-owned
    # tracer, so close it in the finally below.
    tracer = Tracer(trace or None, registry=registry)
    server = (
        ObsServer(registry, tracer=tracer, port=int(serve))
        if serve is not None
        else None
    )
    printer = ProgressPrinter() if progress else None
    try:
        with obs_scope(registry=registry, tracer=tracer):
            if server is not None:
                server.start()
                # Parsed by tooling (obs_smoke) — keep the format stable.
                print(f"serving live telemetry at {server.url}", flush=True)
            if printer is not None:
                printer.start()
            yield
    finally:
        if printer is not None:
            printer.stop()
        if server is not None:
            server.stop()
        tracer.close()
    if metrics_out:
        save_json(registry.to_json(), metrics_out)
        print(f"metrics saved to {metrics_out}")
    if trace:
        print(f"trace saved to {trace}")


def _cmd_search(args: argparse.Namespace) -> int:
    arch = _build_arch(args)
    workload = _build_workload(args)
    constraints = (
        eyeriss_row_stationary()
        if args.arch == "eyeriss" and args.row_stationary
        else None
    )
    if args.workers > 1 and args.searcher not in ("random", "branch-bound"):
        raise SystemExit(
            "--workers > 1 drives the parallel random or branch-bound "
            "search; combine it with --searcher random or branch-bound"
        )
    if args.workers > 1 and args.searcher == "random":
        from repro.model.eval_cache import DEFAULT_CACHE_SIZE
        from repro.search.parallel import parallel_random_search

        result = parallel_random_search(
            arch,
            workload,
            kind=args.kind,
            constraints=constraints,
            objective=args.objective,
            max_evaluations=args.budget,
            patience=args.patience,
            workers=args.workers,
            seed=args.seed,
            cache_size=0 if args.no_cache else DEFAULT_CACHE_SIZE,
            start_method=args.start_method,
            use_batch=not args.no_batch,
            batch_size=args.batch_size,
        )
    else:
        result = find_best_mapping(
            arch,
            workload,
            kind=args.kind,
            objective=args.objective,
            strategy=args.searcher,
            seed=args.seed,
            max_evaluations=args.budget,
            patience=args.patience,
            constraints=constraints,
            use_batch=not args.no_batch,
            batch_size=args.batch_size,
            workers=args.workers,
            start_method=args.start_method,
        )
    if result.best is None:
        print("no valid mapping found", file=sys.stderr)
        return 1
    best = result.best
    print(arch.describe())
    print()
    print(workload.describe())
    print()
    print(render_mapping(best.mapping))
    print()
    print(
        f"objective={args.objective}  EDP={best.edp:.4e}  "
        f"energy={best.energy_pj:.4e} pJ  cycles={best.cycles:,}  "
        f"utilization={best.utilization:.1%}  "
        f"({result.num_valid}/{result.num_evaluated} valid mappings, "
        f"stopped by {result.terminated_by})"
    )
    for line in _format_search_stats(result.stats):
        print(line)
    if args.save_mapping:
        save_json(mapping_to_dict(best.mapping), args.save_mapping)
        print(f"mapping saved to {args.save_mapping}")
    if args.save_workload:
        save_json(workload_to_dict(workload), args.save_workload)
        print(f"workload saved to {args.save_workload}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    arch = _build_arch(args)
    workload = _build_workload(args)
    mapping = mapping_from_dict(load_json(args.mapping))
    evaluation = Evaluator(arch, workload).evaluate(mapping)
    if not evaluation.valid:
        print("INVALID mapping:", file=sys.stderr)
        for violation in evaluation.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(render_mapping(mapping))
    print()
    print(
        f"EDP={evaluation.edp:.4e}  energy={evaluation.energy_pj:.4e} pJ  "
        f"cycles={evaluation.cycles:,}  "
        f"utilization={evaluation.utilization:.1%}"
    )
    for component, energy in sorted(evaluation.energy_breakdown_pj.items()):
        print(f"  {component:<16} {energy:.4e} pJ")
    return 0


def _experiment_campaign(args: argparse.Namespace):
    """Build the fault-tolerance config for fig8–fig13 runs (or None)."""
    if not getattr(args, "journal", None):
        return None
    from repro.search.campaign import CampaignConfig

    return CampaignConfig(
        journal=args.journal,
        timeout_s=args.timeout,
        retries=args.retries,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments as ex

    name = args.name
    campaign = _experiment_campaign(args)
    if name.startswith("fig7"):
        from repro.experiments.fig07 import SCENARIOS

        key = name[-1]
        if key not in SCENARIOS:
            raise SystemExit(f"unknown fig7 scenario {name!r}")
        result = ex.run_fig7_scenario(
            SCENARIOS[key](), evaluations=args.budget, runs=args.runs
        )
        print(ex.format_fig7(result))
    elif name == "table1":
        print(ex.format_table1(ex.run_table1()))
    elif name == "fig8":
        print(
            ex.format_fig8(
                ex.run_fig8(max_evaluations=args.budget, campaign=campaign)
            )
        )
    elif name == "fig9":
        print(
            ex.format_fig9(
                ex.run_fig9(max_evaluations=args.budget, campaign=campaign)
            )
        )
    elif name == "fig10":
        print(
            ex.format_fig10(
                ex.run_fig10(max_evaluations=args.budget, campaign=campaign)
            )
        )
    elif name == "fig11":
        print(
            ex.format_fig11(
                ex.run_fig11(max_evaluations=args.budget, campaign=campaign)
            )
        )
    elif name == "fig12":
        print(
            ex.format_fig12(
                ex.run_fig12(max_evaluations=args.budget, campaign=campaign)
            )
        )
    elif name in ("fig13", "fig14"):
        print(
            ex.format_fig13(
                ex.run_fig13(
                    suite=args.suite,
                    max_evaluations=args.budget,
                    campaign=campaign,
                )
            )
        )
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


# ----------------------------------------------------------------- campaign


def _parse_kinds(text: str) -> List[str]:
    kinds = [kind.strip() for kind in text.split(",") if kind.strip()]
    if not kinds:
        raise SystemExit("--kinds must name at least one mapspace kind")
    return kinds


def _parse_seeds(text: str) -> List[int]:
    return [int(chunk) for chunk in text.split(",") if chunk.strip()]


def _load_fault_plan(path: Optional[str]):
    if not path:
        return None
    from repro.utils.faults import FaultPlan

    return FaultPlan.from_dict(load_json(path))


def _print_campaign_result(result) -> None:
    print(
        f"campaign: {result.num_ok} ok, {result.num_quarantined} quarantined, "
        f"{result.num_resumed} resumed from journal "
        f"(pool={result.pool_mode}, "
        f"{'complete' if result.complete else 'partial'})"
    )
    for outcome in result.outcomes:
        if outcome.ok:
            marker = "journal" if outcome.from_journal else f"{outcome.attempts} attempt(s)"
            print(
                f"  ok          {outcome.job_id}  "
                f"EDP={outcome.metrics['edp']:.4e}  [{marker}]"
            )
        else:
            error = outcome.error or {}
            print(
                f"  QUARANTINED {outcome.job_id}  "
                f"{error.get('type')}: {error.get('message')}"
            )


def _campaign_settings(args: argparse.Namespace) -> Dict:
    from repro.search.campaign import DEFAULT_RETRIES

    return {
        "workers": args.workers or 1,
        "timeout_s": args.timeout,
        "retries": args.retries if args.retries is not None else DEFAULT_RETRIES,
        "backoff_s": args.backoff,
        "start_method": args.start_method,
    }


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.experiments.campaigns import (
        build_campaign_jobs,
        campaign_header_config,
    )
    from repro.search.campaign import run_campaign

    arch = _build_arch(args)
    kinds = _parse_kinds(args.kinds)
    seeds = _parse_seeds(args.seeds)
    jobs = build_campaign_jobs(
        args.suite,
        arch,
        kinds=kinds,
        objective=args.objective,
        max_evaluations=args.budget,
        patience=args.patience,
        seeds=seeds,
        row_stationary=args.row_stationary,
    )
    settings = _campaign_settings(args)
    header = campaign_header_config(
        suite=args.suite,
        arch_name=args.arch,
        arch_json=args.arch_json,
        kinds=kinds,
        objective=args.objective,
        max_evaluations=args.budget,
        patience=args.patience,
        seeds=seeds,
        row_stationary=args.row_stationary,
        timeout_s=settings["timeout_s"],
        retries=settings["retries"],
        workers=settings["workers"],
    )
    result = run_campaign(
        jobs,
        journal_path=args.journal,
        fault_plan=_load_fault_plan(args.fault_plan),
        resume=not args.fresh,
        retry_quarantined=args.retry_quarantined,
        header_config=header,
        **settings,
    )
    _print_campaign_result(result)
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.exceptions import CampaignError
    from repro.experiments.campaigns import build_campaign_jobs
    from repro.io.journal import Journal
    from repro.search.campaign import run_campaign

    header = Journal(args.journal).header()
    config = header.get("config") or {}
    if not config.get("suite"):
        raise CampaignError(
            f"journal {args.journal}: header carries no suite config; "
            "only journals written by 'campaign run' can be resumed here"
        )
    if config.get("arch_json"):
        arch = architecture_from_dict(load_json(config["arch_json"]))
    else:
        arch = ARCH_PRESETS[config["arch"]]()
    jobs = build_campaign_jobs(
        config["suite"],
        arch,
        kinds=config["kinds"],
        objective=config["objective"],
        max_evaluations=config["max_evaluations"],
        patience=config["patience"],
        seeds=config["seeds"],
        row_stationary=config.get("row_stationary", False),
    )
    retries = args.retries
    if retries is None:
        retries = config.get("retries")
    if retries is None:
        from repro.search.campaign import DEFAULT_RETRIES

        retries = DEFAULT_RETRIES
    result = run_campaign(
        jobs,
        journal_path=args.journal,
        workers=args.workers or config.get("workers") or 1,
        timeout_s=(
            args.timeout if args.timeout is not None else config.get("timeout_s")
        ),
        retries=retries,
        backoff_s=args.backoff,
        resume=True,
        retry_quarantined=args.retry_quarantined,
        start_method=args.start_method,
        header_config=config,
    )
    _print_campaign_result(result)
    return 0


def _print_campaign_status(status: Dict) -> None:
    print(f"journal: {status['journal']}")
    if status["config"].get("suite"):
        config = status["config"]
        print(
            f"config: suite={config['suite']} arch={config.get('arch')} "
            f"kinds={','.join(config.get('kinds', ()))} "
            f"budget={config.get('max_evaluations')}"
        )
    running = status.get("running", [])
    print(
        f"jobs: {status['total']} total, {len(status['ok'])} ok, "
        f"{len(status['quarantined'])} quarantined, "
        f"{len(status['pending'])} pending, {len(running)} running"
    )
    counters = status.get("counters", {})
    for job_id in status["quarantined"]:
        print(f"  QUARANTINED {job_id}{_heartbeat_part(counters, job_id)}")
    for job_id in status["pending"]:
        marker = "running    " if job_id in running else "pending    "
        print(f"  {marker} {job_id}{_heartbeat_part(counters, job_id)}")
    if status["failed_attempts"]:
        total_failures = sum(status["failed_attempts"].values())
        print(f"failed attempts: {total_failures}")
    print("complete" if status["complete"] else "incomplete")


def _heartbeat_part(counters: Dict, job_id: str) -> str:
    """Render one job's heartbeat counters, e.g. `` [start=2 retry=1]``."""
    per_job = counters.get(job_id)
    if not per_job:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(per_job.items()))
    return f"  [{body}]"


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.exceptions import CampaignError
    from repro.search.campaign import CampaignStatusTracker

    follow = getattr(args, "follow", False)
    interval = getattr(args, "interval", 2.0)
    # One tracker for the whole follow loop: each poll reads only the
    # journal bytes appended since the last one (torn tails wait for
    # their newline), instead of re-parsing the file every tick.
    tracker = CampaignStatusTracker(args.journal)
    first = True
    while True:
        try:
            status = tracker.poll()
        except CampaignError:
            # Following a campaign whose journal has not appeared yet (or
            # is still empty) should wait, not die.
            if not follow:
                raise
            if first:
                print(f"waiting for journal {args.journal} ...")
                first = False
            time.sleep(interval)
            continue
        if not first:
            print()
        first = False
        _print_campaign_status(status)
        if not follow or status["complete"]:
            return 0
        time.sleep(interval)


# ---------------------------------------------------------------------- obs


def _cmd_obs(args: argparse.Namespace) -> int:
    """Inspect a span-trace JSONL file (``obs dump`` / ``obs summarize``)."""
    from repro.obs import flame_summary, read_trace, validate_span

    records = read_trace(args.trace_file)
    problems: List[str] = []
    for index, record in enumerate(records):
        for problem in validate_span(record):
            problems.append(f"record {index}: {problem}")
    if args.obs_command == "dump":
        for record in records:
            print(json.dumps(record, sort_keys=True))
    else:
        if not records:
            print("no span records", file=sys.stderr)
            return 1
        print(flame_summary(records))
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    return 0


# -------------------------------------------------------------------- bench


def _cmd_bench_record(args: argparse.Namespace) -> int:
    from repro.obs.bench import record_benchmarks

    record = record_benchmarks(args.files, args.ledger, note=args.note)
    print(
        f"recorded {len(record['entries'])} metric(s) from "
        f"{', '.join(record['sources'])} into {args.ledger}"
    )
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.bench import compare_ledger, format_comparison

    comparison = compare_ledger(
        args.ledger,
        threshold=args.threshold,
        prefer_same_machine=not args.any_machine,
    )
    print(format_comparison(comparison))
    if not comparison.ok:
        print(
            f"bench compare: {len(comparison.regressions)} regression(s) "
            f"beyond {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


# ------------------------------------------------------------------- verify

#: Differential-verification profiles: (cases, min_ref_sim, decoys).
VERIFY_PROFILES = {
    "quick": (500, 50, 6),
    "deep": (5000, 500, 10),
}


def _cmd_verify(args: argparse.Namespace) -> int:
    """Cross-check every evaluation path and the metamorphic invariants."""
    from repro.exceptions import VerificationError
    from repro.verify.differential import (
        DifferentialConfig,
        replay_counterexample,
        run_differential,
    )
    from repro.verify.invariants import run_invariants

    if args.replay:
        report = replay_counterexample(args.replay)
        for divergence in report.divergences:
            print(divergence.describe())
        if report.divergences:
            raise VerificationError(
                f"counterexample {args.replay} still diverges "
                f"({len(report.divergences)} quantities)"
            )
        print(f"counterexample {args.replay}: all paths agree now")
        return 0

    profile = "deep" if args.deep else "quick"
    cases, min_ref_sim, decoys = VERIFY_PROFILES[profile]
    if args.cases is not None:
        cases = args.cases
    config = DifferentialConfig(
        cases=cases,
        seed=args.seed,
        min_ref_sim=min_ref_sim,
        decoys=decoys,
        dump_dir=args.dump_dir,
    )
    differential = run_differential(config)
    print(differential.summary())
    invariants = run_invariants(
        seed=args.seed, include_parallel=not args.no_parallel
    )
    print(invariants.summary())
    if not differential.ok or not invariants.ok:
        hint = (
            f"; replay with: repro verify --replay "
            f"{differential.counterexample_paths[0]}"
            if differential.counterexample_paths
            else ""
        )
        raise VerificationError(
            f"{len(differential.divergent)} divergent case(s), "
            f"{len(invariants.violations)} invariant violation(s){hint}"
        )
    print(f"verify [{profile}]: all evaluation paths agree (seed {args.seed})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import SpecError
    from repro.obs import MetricsRegistry, Tracer, obs_scope
    from repro.service import MappingService

    if args.resume and not args.journal:
        raise SpecError("--resume needs --journal (nothing to recover from)")
    registry = MetricsRegistry()
    # Live tracer (no output file) feeds the listener's /flame view.
    tracer = Tracer(None, registry=registry)
    service = MappingService(
        registry,
        tracer=tracer,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        journal_path=args.journal,
        resume=args.resume,
        pool_size=args.pool_size,
        cache_entries=args.cache_entries,
    )
    try:
        # The scope stays installed for the server's lifetime so worker
        # threads record into the registry the listener exposes.
        with obs_scope(registry=registry, tracer=tracer), service:
            if service.recovered:
                print(
                    f"recovered {service.recovered} unfinished job(s) "
                    f"from {args.journal}"
                )
            # Parsed by tooling (service_smoke) — keep the format stable.
            print(f"serving mapper API at {service.url}", flush=True)
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr)
    finally:
        tracer.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI (search / evaluate / experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ruby imperfect-factorization mapper (ISPASS'22 reproduction)",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="print full tracebacks instead of one-line error summaries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            help="stream span-trace JSONL here (inspect with 'repro obs')",
        )
        p.add_argument(
            "--metrics-out",
            help="write the metrics-registry snapshot JSON here on exit",
        )
        p.add_argument(
            "--serve-metrics", type=int, default=None, metavar="PORT",
            help="serve live /metrics, /progress, and /flame HTTP "
            "endpoints on 127.0.0.1:PORT for the run's duration "
            "(0 picks an ephemeral port; the resolved URL is printed)",
        )
        p.add_argument(
            "--progress", action="store_true",
            help="render a live progress/ETA line on stderr while the "
            "search runs",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--arch", choices=sorted(ARCH_PRESETS), default="eyeriss",
            help="architecture preset",
        )
        p.add_argument("--arch-json", help="architecture spec JSON (overrides --arch)")
        p.add_argument("--conv", help="conv shape, e.g. C=512,M=128,P=28,Q=28,R=1,S=1")
        p.add_argument("--gemm", help="GEMM shape, e.g. M=1024,N=16,K=1024")
        p.add_argument("--workload-json", help="workload spec JSON")
        p.add_argument("--name", default="workload", help="workload name")

    search = sub.add_parser("search", help="find the best mapping")
    add_common(search)
    search.add_argument(
        "--kind", choices=["pfm", "ruby", "ruby-s", "ruby-t"], default="ruby-s"
    )
    search.add_argument(
        "--objective", choices=["edp", "energy", "delay"], default="edp"
    )
    search.add_argument(
        "--searcher",
        choices=["random", "exhaustive", "branch-bound", "genetic", "annealing"],
        default="random",
        help="search strategy; branch-bound is exact with subtree pruning "
        "(enumerable mapspaces only)",
    )
    search.add_argument("--budget", type=int, default=5000)
    search.add_argument("--patience", type=int, default=1500)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--workers", type=int, default=1,
        help="parallel search processes: independent seeded runs for "
        "random (paper: 24 threads), shared-incumbent subtree "
        "work-sharing for branch-bound (bit-identical to serial)",
    )
    search.add_argument(
        "--start-method", choices=["fork", "spawn"], default=None,
        help="force a multiprocessing start method (default: try fork, "
        "then spawn, then run sequentially)",
    )
    search.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-worker evaluation cache (parity debugging)",
    )
    search.add_argument(
        "--batch-size", type=int, default=512,
        help="candidates per vectorized evaluation batch",
    )
    search.add_argument(
        "--no-batch", action="store_true",
        help="force the scalar evaluator (skip the vectorized batch "
        "engine; results are identical, only slower)",
    )
    search.add_argument(
        "--row-stationary", action="store_true",
        help="apply the Eyeriss row-stationary constraint set",
    )
    search.add_argument("--save-mapping", help="write best mapping JSON here")
    search.add_argument("--save-workload", help="write workload JSON here")
    add_obs_flags(search)
    search.set_defaults(func=_cmd_search)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved mapping")
    add_common(evaluate)
    evaluate.add_argument("--mapping", required=True, help="mapping JSON")
    evaluate.set_defaults(func=_cmd_evaluate)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        help="fig7a|fig7b|fig7c|fig7d|table1|fig8|fig9|fig10|fig11|fig12|fig13",
    )
    experiment.add_argument("--budget", type=int, default=2500)
    experiment.add_argument("--runs", type=int, default=3)
    experiment.add_argument(
        "--suite", choices=["resnet50", "deepbench"], default="resnet50"
    )
    experiment.add_argument(
        "--journal",
        help="run fig8-fig13 searches as a fault-tolerant campaign "
        "journaled here (checkpointed + resumable)",
    )
    experiment.add_argument(
        "--timeout", type=float, default=None,
        help="per-search wall-clock timeout in seconds (with --journal)",
    )
    experiment.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per search before quarantine (with --journal)",
    )
    add_obs_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    campaign = sub.add_parser(
        "campaign", help="fault-tolerant search campaigns over a suite"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_fault_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--journal", required=True,
            help="append-only JSONL checkpoint journal for this campaign",
        )
        p.add_argument(
            "--timeout", type=float, default=None,
            help="per-job wall-clock timeout in seconds",
        )
        p.add_argument(
            "--retries", type=int, default=None,
            help="retry budget per job before quarantine (default 2)",
        )
        p.add_argument(
            "--backoff", type=float, default=0.5,
            help="base retry backoff in seconds (doubles per attempt)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="concurrent campaign jobs",
        )
        p.add_argument(
            "--start-method", choices=["fork", "spawn"], default=None,
            help="force a multiprocessing start method (default: try fork, "
            "then spawn, then run jobs inline without timeout enforcement)",
        )
        p.add_argument(
            "--retry-quarantined", action="store_true",
            help="re-attempt jobs the journal marked quarantined",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="run a suite campaign (resumes an existing journal)"
    )
    campaign_run.add_argument(
        "--suite", choices=["toy", "resnet50", "deepbench", "mobilenet"],
        default="toy",
    )
    campaign_run.add_argument(
        "--arch", choices=sorted(ARCH_PRESETS), default="eyeriss",
        help="architecture preset",
    )
    campaign_run.add_argument(
        "--arch-json", help="architecture spec JSON (overrides --arch)"
    )
    campaign_run.add_argument(
        "--kinds", default="pfm,ruby-s",
        help="comma-separated mapspace kinds (default pfm,ruby-s)",
    )
    campaign_run.add_argument(
        "--objective", choices=["edp", "energy", "delay"], default="edp"
    )
    campaign_run.add_argument("--budget", type=int, default=1000)
    campaign_run.add_argument("--patience", type=int, default=None)
    campaign_run.add_argument(
        "--seeds", default="1,2", help="comma-separated search seeds"
    )
    campaign_run.add_argument(
        "--row-stationary", action="store_true",
        help="apply the Eyeriss constraint set to conv workloads",
    )
    campaign_run.add_argument(
        "--fault-plan",
        help="JSON fault-injection plan (repro.utils.faults schema) "
        "for robustness testing",
    )
    campaign_run.add_argument(
        "--fresh", action="store_true",
        help="ignore journaled results and re-run every job",
    )
    add_campaign_fault_flags(campaign_run)
    add_obs_flags(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume an interrupted campaign from its journal"
    )
    add_campaign_fault_flags(campaign_resume)
    add_obs_flags(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="summarize a campaign journal without running jobs"
    )
    campaign_status.add_argument("--journal", required=True)
    campaign_status.add_argument(
        "--follow", action="store_true",
        help="poll the journal and re-print the summary until the "
        "campaign completes (live per-job heartbeat counters)",
    )
    campaign_status.add_argument(
        "--interval", type=float, default=2.0,
        help="poll interval in seconds for --follow (default 2)",
    )
    campaign_status.set_defaults(func=_cmd_campaign_status)

    obs_cmd = sub.add_parser(
        "obs", help="inspect a span-trace JSONL written via --trace"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="print every span record (validated) as JSON lines"
    )
    obs_dump.add_argument("trace_file", help="span-trace JSONL path")
    obs_dump.set_defaults(func=_cmd_obs)
    obs_summarize = obs_sub.add_parser(
        "summarize", help="print a flame-style duration summary of a trace"
    )
    obs_summarize.add_argument("trace_file", help="span-trace JSONL path")
    obs_summarize.set_defaults(func=_cmd_obs)

    bench = sub.add_parser(
        "bench", help="benchmark regression ledger (record / compare)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_record = bench_sub.add_parser(
        "record",
        help="normalize BENCH_*.json payloads and append one ledger record",
    )
    bench_record.add_argument(
        "files", nargs="+", help="benchmark JSON payloads (BENCH_*.json)"
    )
    bench_record.add_argument(
        "--ledger", default="BENCH_HISTORY.jsonl",
        help="ledger path (append-only JSONL; default BENCH_HISTORY.jsonl)",
    )
    bench_record.add_argument(
        "--note", default=None,
        help="freeform annotation stored with the record (e.g. a commit)",
    )
    bench_record.set_defaults(func=_cmd_bench_record)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff the newest ledger record against its baseline; exits 1 "
        "on a thresholded regression",
    )
    bench_compare.add_argument(
        "--ledger", default="BENCH_HISTORY.jsonl",
        help="ledger path (default BENCH_HISTORY.jsonl)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative worsening that counts as a regression (default 0.2)",
    )
    bench_compare.add_argument(
        "--any-machine", action="store_true",
        help="allow a baseline from a different host (timings across "
        "machines are noisy; same-host baselines are preferred by default)",
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)

    verify = sub.add_parser(
        "verify",
        help="differentially cross-check every evaluation path "
        "(scalar / cache / batch / reference sim) plus invariants",
    )
    verify_profile = verify.add_mutually_exclusive_group()
    verify_profile.add_argument(
        "--quick", action="store_true",
        help="quick profile: 500 cases, >=50 reference-sim cross-checks "
        "(the default)",
    )
    verify_profile.add_argument(
        "--deep", action="store_true",
        help="deep profile: 5000 cases, >=500 reference-sim cross-checks",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--cases", type=int, default=None,
        help="override the profile's case count",
    )
    verify.add_argument(
        "--dump-dir", default=".",
        help="directory for shrunk counterexample dumps (default: cwd)",
    )
    verify.add_argument(
        "--no-parallel", action="store_true",
        help="skip the fork/spawn start-method determinism invariant "
        "(the only one that spawns worker processes)",
    )
    verify.add_argument(
        "--replay", metavar="COUNTEREXAMPLE",
        help="re-run a dumped counterexample JSON instead of sweeping",
    )
    verify.set_defaults(func=_cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="run the mapper-as-a-service HTTP server "
        "(POST /v1/search; see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks an ephemeral port (printed at startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="search worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32,
        help="queued-job bound; submissions beyond it get HTTP 429 "
        "with a Retry-After hint (default 32)",
    )
    serve.add_argument(
        "--journal", default=None,
        help="service journal JSONL; accepted requests and outcomes are "
        "fsynced here so --resume survives a crash",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="re-enqueue journaled jobs that never finished",
    )
    serve.add_argument(
        "--pool-size", type=int, default=None,
        help="warm (arch, workload) evaluator entries kept across "
        "requests (default 8)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=None,
        help="evaluation-cache bound per pool entry (default 20000)",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``ReproError`` subclasses map to distinct exit codes (see module
    docstring) with a one-line stderr summary; ``--debug`` re-raises for
    the full traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _obs_session(args):
            return args.func(args)
    except ReproError as error:
        if args.debug:
            raise
        print(f"error ({type(error).__name__}): {error}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``search`` — find the best mapping of a conv/GEMM on a preset
  architecture and print it as a loopnest (optionally save it as JSON).
* ``evaluate`` — re-evaluate a saved mapping JSON against saved (or
  preset) architecture and workload specs.
* ``experiment`` — run one of the paper-reproduction harnesses
  (fig7a..fig7d, table1, fig8, fig9, fig10, fig11, fig12, fig13) and
  print its report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.arch import eyeriss_like, simba_like, toy_linear_architecture
from repro.core.mapper import find_best_mapping
from repro.io import (
    architecture_from_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.mapping.render import render_mapping
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model.evaluator import Evaluator
from repro.problem.conv import ConvLayer
from repro.problem.gemm import GemmLayer

ARCH_PRESETS = {
    "eyeriss": lambda: eyeriss_like(),
    "simba": lambda: simba_like(),
    "toy16": lambda: toy_linear_architecture(16),
    "toy9": lambda: toy_linear_architecture(9),
}


def _parse_shape(text: str) -> Dict[str, int]:
    """Parse ``C=512,M=128,P=28`` into a dict."""
    shape: Dict[str, int] = {}
    for chunk in text.split(","):
        if not chunk:
            continue
        key, _, value = chunk.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"bad shape fragment {chunk!r}; expected DIM=SIZE"
            )
        shape[key.strip().upper()] = int(value)
    return shape


def _build_workload(args: argparse.Namespace):
    if args.workload_json:
        return workload_from_dict(load_json(args.workload_json))
    if args.conv:
        shape = _parse_shape(args.conv)
        return ConvLayer(
            name=args.name,
            n=shape.get("N", 1),
            c=shape.get("C", 1),
            m=shape.get("M", 1),
            p=shape.get("P", 1),
            q=shape.get("Q", 1),
            r=shape.get("R", 1),
            s=shape.get("S", 1),
        ).workload()
    if args.gemm:
        shape = _parse_shape(args.gemm)
        return GemmLayer(
            name=args.name,
            m=shape.get("M", 1),
            n=shape.get("N", 1),
            k=shape.get("K", 1),
        ).workload()
    raise SystemExit("specify one of --conv, --gemm, or --workload-json")


def _build_arch(args: argparse.Namespace):
    if args.arch_json:
        return architecture_from_dict(load_json(args.arch_json))
    return ARCH_PRESETS[args.arch]()


def _format_search_stats(stats: Dict) -> List[str]:
    """Render SearchResult.stats (throughput, pool mode, cache) for the CLI."""
    if not stats:
        return []
    lines: List[str] = []
    summary = []
    if stats.get("evals_per_sec"):
        summary.append(f"throughput={stats['evals_per_sec']:,.0f} evals/s")
    if stats.get("elapsed_s") is not None:
        summary.append(f"elapsed={stats['elapsed_s']:.2f}s")
    if stats.get("pool_mode"):
        summary.append(f"pool={stats['pool_mode']}")
    cache = stats.get("cache")
    if cache is not None:
        summary.append(f"cache-hit-rate={cache['hit_rate']:.1%}")
    if summary:
        lines.append("  ".join(summary))
    for row in stats.get("workers", ()):
        hit_rate = row.get("cache_hit_rate")
        cache_part = f"  cache-hit={hit_rate:.1%}" if hit_rate is not None else ""
        rate = row.get("evals_per_sec") or 0.0
        lines.append(
            f"  worker {row['worker']}: seed={row['seed']}  "
            f"evaluated={row['num_evaluated']:,}  valid={row['num_valid']:,}  "
            f"{rate:,.0f} evals/s{cache_part}  ({row['terminated_by']})"
        )
    return lines


def _cmd_search(args: argparse.Namespace) -> int:
    arch = _build_arch(args)
    workload = _build_workload(args)
    constraints = (
        eyeriss_row_stationary()
        if args.arch == "eyeriss" and args.row_stationary
        else None
    )
    if args.workers > 1:
        from repro.model.eval_cache import DEFAULT_CACHE_SIZE
        from repro.search.parallel import parallel_random_search

        result = parallel_random_search(
            arch,
            workload,
            kind=args.kind,
            constraints=constraints,
            objective=args.objective,
            max_evaluations=args.budget,
            patience=args.patience,
            workers=args.workers,
            seed=args.seed,
            cache_size=0 if args.no_cache else DEFAULT_CACHE_SIZE,
            start_method=args.start_method,
        )
    else:
        result = find_best_mapping(
            arch,
            workload,
            kind=args.kind,
            objective=args.objective,
            seed=args.seed,
            max_evaluations=args.budget,
            patience=args.patience,
            constraints=constraints,
        )
    if result.best is None:
        print("no valid mapping found", file=sys.stderr)
        return 1
    best = result.best
    print(arch.describe())
    print()
    print(workload.describe())
    print()
    print(render_mapping(best.mapping))
    print()
    print(
        f"objective={args.objective}  EDP={best.edp:.4e}  "
        f"energy={best.energy_pj:.4e} pJ  cycles={best.cycles:,}  "
        f"utilization={best.utilization:.1%}  "
        f"({result.num_valid}/{result.num_evaluated} valid mappings, "
        f"stopped by {result.terminated_by})"
    )
    for line in _format_search_stats(result.stats):
        print(line)
    if args.save_mapping:
        save_json(mapping_to_dict(best.mapping), args.save_mapping)
        print(f"mapping saved to {args.save_mapping}")
    if args.save_workload:
        save_json(workload_to_dict(workload), args.save_workload)
        print(f"workload saved to {args.save_workload}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    arch = _build_arch(args)
    workload = _build_workload(args)
    mapping = mapping_from_dict(load_json(args.mapping))
    evaluation = Evaluator(arch, workload).evaluate(mapping)
    if not evaluation.valid:
        print("INVALID mapping:", file=sys.stderr)
        for violation in evaluation.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(render_mapping(mapping))
    print()
    print(
        f"EDP={evaluation.edp:.4e}  energy={evaluation.energy_pj:.4e} pJ  "
        f"cycles={evaluation.cycles:,}  "
        f"utilization={evaluation.utilization:.1%}"
    )
    for component, energy in sorted(evaluation.energy_breakdown_pj.items()):
        print(f"  {component:<16} {energy:.4e} pJ")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments as ex

    name = args.name
    if name.startswith("fig7"):
        from repro.experiments.fig07 import SCENARIOS

        key = name[-1]
        if key not in SCENARIOS:
            raise SystemExit(f"unknown fig7 scenario {name!r}")
        result = ex.run_fig7_scenario(
            SCENARIOS[key](), evaluations=args.budget, runs=args.runs
        )
        print(ex.format_fig7(result))
    elif name == "table1":
        print(ex.format_table1(ex.run_table1()))
    elif name == "fig8":
        print(ex.format_fig8(ex.run_fig8(max_evaluations=args.budget)))
    elif name == "fig9":
        print(ex.format_fig9(ex.run_fig9(max_evaluations=args.budget)))
    elif name == "fig10":
        print(ex.format_fig10(ex.run_fig10(max_evaluations=args.budget)))
    elif name == "fig11":
        print(ex.format_fig11(ex.run_fig11(max_evaluations=args.budget)))
    elif name == "fig12":
        print(ex.format_fig12(ex.run_fig12(max_evaluations=args.budget)))
    elif name in ("fig13", "fig14"):
        print(
            ex.format_fig13(
                ex.run_fig13(suite=args.suite, max_evaluations=args.budget)
            )
        )
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI (search / evaluate / experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ruby imperfect-factorization mapper (ISPASS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--arch", choices=sorted(ARCH_PRESETS), default="eyeriss",
            help="architecture preset",
        )
        p.add_argument("--arch-json", help="architecture spec JSON (overrides --arch)")
        p.add_argument("--conv", help="conv shape, e.g. C=512,M=128,P=28,Q=28,R=1,S=1")
        p.add_argument("--gemm", help="GEMM shape, e.g. M=1024,N=16,K=1024")
        p.add_argument("--workload-json", help="workload spec JSON")
        p.add_argument("--name", default="workload", help="workload name")

    search = sub.add_parser("search", help="find the best mapping")
    add_common(search)
    search.add_argument(
        "--kind", choices=["pfm", "ruby", "ruby-s", "ruby-t"], default="ruby-s"
    )
    search.add_argument(
        "--objective", choices=["edp", "energy", "delay"], default="edp"
    )
    search.add_argument("--budget", type=int, default=5000)
    search.add_argument("--patience", type=int, default=1500)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--workers", type=int, default=1,
        help="independent parallel search processes (paper: 24 threads)",
    )
    search.add_argument(
        "--start-method", choices=["fork", "spawn"], default=None,
        help="force a multiprocessing start method (default: try fork, "
        "then spawn, then run sequentially)",
    )
    search.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-worker evaluation cache (parity debugging)",
    )
    search.add_argument(
        "--row-stationary", action="store_true",
        help="apply the Eyeriss row-stationary constraint set",
    )
    search.add_argument("--save-mapping", help="write best mapping JSON here")
    search.add_argument("--save-workload", help="write workload JSON here")
    search.set_defaults(func=_cmd_search)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved mapping")
    add_common(evaluate)
    evaluate.add_argument("--mapping", required=True, help="mapping JSON")
    evaluate.set_defaults(func=_cmd_evaluate)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        help="fig7a|fig7b|fig7c|fig7d|table1|fig8|fig9|fig10|fig11|fig12|fig13",
    )
    experiment.add_argument("--budget", type=int, default=2500)
    experiment.add_argument("--runs", type=int, default=3)
    experiment.add_argument(
        "--suite", choices=["resnet50", "deepbench"], default="resnet50"
    )
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Per-dimension bound allocation: where PFM and Ruby actually differ.

A dimension of size ``D`` gets one bound per slot. Walking slots inner to
outer with a running residue ``V`` (initially ``D``):

* an **exact** slot must pick a divisor of ``V`` and leaves ``V / b``;
* an **imperfect** slot may pick any ``b`` and leaves ``ceil(V / b)`` — the
  shortfall becomes the Eq. (5) remainder on the globally-last iteration;
* the outermost temporal slot absorbs whatever residue remains.

Which slots are exact defines the mapspace: all exact = PFM; spatial free =
Ruby-S; temporal free = Ruby-T; all free = Ruby. The remainders are then
uniquely determined by the mixed-radix decomposition of ``D - 1`` over the
inner-to-outer bounds (see :func:`assign_remainders`), which is why
generation never has to search over remainder values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import MapspaceError
from repro.mapspace.slots import Slot
from repro.utils.mathx import ceil_div, divisors, mixed_radix_digits


@dataclass(frozen=True)
class DimChain:
    """The allocated loop bounds of one dimension, aligned with the slots.

    ``bounds`` and ``remainders`` are outer-to-inner (slot order).
    """

    dim: str
    bounds: Tuple[int, ...]
    remainders: Tuple[int, ...]


def assign_remainders(size: int, bounds_outer_to_inner: Sequence[int]) -> Tuple[int, ...]:
    """Derive Eq. (5) remainders for given bounds covering ``size`` points.

    Writing the bounds inner-to-outer as radices, ``size - 1`` decomposes
    into mixed-radix digits; ``R_i = digit_i + 1``. Raises
    :class:`MapspaceError` when the bounds cannot cover ``size`` (the
    most-significant digit would exceed the outermost bound).
    """
    if size < 1:
        raise MapspaceError(f"dimension size must be >= 1, got {size}")
    if not bounds_outer_to_inner:
        if size == 1:
            return ()
        raise MapspaceError(f"no bounds to cover size {size}")
    inner_to_outer = list(reversed(bounds_outer_to_inner))
    digits = mixed_radix_digits(size - 1, inner_to_outer[:-1])
    outermost_remainder = digits[-1] + 1
    if outermost_remainder > inner_to_outer[-1]:
        raise MapspaceError(
            f"bounds {tuple(bounds_outer_to_inner)} cannot cover {size}: "
            f"outermost needs remainder {outermost_remainder}"
        )
    remainders_inner_to_outer = [digit + 1 for digit in digits]
    return tuple(reversed(remainders_inner_to_outer))


class DimAllocator:
    """Allocates per-dimension bounds over a slot skeleton.

    Args:
        slots: outer-to-inner slot list from :func:`~repro.mapspace.slots.build_slots`.
        spatial_imperfect: spatial slots may take non-divisor bounds.
        temporal_imperfect: temporal slots may take non-divisor bounds.
    """

    SAMPLING_MODES = ("structured", "uniform")

    def __init__(
        self,
        slots: Sequence[Slot],
        spatial_imperfect: bool,
        temporal_imperfect: bool,
        sampling: str = "structured",
    ) -> None:
        if not slots or slots[0].spatial:
            raise MapspaceError("slot list must start with a temporal slot")
        if sampling not in self.SAMPLING_MODES:
            raise MapspaceError(
                f"sampling must be one of {self.SAMPLING_MODES}, got {sampling!r}"
            )
        self.slots = list(slots)
        self.spatial_imperfect = spatial_imperfect
        self.temporal_imperfect = temporal_imperfect
        self.sampling = sampling

    def _slot_is_imperfect(self, slot: Slot) -> bool:
        return self.spatial_imperfect if slot.spatial else self.temporal_imperfect

    def sample_chain(
        self,
        dim: str,
        size: int,
        rng: random.Random,
        spatial_budgets: Dict[int, int],
    ) -> DimChain:
        """Sample one bound chain for ``dim``; mutates ``spatial_budgets``.

        ``spatial_budgets`` maps slot list indices to the remaining fanout
        available at each spatial slot (shared across dimensions).
        """
        num_slots = len(self.slots)
        bounds_inner_to_outer: List[int] = []
        residue = size
        for offset in range(num_slots - 1, -1, -1):
            slot = self.slots[offset]
            outermost = offset == 0
            if outermost:
                bound = residue
                residue = 1
            else:
                bound = self._sample_bound(
                    slot, dim, residue, rng, spatial_budgets.get(offset, 1)
                )
                residue = self._advance(slot, residue, bound)
            if slot.spatial and bound > 1:
                spatial_budgets[offset] = spatial_budgets.get(offset, 1) // bound
            bounds_inner_to_outer.append(bound)
        bounds = tuple(reversed(bounds_inner_to_outer))
        remainders = assign_remainders(size, bounds)
        return DimChain(dim=dim, bounds=bounds, remainders=remainders)

    def _sample_bound(
        self,
        slot: Slot,
        dim: str,
        residue: int,
        rng: random.Random,
        spatial_budget: int,
    ) -> int:
        if residue == 1 or not slot.allows(dim):
            return 1
        cap = residue
        if slot.spatial:
            cap = min(cap, max(1, spatial_budget))
        if self._slot_is_imperfect(slot):
            return self._sample_imperfect_bound(residue, cap, rng)
        options = [d for d in divisors(residue) if d <= cap]
        return rng.choice(options)

    def _sample_imperfect_bound(
        self, residue: int, cap: int, rng: random.Random
    ) -> int:
        """Sample an imperfect bound from ``[1, cap]``.

        In ``"structured"`` mode (default) the range is sampled with extra
        density on its high-value regions — divisors of the residue (the
        perfect sub-space, so Ruby never converges slower than PFM merely
        for lack of samples) and the cap itself (the utilization-maximizing
        choice imperfect factorization exists to reach). Every value in
        ``[1, cap]`` remains reachable, so the mapspace itself is
        unchanged; only sampling density differs. ``"uniform"`` mode keeps
        a flat distribution (the ablation baseline).
        """
        if self.sampling == "uniform":
            return rng.randint(1, cap)
        roll = rng.random()
        if roll < 0.4:
            return rng.randint(1, cap)
        if roll < 0.8:
            options = [d for d in divisors(residue) if d <= cap]
            return rng.choice(options)
        return cap

    @staticmethod
    def _advance(slot: Slot, residue: int, bound: int) -> int:
        if residue % bound == 0:
            return residue // bound
        return ceil_div(residue, bound)

    def enumerate_chains(
        self,
        dim: str,
        size: int,
        spatial_caps: Optional[Dict[int, int]] = None,
    ) -> Iterator[DimChain]:
        """Exhaustively yield every bound chain for ``dim``.

        ``spatial_caps`` optionally overrides each spatial slot's cap (list
        index -> cap). Joint cross-dimension fanout limits are the caller's
        concern. Intended for toy problems and counting studies — the
        imperfect spaces grow like ``size**num_free_slots``.
        """
        caps = spatial_caps or {}

        def options(offset: int, residue: int) -> List[int]:
            slot = self.slots[offset]
            if offset == 0:
                return [residue]
            if residue == 1 or not slot.allows(dim):
                return [1]
            cap = residue
            if slot.spatial:
                cap = min(cap, caps.get(offset, slot.fanout_cap or 1))
                cap = max(cap, 1)
            if self._slot_is_imperfect(slot):
                return list(range(1, cap + 1))
            return [d for d in divisors(residue) if d <= cap]

        def recurse(offset: int, residue: int, acc: List[int]) -> Iterator[List[int]]:
            if offset < 0:
                if residue == 1:
                    yield list(acc)
                return
            slot = self.slots[offset]
            for bound in options(offset, residue):
                if offset == 0:
                    yield list(acc) + [bound]
                    continue
                next_residue = self._advance(slot, residue, bound)
                yield from recurse(offset - 1, next_residue, acc + [bound])

        for inner_to_outer in recurse(len(self.slots) - 1, size, []):
            bounds = tuple(reversed(inner_to_outer))
            yield DimChain(
                dim=dim,
                bounds=bounds,
                remainders=assign_remainders(size, bounds),
            )

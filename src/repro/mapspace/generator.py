"""MapSpace: samples and enumerates complete mappings.

Combines per-dimension bound chains (from the allocator) with loop-order
(permutation) choices into :class:`~repro.mapping.nest.Mapping` objects,
respecting joint spatial-fanout budgets across dimensions.
"""

from __future__ import annotations

import enum
import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.exceptions import MapspaceError
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.mapspace.allocation import DimAllocator, DimChain
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.slots import Slot, build_slots
from repro.obs import scope as _obs
from repro.utils.rng import make_rng


class MapspaceKind(str, enum.Enum):
    """The four mapspaces studied by the paper."""

    PFM = "pfm"
    RUBY = "ruby"
    RUBY_S = "ruby-s"
    RUBY_T = "ruby-t"

    @property
    def spatial_imperfect(self) -> bool:
        """Whether spatial slots may take non-divisor bounds."""
        return self in (MapspaceKind.RUBY, MapspaceKind.RUBY_S)

    @property
    def temporal_imperfect(self) -> bool:
        """Whether temporal slots may take non-divisor bounds."""
        return self in (MapspaceKind.RUBY, MapspaceKind.RUBY_T)


class MapSpace:
    """A mapspace for one (architecture, workload, kind) triple.

    Args:
        arch: target accelerator.
        workload: tensor operation to map.
        kind: which factorization regime to use.
        constraints: optional dataflow constraints.
    """

    BYPASS_PROBABILITY = 0.2

    def __init__(
        self,
        arch: Architecture,
        workload,
        kind: MapspaceKind,
        constraints: Optional[ConstraintSet] = None,
        sampling: str = "structured",
        explore_bypass: bool = False,
    ) -> None:
        self.arch = arch
        self.workload = workload
        self.kind = MapspaceKind(kind)
        self.constraints = constraints or ConstraintSet()
        self.explore_bypass = explore_bypass
        self.slots: List[Slot] = build_slots(arch, self.constraints)
        self.allocator = DimAllocator(
            self.slots,
            spatial_imperfect=self.kind.spatial_imperfect,
            temporal_imperfect=self.kind.temporal_imperfect,
            sampling=sampling,
        )
        # Bypass candidates: every non-outermost level a tensor may use.
        self._bypass_candidates = [
            (level.name, tensor.name)
            for level in arch.levels[1:]
            for tensor in workload.tensors
            if level.keeps_tensor(tensor.name)
        ]
        # Imperfect mapspaces contain the perfect one; drawing an all-exact
        # sample now and then keeps their random search from ever lagging a
        # PFM search merely for lack of density on the perfect sub-space.
        self._perfect_allocator: Optional[DimAllocator] = None
        if self.kind is not MapspaceKind.PFM:
            self._perfect_allocator = DimAllocator(
                self.slots,
                spatial_imperfect=False,
                temporal_imperfect=False,
                sampling=sampling,
            )
        self._batch_layout = None
        self._dim_chain_menus: Optional[List[Tuple[str, Tuple[DimChain, ...]]]] = None

    def _initial_budgets(self) -> Dict[int, int]:
        return {
            offset: slot.fanout_cap
            for offset, slot in enumerate(self.slots)
            if slot.spatial
        }

    def sample(self, rng: Optional[random.Random] = None) -> Mapping:
        """Sample one mapping (bounds, remainders, permutations, bypass)."""
        rng = make_rng(rng)
        _obs.inc("mapspace.samples")
        mapping = self.assemble(self.sample_chains(rng), rng)
        if self.explore_bypass and self._bypass_candidates:
            bypass = [
                pair
                for pair in self._bypass_candidates
                if rng.random() < self.BYPASS_PROBABILITY
            ]
            if bypass:
                mapping = mapping.with_bypass(bypass)
        return mapping

    PERFECT_SEED_PROBABILITY = 0.15

    def sample_chains(
        self, rng: Optional[random.Random] = None
    ) -> Dict[str, DimChain]:
        """Sample per-dimension bound chains under the joint fanout budget."""
        rng = make_rng(rng)
        allocator = self.allocator
        if (
            self._perfect_allocator is not None
            and rng.random() < self.PERFECT_SEED_PROBABILITY
        ):
            allocator = self._perfect_allocator
        budgets = self._initial_budgets()
        dims = list(self.workload.dim_names)
        rng.shuffle(dims)
        return {
            dim: allocator.sample_chain(
                dim, self.workload.size(dim), rng, budgets
            )
            for dim in dims
        }

    def resample_dim(
        self,
        chains: Dict[str, DimChain],
        dim: str,
        rng: Optional[random.Random] = None,
    ) -> Dict[str, DimChain]:
        """Return a copy of ``chains`` with ``dim`` re-allocated.

        The fanout budget offered to ``dim`` is whatever the other
        dimensions leave free — the mutation operator of the genetic search.
        """
        rng = make_rng(rng)
        budgets = self.remaining_budgets(chains, exclude=dim)
        updated = dict(chains)
        updated[dim] = self.allocator.sample_chain(
            dim, self.workload.size(dim), rng, budgets
        )
        return updated

    def remaining_budgets(
        self, chains: Dict[str, DimChain], exclude: Optional[str] = None
    ) -> Dict[int, int]:
        """Spatial budget left at each spatial slot given ``chains``."""
        budgets = self._initial_budgets()
        for offset in list(budgets):
            used = 1
            for dim, chain in chains.items():
                if dim == exclude:
                    continue
                used *= chain.bounds[offset]
            budgets[offset] = max(0, budgets[offset] // used)
        return budgets

    def chains_within_fanout(self, chains: Dict[str, DimChain]) -> bool:
        """True if the joint spatial allocation fits every slot cap."""
        for offset, slot in enumerate(self.slots):
            if not slot.spatial:
                continue
            used = 1
            for chain in chains.values():
                used *= chain.bounds[offset]
            if used > slot.fanout_cap:
                return False
        return True

    # -- prefix enumeration ----------------------------------------------
    #
    # The flat enumeration (enumerate_mappings / iter_batches) walks the
    # cartesian product of per-dimension chain menus. A *prefix* fixes the
    # chains of a subset of dimensions; the prefix tree over dimensions is
    # the decomposition under which the cost model factors exactly (cycles
    # are a per-dim product, delivered-tile counts are per-dim folds), so a
    # hierarchical searcher can bound and prune whole subtrees before they
    # are ever enumerated.

    def dim_chain_menus(self) -> List[Tuple[str, Tuple[DimChain, ...]]]:
        """Per-dimension chain menus in workload dim order (cached).

        Each menu is the full ``enumerate_chains`` list for that dimension;
        the flat enumeration is exactly the joint-fanout-filtered cartesian
        product of these menus.
        """
        if self._dim_chain_menus is None:
            self._dim_chain_menus = [
                (
                    dim,
                    tuple(
                        self.allocator.enumerate_chains(
                            dim, self.workload.size(dim)
                        )
                    ),
                )
                for dim in self.workload.dim_names
            ]
        return self._dim_chain_menus

    def enumeration_upper_bound(self) -> int:
        """Cheap upper bound on the flat enumeration: the menu-size
        product *before* joint-fanout filtering.

        Costs one multiply per dimension (menus are cached), unlike
        :meth:`count_completions`, which walks the whole product. Used as
        the total-work estimate for exhaustive-search progress tracking —
        an over-estimate only tightens to 1.0 when the run finishes.
        """
        total = 1
        for _, menu in self.dim_chain_menus():
            total *= len(menu)
        return total

    def prefix_feasible(self, chains: Dict[str, DimChain]) -> bool:
        """True when some completion of ``chains`` can fit the fanout caps.

        Unassigned dimensions contribute a spatial bound of at least 1, so
        a prefix whose running per-slot product already exceeds a cap has
        no feasible completion — the whole subtree can be discarded.
        """
        for offset, slot in enumerate(self.slots):
            if not slot.spatial:
                continue
            used = 1
            for chain in chains.values():
                used *= chain.bounds[offset]
            if used > slot.fanout_cap:
                return False
        return True

    def count_completions(
        self, prefix: Optional[Dict[str, DimChain]] = None
    ) -> int:
        """Exact number of enumerated mappings completing ``prefix``.

        Counts the joint-fanout-filtered product of the unassigned menus
        with the prefix dims pinned; ``prefix=None`` counts the whole flat
        enumeration. Summed over all chains of any one dimension this
        reproduces the flat count exactly (the prefix tree partitions the
        enumeration) — asserted by the prefix-counting tests.
        """
        prefix = prefix or {}
        per_dim = [
            [prefix[dim]] if dim in prefix else list(menu)
            for dim, menu in self.dim_chain_menus()
        ]
        spatial_offsets = [
            offset for offset, slot in enumerate(self.slots) if slot.spatial
        ]
        count = 0
        for combo in itertools.product(*per_dim):
            if self._fanout_ok(combo, spatial_offsets):
                count += 1
        return count

    def sample_many(
        self, count: int, rng: Optional[random.Random] = None
    ) -> List[Mapping]:
        """Sample ``count`` mappings from one RNG stream."""
        rng = make_rng(rng)
        return [self.sample(rng) for _ in range(count)]

    def assemble(
        self, chains: Dict[str, DimChain], rng: Optional[random.Random] = None
    ) -> Mapping:
        """Build a Mapping from per-dim chains, ordering loops per level."""
        nests: List[LevelNest] = []
        for level_index, level in enumerate(self.arch.levels):
            temporal_loops: List[Loop] = []
            spatial_loops: List[Loop] = []
            for offset, slot in enumerate(self.slots):
                if slot.level_index != level_index:
                    continue
                for dim in self.workload.dim_names:
                    chain = chains[dim]
                    bound = chain.bounds[offset]
                    remainder = chain.remainders[offset]
                    if bound == 1 and remainder == 1:
                        continue
                    loop = Loop(
                        dim, bound, remainder, spatial=slot.spatial, axis=slot.axis
                    )
                    if slot.spatial:
                        spatial_loops.append(loop)
                    else:
                        temporal_loops.append(loop)
            temporal_loops = self._order_temporal(level.name, temporal_loops, rng)
            nests.append(
                LevelNest(
                    level_name=level.name,
                    temporal=tuple(temporal_loops),
                    spatial=tuple(spatial_loops),
                )
            )
        return Mapping(levels=tuple(nests))

    def _order_temporal(
        self,
        level_name: str,
        loops: List[Loop],
        rng: Optional[random.Random],
    ) -> List[Loop]:
        fixed = self.constraints.permutation(level_name)
        if rng is not None:
            rng.shuffle(loops)
        if not fixed:
            return loops
        priority = {dim: i for i, dim in enumerate(fixed)}
        return sorted(
            loops, key=lambda loop: priority.get(loop.dim, len(priority))
        )

    def enumerate_mappings(
        self,
        limit: Optional[int] = None,
        permutations: bool = False,
    ) -> Iterator[Mapping]:
        """Exhaustively yield mappings (joint fanout filtered).

        With ``permutations=False`` every level keeps canonical (workload)
        dim order; with True all temporal orders per level are emitted.
        Only feasible for toy problems — imperfect mapspaces are huge.
        """
        dims = list(self.workload.dim_names)
        per_dim = [
            list(
                self.allocator.enumerate_chains(dim, self.workload.size(dim))
            )
            for dim in dims
        ]
        spatial_offsets = [
            offset for offset, slot in enumerate(self.slots) if slot.spatial
        ]
        emitted = 0
        for combo in itertools.product(*per_dim):
            if not self._fanout_ok(combo, spatial_offsets):
                continue
            chains = {chain.dim: chain for chain in combo}
            base = self.assemble(chains, rng=None)
            if permutations:
                for mapping in self._permute(base):
                    yield mapping
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
            else:
                yield base
                emitted += 1
                if limit is not None and emitted >= limit:
                    return

    def batch_layout(self):
        """The columnar :class:`~repro.model.batch.BatchLayout` of this space.

        Built once and cached. The layout's column grid mirrors this
        space's slots one-to-one (both derive the same fixed skeleton from
        the architecture), and its virtual position numbering honours the
        constraints' fixed permutations so materialized batch rows equal
        what :meth:`assemble` produces with ``rng=None``. Returns ``None``
        when NumPy is unavailable.
        """
        if self._batch_layout is not None:
            return self._batch_layout
        from repro.model.batch import HAS_NUMPY, BatchLayout

        if not HAS_NUMPY:
            return None
        priorities = {
            level.name: self.constraints.permutation(level.name)
            for level in self.arch.levels
        }
        layout = BatchLayout(
            self.arch, self.workload, permutation_priority=priorities
        )
        columns = [(c.level_index, c.spatial, c.axis) for c in layout.columns]
        slots = [(s.level_index, s.spatial, s.axis) for s in self.slots]
        if columns != slots:
            raise MapspaceError(
                "batch layout columns do not mirror the mapspace slots; "
                "the columnar encoding cannot represent this architecture"
            )
        self._batch_layout = layout
        return layout

    def iter_batches(
        self,
        batch_size: int = 512,
        prefix: Optional[Dict[str, DimChain]] = None,
    ) -> Iterator["object"]:
        """Exhaustively enumerate straight into packed columnar batches.

        The batch analogue of :meth:`enumerate_mappings` with
        ``permutations=False``: identical chain combinations in identical
        order (same joint-fanout filter), but each candidate lands as a
        row of a :class:`~repro.model.batch.MappingBatch` — no ``Mapping``
        objects, no per-candidate Python loop-nest assembly. Positions are
        the layout's virtual grid numbering, which is order-isomorphic to
        the real nest positions, so batch evaluation results are bit-exact
        against the scalar evaluator; rows can still be materialized on
        demand via :meth:`MappingBatch.mapping_at`.

        ``prefix`` pins some dimensions to fixed chains and enumerates
        only the completions — the leaf-pricing primitive of the
        branch-and-bound searcher. The prefix dims keep their menu slot in
        the product order, so iterating every prefix of one dimension
        reproduces the flat enumeration order exactly.
        """
        yield from self.iter_prefix_batches(
            [prefix or {}], batch_size=batch_size
        )

    def partition_prefixes(
        self, dims: Sequence[str]
    ) -> List[Tuple[Tuple[int, ...], Dict[str, DimChain]]]:
        """Partition the chain product into subtree work units over ``dims``.

        The cross product of the named dimensions' menus defines disjoint
        subtrees that jointly cover the whole enumerable space; units
        whose prefix already violates a joint fanout cap are dropped (no
        completion of theirs is enumerable). Each surviving unit is
        returned as ``(indices, prefix)`` — the menu-index tuple along
        ``dims`` plus the pinned-chain dict ready for
        :meth:`prefix_feasible` / :meth:`iter_prefix_batches` — so a
        parallel driver can bound, order, and dispatch them as jobs while
        workers reconstruct the same unit from the tiny index tuple.
        """
        menus = dict(self.dim_chain_menus())
        menu_list = [(dim, menus[dim]) for dim in dims]
        units: List[Tuple[Tuple[int, ...], Dict[str, DimChain]]] = []
        for combo in itertools.product(
            *(range(len(menu)) for _, menu in menu_list)
        ):
            prefix = {
                dim: menu[k] for (dim, menu), k in zip(menu_list, combo)
            }
            if not self.prefix_feasible(prefix):
                continue
            units.append((combo, prefix))
        return units

    def iter_prefix_batches(
        self,
        prefixes: Sequence[Optional[Dict[str, DimChain]]],
        batch_size: int = 512,
        tags: Optional[Sequence[int]] = None,
    ) -> Iterator["object"]:
        """Enumerate many prefixes' completions into *shared* packed batches.

        Rows from consecutive prefixes share one fill buffer, so pricing a
        large set of small subtrees (the branch-and-bound leaf regime)
        still produces full-width batches — one partial batch per call,
        not one per subtree. Within each prefix the candidate order
        matches :meth:`iter_batches` exactly.

        ``tags`` — when given, one int per prefix — stamps every row of a
        yielded batch with its source prefix's tag in ``batch.tags``, so
        callers that pack many subtrees into one batch can recover which
        subtree an improving row came from (provenance survives the
        fanout filter, which silently drops rows).
        """
        layout = self.batch_layout()
        if layout is None:
            raise MapspaceError("batch enumeration requires NumPy")
        if batch_size < 1:
            raise MapspaceError("batch_size must be >= 1")
        if tags is not None and len(tags) != len(prefixes):
            raise MapspaceError("tags must align one-to-one with prefixes")
        import numpy as np

        from repro.model.batch import MappingBatch

        dims = list(self.workload.dim_names)
        # The menus and their packed arrays never change for a given
        # mapspace; cache them (the branch-and-bound leaf flush calls this
        # many times per search). entry_by_id short-circuits the pinned
        # branch below for chains drawn from these same menus.
        cached = getattr(self, "_menu_entry_cache", None)
        if cached is None:
            menu_entries = {
                dim: [
                    (
                        chain,
                        np.asarray(chain.bounds, dtype=np.int64),
                        np.asarray(chain.remainders, dtype=np.int64),
                    )
                    for chain in menu
                ]
                for dim, menu in self.dim_chain_menus()
            }
            entry_by_id = {
                id(entry[0]): entry
                for entries in menu_entries.values()
                for entry in entries
            }
            cached = (menu_entries, entry_by_id)
            self._menu_entry_cache = cached
        menu_entries, entry_by_id = cached
        spatial_caps = [
            (offset, slot.fanout_cap)
            for offset, slot in enumerate(self.slots)
            if slot.spatial
        ]
        shape = (batch_size, len(self.slots), len(dims))
        # Positions are row-constant on the virtual grid; a read-only
        # broadcast view is enough (kernels never write pos).
        pos = np.broadcast_to(layout.grid_pos[None, :, :], shape)
        bounds = np.ones(shape, dtype=np.int64)
        rems = np.ones(shape, dtype=np.int64)
        tag_buf = (
            np.zeros(batch_size, dtype=np.int64) if tags is not None else None
        )
        fill = 0
        for prefix_index, prefix in enumerate(prefixes):
            row_tag = tags[prefix_index] if tags is not None else 0
            prefix = prefix or {}
            per_dim = [
                (
                    [
                        entry_by_id.get(id(prefix[dim]))
                        or (
                            prefix[dim],
                            np.asarray(prefix[dim].bounds, dtype=np.int64),
                            np.asarray(
                                prefix[dim].remainders, dtype=np.int64
                            ),
                        )
                    ]
                    if dim in prefix
                    else menu_entries[dim]
                )
                for dim in dims
            ]
            for combo in itertools.product(*per_dim):
                feasible = True
                for offset, cap in spatial_caps:
                    product = 1
                    for chain, _, _ in combo:
                        product *= chain.bounds[offset]
                    if product > cap:
                        feasible = False
                        break
                if not feasible:
                    continue
                for d, (_, chain_bounds, chain_rems) in enumerate(combo):
                    bounds[fill, :, d] = chain_bounds
                    rems[fill, :, d] = chain_rems
                if tag_buf is not None:
                    tag_buf[fill] = row_tag
                fill += 1
                if fill == batch_size:
                    _obs.inc("mapspace.batches")
                    _obs.inc("mapspace.candidates", batch_size)
                    yield MappingBatch(
                        layout=layout,
                        bounds=bounds,
                        rems=rems,
                        pos=pos,
                        fallback=np.zeros(batch_size, dtype=bool),
                        tags=tag_buf,
                    )
                    bounds = np.ones(shape, dtype=np.int64)
                    rems = np.ones(shape, dtype=np.int64)
                    if tag_buf is not None:
                        tag_buf = np.zeros(batch_size, dtype=np.int64)
                    fill = 0
        if fill:
            _obs.inc("mapspace.batches")
            _obs.inc("mapspace.candidates", fill)
            yield MappingBatch(
                layout=layout,
                bounds=bounds[:fill],
                rems=rems[:fill],
                pos=pos[:fill],
                fallback=np.zeros(fill, dtype=bool),
                tags=tag_buf[:fill] if tag_buf is not None else None,
            )

    def _fanout_ok(
        self, combo: Sequence[DimChain], spatial_offsets: List[int]
    ) -> bool:
        for offset in spatial_offsets:
            cap = self.slots[offset].fanout_cap
            product = 1
            for chain in combo:
                product *= chain.bounds[offset]
            if product > cap:
                return False
        return True

    def _permute(self, base: Mapping) -> Iterator[Mapping]:
        per_level_orders = [
            list(itertools.permutations(nest.temporal)) for nest in base.levels
        ]
        for orders in itertools.product(*per_level_orders):
            yield Mapping(
                levels=tuple(
                    LevelNest(
                        level_name=nest.level_name,
                        temporal=tuple(order),
                        spatial=nest.spatial,
                    )
                    for nest, order in zip(base.levels, orders)
                )
            )

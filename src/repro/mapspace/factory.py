"""Convenience factories for the four mapspaces."""

from __future__ import annotations

from typing import Optional, Union

from repro.arch.spec import Architecture
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem.workload import Workload


def make_mapspace(
    arch: Architecture,
    workload: Workload,
    kind: Union[str, MapspaceKind],
    constraints: Optional[ConstraintSet] = None,
) -> MapSpace:
    """Build a mapspace of ``kind`` ("pfm", "ruby", "ruby-s", "ruby-t")."""
    return MapSpace(arch, workload, MapspaceKind(kind), constraints)


def pfm_mapspace(
    arch: Architecture,
    workload: Workload,
    constraints: Optional[ConstraintSet] = None,
) -> MapSpace:
    """The perfect-factorization (Timeloop-baseline) mapspace."""
    return MapSpace(arch, workload, MapspaceKind.PFM, constraints)


def ruby_mapspace(
    arch: Architecture,
    workload: Workload,
    constraints: Optional[ConstraintSet] = None,
) -> MapSpace:
    """The unconstrained imperfect-factorization mapspace."""
    return MapSpace(arch, workload, MapspaceKind.RUBY, constraints)


def ruby_s_mapspace(
    arch: Architecture,
    workload: Workload,
    constraints: Optional[ConstraintSet] = None,
) -> MapSpace:
    """Imperfect factorization at spatial levels only (the paper's pick)."""
    return MapSpace(arch, workload, MapspaceKind.RUBY_S, constraints)


def ruby_t_mapspace(
    arch: Architecture,
    workload: Workload,
    constraints: Optional[ConstraintSet] = None,
) -> MapSpace:
    """Imperfect factorization at temporal levels only."""
    return MapSpace(arch, workload, MapspaceKind.RUBY_T, constraints)

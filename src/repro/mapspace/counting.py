"""Mapspace-size counting (Table I of the paper).

Table I maps a rank-1 tensor over a two-level hierarchy with a fanout of 9
and reports how many unique mappings each mapspace contains as the tensor
size grows from 3 to 4096: PFM stays tiny, Ruby-S grows moderately (its
spatial bounds are capped by the fanout), and Ruby/Ruby-T explode.

Counting is by exhaustive enumeration with canonical-form deduplication,
optionally intersected with the validity filter (capacity/fanout checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.arch.spec import Architecture
from repro.exceptions import MapspaceError
from repro.mapping.validity import is_valid_mapping
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem.workload import Workload

DEFAULT_ENUMERATION_CAP = 5_000_000


@dataclass(frozen=True)
class MapspaceSizes:
    """Unique-mapping counts of one mapspace for one workload.

    Attributes:
        kind: the mapspace variant counted.
        raw: structurally unique mappings (before validity filtering).
        valid: mappings surviving capacity/fanout checks, or ``None`` when
            validity counting was disabled.
    """

    kind: MapspaceKind
    raw: int
    valid: Optional[int]


def count_mapspace_size(
    arch: Architecture,
    workload: Workload,
    kind: MapspaceKind,
    constraints: Optional[ConstraintSet] = None,
    count_valid: bool = True,
    enumeration_cap: int = DEFAULT_ENUMERATION_CAP,
) -> MapspaceSizes:
    """Count unique mappings of one mapspace by exhaustive enumeration.

    Raises :class:`MapspaceError` if more than ``enumeration_cap`` mappings
    would need to be enumerated (Ruby on large problems).
    """
    space = MapSpace(arch, workload, kind, constraints)
    seen = set()
    valid_count = 0 if count_valid else None
    produced = 0
    for mapping in space.enumerate_mappings():
        produced += 1
        if produced > enumeration_cap:
            raise MapspaceError(
                f"{kind.value} mapspace for {workload.name} exceeds the "
                f"enumeration cap of {enumeration_cap}"
            )
        key = mapping.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        if count_valid and is_valid_mapping(mapping, arch, workload):
            valid_count += 1
    return MapspaceSizes(kind=kind, raw=len(seen), valid=valid_count)


def count_mapspace_sizes(
    arch: Architecture,
    workload: Workload,
    kinds: Iterable[MapspaceKind] = tuple(MapspaceKind),
    constraints: Optional[ConstraintSet] = None,
    count_valid: bool = True,
    enumeration_cap: int = DEFAULT_ENUMERATION_CAP,
) -> Dict[MapspaceKind, MapspaceSizes]:
    """Count several mapspaces at once; see :func:`count_mapspace_size`."""
    return {
        MapspaceKind(kind): count_mapspace_size(
            arch,
            workload,
            MapspaceKind(kind),
            constraints=constraints,
            count_valid=count_valid,
            enumeration_cap=enumeration_cap,
        )
        for kind in kinds
    }


def table1_row(
    arch: Architecture,
    workload: Workload,
    enumeration_cap: int = DEFAULT_ENUMERATION_CAP,
) -> Tuple[int, Dict[str, int]]:
    """One Table-I row: ``(dimension_size, {kind: raw size})``."""
    sizes = count_mapspace_sizes(
        arch, workload, count_valid=False, enumeration_cap=enumeration_cap
    )
    dim = workload.dims[0][1]
    return dim, {kind.value: result.raw for kind, result in sizes.items()}

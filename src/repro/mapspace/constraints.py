"""User constraints on a mapspace (Timeloop's mapspace constraints).

Constraints encode dataflow restrictions that make a generic architecture
behave like a published design — e.g. the paper constrains its Eyeriss-like
baseline "to generate mappings that conform to the data access patterns
amenable to row-stationary dataflows", and its Fig. 7(c/d) toy study imposes
"only C and M be mapped onto the PEs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.exceptions import SpecError


@dataclass(frozen=True)
class ConstraintSet:
    """Restrictions applied during mapspace generation.

    Attributes:
        spatial_dims: per level name, the dims that may carry a nontrivial
            spatial loop below that level (either axis). Intersected with
            the architecture's own ``spatial_dims`` restriction.
        axis_dims: per level name, a ``(x_dims, y_dims)`` pair restricting
            which dims may unroll along each physical mesh axis — the
            Timeloop ``split`` constraint. Missing = no per-axis limit.
        temporal_dims: per level name, the dims that may carry a nontrivial
            temporal loop at that level (``None`` entry / missing = all).
        max_spatial: per level name, a cap on the claimed fanout (defaults
            to the hardware fanout).
        fixed_permutations: per level name, a required outer-to-inner order
            of temporal dims at that level. Dims absent from the tuple keep
            generator order after the listed ones.
    """

    spatial_dims: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    axis_dims: Mapping[str, Tuple[FrozenSet[str], FrozenSet[str]]] = field(
        default_factory=dict
    )
    temporal_dims: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    max_spatial: Mapping[str, int] = field(default_factory=dict)
    fixed_permutations: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def build(
        spatial_dims: Optional[Mapping[str, FrozenSet[str]]] = None,
        axis_dims: Optional[
            Mapping[str, Tuple[FrozenSet[str], FrozenSet[str]]]
        ] = None,
        temporal_dims: Optional[Mapping[str, FrozenSet[str]]] = None,
        max_spatial: Optional[Mapping[str, int]] = None,
        fixed_permutations: Optional[Mapping[str, Tuple[str, ...]]] = None,
    ) -> "ConstraintSet":
        """Build from plain dicts, freezing the value sets."""
        return ConstraintSet(
            spatial_dims={
                name: frozenset(dims) for name, dims in (spatial_dims or {}).items()
            },
            axis_dims={
                name: (frozenset(x_dims), frozenset(y_dims))
                for name, (x_dims, y_dims) in (axis_dims or {}).items()
            },
            temporal_dims={
                name: frozenset(dims) for name, dims in (temporal_dims or {}).items()
            },
            max_spatial=dict(max_spatial or {}),
            fixed_permutations={
                name: tuple(order)
                for name, order in (fixed_permutations or {}).items()
            },
        )

    def allowed_spatial(self, level_name: str) -> Optional[FrozenSet[str]]:
        """Dims allowed spatially below ``level_name`` (None = no limit)."""
        return self.spatial_dims.get(level_name)

    def allowed_on_axis(self, level_name: str, axis: int) -> Optional[FrozenSet[str]]:
        """Dims allowed on one mesh axis of ``level_name`` (None = no limit)."""
        pair = self.axis_dims.get(level_name)
        if pair is None:
            return None
        return pair[axis]

    def allowed_temporal(self, level_name: str) -> Optional[FrozenSet[str]]:
        """Dims allowed temporally at ``level_name`` (None = no limit)."""
        return self.temporal_dims.get(level_name)

    def spatial_cap(self, level_name: str, hardware_fanout: int) -> int:
        """Effective fanout cap at ``level_name``."""
        cap = self.max_spatial.get(level_name, hardware_fanout)
        if cap < 1:
            raise SpecError(f"max_spatial for {level_name} must be >= 1")
        return min(cap, hardware_fanout)

    def permutation(self, level_name: str) -> Optional[Tuple[str, ...]]:
        """Fixed temporal dim order at ``level_name``, if any."""
        return self.fixed_permutations.get(level_name)


def no_constraints() -> ConstraintSet:
    """An empty constraint set (the full hardware-legal mapspace)."""
    return ConstraintSet()


def eyeriss_row_stationary() -> ConstraintSet:
    """Row-stationary-like constraints for the Eyeriss baseline.

    Mirrors the Timeloop+Accelergy exercises' Eyeriss constraint: the mesh
    is split so the X axis unrolls output-map dims (N, P, Q and filter
    columns S) while the Y axis unrolls filter rows and channels (R, C, M).
    This is what gives row-stationary its shape — one filter row per PE
    row, output positions across PE columns — and what creates the Fig. 9
    misalignment: a 27-wide OFM dim cannot tile a 14-wide axis with
    perfect factors.
    """
    return ConstraintSet.build(
        axis_dims={
            "GlobalBuffer": (
                frozenset({"N", "P", "Q", "S"}),
                frozenset({"C", "R", "M"}),
            )
        },
    )

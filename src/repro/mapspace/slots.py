"""Loop slots: the skeleton a mapping fills in.

Walking an architecture outer to inner yields, per storage level, one
*temporal* slot (loops iterating tiles held at the level) and, when the
level fans out, one *spatial* slot (parFor loops unrolled across the
fanout). Mapspace generation assigns each problem dimension a bound at each
slot; slots carry the hardware limits the allocator must respect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.arch.spec import Architecture
from repro.mapspace.constraints import ConstraintSet


@dataclass(frozen=True)
class Slot:
    """One loop block of the global nest skeleton.

    Attributes:
        level_index: storage level owning the slot (0 = outermost).
        level_name: its name.
        spatial: True for fanout (parFor) slots.
        fanout_cap: for spatial slots, the joint bound product limit along
            this slot's mesh axis (hardware fanout intersected with
            constraint caps); 0 for temporal slots.
        axis: physical mesh axis of a spatial slot (0 = X, 1 = Y). A 2-D
            PE array yields one spatial slot per axis, so per-axis fit is
            enforced structurally — the source of the paper's
            dimension/array misalignment.
        allowed_dims: dims that may take a nontrivial bound here
            (``None`` = all).
    """

    level_index: int
    level_name: str
    spatial: bool
    fanout_cap: int = 0
    axis: int = 0
    allowed_dims: Optional[FrozenSet[str]] = None

    def allows(self, dim: str) -> bool:
        """True if ``dim`` may take a nontrivial bound at this slot."""
        return self.allowed_dims is None or dim in self.allowed_dims


def build_slots(
    arch: Architecture, constraints: Optional[ConstraintSet] = None
) -> List[Slot]:
    """Build the outer-to-inner slot list for ``arch`` under ``constraints``.

    Levels with a 2-D fanout (``fanout_x``/``fanout_y`` set) produce two
    spatial slots, one per mesh axis; 1-D fanouts produce one.
    """
    constraints = constraints or ConstraintSet()
    slots: List[Slot] = []
    for index, level in enumerate(arch.levels):
        slots.append(
            Slot(
                level_index=index,
                level_name=level.name,
                spatial=False,
                allowed_dims=constraints.allowed_temporal(level.name),
            )
        )
        if level.fanout > 1:
            allowed = level.spatial_dims
            constrained = constraints.allowed_spatial(level.name)
            if allowed is not None and constrained is not None:
                allowed = allowed & constrained
            elif constrained is not None:
                allowed = constrained
            axis_fanouts = [(0, level.fanout_x), (1, level.fanout_y)]
            if level.fanout_x is None:
                axis_fanouts = [(0, level.fanout)]
            for axis, axis_fanout in axis_fanouts:
                if axis_fanout is None or axis_fanout < 2:
                    continue
                axis_allowed = constraints.allowed_on_axis(level.name, axis)
                slot_allowed = allowed
                if axis_allowed is not None:
                    slot_allowed = (
                        axis_allowed
                        if slot_allowed is None
                        else slot_allowed & axis_allowed
                    )
                slots.append(
                    Slot(
                        level_index=index,
                        level_name=level.name,
                        spatial=True,
                        fanout_cap=constraints.spatial_cap(
                            level.name, axis_fanout
                        ),
                        axis=axis,
                        allowed_dims=slot_allowed,
                    )
                )
    return slots

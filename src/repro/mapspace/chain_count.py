"""Closed-form (dynamic-programming) per-dimension chain counting.

:mod:`repro.mapspace.counting` counts whole mapspaces by enumeration,
which caps out when Ruby's space explodes. Per dimension, however, the
number of distinct bound chains satisfies a clean recursion over
``(slot, residue)`` — exactly the allocator's option structure — so it can
be computed without materializing anything. This extends Table-I-style
size analysis to dimensions far beyond the enumeration budget and gives
the whole-mapspace *upper bound* ``Π_d chains_d`` (upper because the joint
spatial-fanout filter and canonical dedup only remove entries).
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapspaceKind
from repro.mapspace.slots import Slot, build_slots
from repro.utils.mathx import ceil_div, divisors


def count_dim_chains(
    slots: Sequence[Slot],
    kind: MapspaceKind,
    dim: str,
    size: int,
    spatial_caps: Optional[Dict[int, int]] = None,
) -> int:
    """Number of distinct bound chains for one dimension.

    Mirrors :meth:`~repro.mapspace.allocation.DimAllocator.enumerate_chains`
    exactly (same option sets, same residue transitions) but only counts.
    """
    caps = spatial_caps or {}

    def slot_cap(offset: int, residue: int) -> int:
        slot = slots[offset]
        cap = residue
        if slot.spatial:
            cap = min(cap, caps.get(offset, slot.fanout_cap or 1))
            cap = max(cap, 1)
        return cap

    def imperfect(slot: Slot) -> bool:
        if slot.spatial:
            return kind.spatial_imperfect
        return kind.temporal_imperfect

    @functools.lru_cache(maxsize=None)
    def count(offset: int, residue: int) -> int:
        if offset == 0:
            return 1  # the outermost temporal slot absorbs the residue
        slot = slots[offset]
        if residue == 1 or not slot.allows(dim):
            return count(offset - 1, residue)
        total = 0
        cap = slot_cap(offset, residue)
        if imperfect(slot):
            # ceil(residue / b) takes each distinct value on a contiguous
            # range of b; walk value blocks instead of every b up to cap.
            # (Divisor picks inside a block transition to the same quotient:
            # exact division means ceil == floor there.)
            b = 1
            while b <= cap:
                quotient = ceil_div(residue, b)
                if quotient > 1:
                    b_hi = (residue - 1) // (quotient - 1)
                else:
                    b_hi = cap
                b_hi = min(b_hi, cap)
                total += (b_hi - b + 1) * count(offset - 1, quotient)
                b = b_hi + 1
            return total
        for divisor in divisors(residue):
            if divisor <= cap:
                total += count(offset - 1, residue // divisor)
        return total

    return count(len(slots) - 1, size)


def mapspace_upper_bound(
    arch: Architecture,
    dim_sizes: Dict[str, int],
    kind: MapspaceKind,
    constraints: Optional[ConstraintSet] = None,
) -> int:
    """Upper bound on the number of distinct bound assignments.

    The product of per-dimension chain counts; the true (deduplicated,
    fanout-filtered) mapspace is at most this large. Permutation and
    bypass choices multiply on top.
    """
    slots = build_slots(arch, constraints)
    total = 1
    for dim, size in dim_sizes.items():
        total *= count_dim_chains(slots, kind, dim, size)
    return total

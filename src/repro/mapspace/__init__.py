"""Mapspace generation: PFM (perfect factorization) and Ruby variants.

The four mapspaces of the paper, all built on one allocator
(:mod:`repro.mapspace.allocation`) that walks each problem dimension's loop
slots from the innermost level outward:

* **PFM** — every bound divides the remaining extent exactly (Timeloop).
* **Ruby** — every bound is a free integer; the Eq. (5) remainders follow
  uniquely from the mixed-radix decomposition of ``D - 1``.
* **Ruby-S** — free bounds at spatial slots only (temporal bounds must
  divide exactly); remainders land on the spatial levels.
* **Ruby-T** — free bounds at temporal slots only.
"""

from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.slots import Slot, build_slots
from repro.mapspace.allocation import DimAllocator, assign_remainders
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.mapspace.factory import (
    make_mapspace,
    pfm_mapspace,
    ruby_mapspace,
    ruby_s_mapspace,
    ruby_t_mapspace,
)
from repro.mapspace.counting import MapspaceSizes, count_mapspace_sizes
from repro.mapspace.chain_count import count_dim_chains, mapspace_upper_bound

__all__ = [
    "ConstraintSet",
    "Slot",
    "build_slots",
    "DimAllocator",
    "assign_remainders",
    "MapSpace",
    "MapspaceKind",
    "make_mapspace",
    "pfm_mapspace",
    "ruby_mapspace",
    "ruby_s_mapspace",
    "ruby_t_mapspace",
    "MapspaceSizes",
    "count_mapspace_sizes",
    "count_dim_chains",
    "mapspace_upper_bound",
]

"""Static (leakage) energy model — an optional fidelity extension.

The paper's evaluation (like Timeloop+Accelergy's default flow) prices
dynamic access energy only. Leakage adds a term proportional to silicon
area times execution time, which *rewards* the latency reductions Ruby-S
delivers: a mapping that finishes in fewer cycles leaks less. Numbers are
45 nm-class ballparks; the term is disabled by default so baseline results
match the paper's methodology.
"""

from __future__ import annotations

from repro.arch.spec import Architecture
from repro.energy.area import estimate_area_mm2

LEAKAGE_MW_PER_MM2 = 15.0
DEFAULT_CLOCK_GHZ = 1.0


def static_power_mw(arch: Architecture) -> float:
    """Total leakage power of ``arch`` in milliwatts (area-proportional)."""
    return estimate_area_mm2(arch) * LEAKAGE_MW_PER_MM2


def static_energy_pj(
    arch: Architecture, cycles: int, clock_ghz: float = DEFAULT_CLOCK_GHZ
) -> float:
    """Leakage energy of running ``arch`` for ``cycles`` at ``clock_ghz``.

    ``P[mW] * t[ns] = E[pJ]``; one cycle at 1 GHz is 1 ns.
    """
    if cycles < 0:
        raise ValueError(f"cycles must be non-negative, got {cycles}")
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    nanoseconds = cycles / clock_ghz
    return static_power_mw(arch) * nanoseconds

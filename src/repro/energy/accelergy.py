"""Accelergy-like estimator: build an energy table for an architecture.

Dispatches each storage level to the appropriate component model:

* the outermost (unbounded) level -> DRAM model,
* bounded SRAM levels -> analytical Cacti-like SRAM model, with
  operand-private partitions priced individually at their own (smaller,
  cheaper) capacities — the reason Eyeriss splits its PE storage,
* the compute level -> Aladdin-class fixed MAC energy.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.spec import Architecture
from repro.energy.dram import dram_access_energy_pj
from repro.energy.sram import sram_access_energy_pj
from repro.energy.table import EnergyTable, LevelEnergy

MAC_16BIT_PJ = 2.2
SRAM_WRITE_FACTOR = 1.1


def mac_energy_pj(word_bits: int) -> float:
    """Energy of one multiply-accumulate; quadratic-ish in precision.

    Multiplier energy scales roughly with the square of operand width; we
    normalize to 2.2 pJ for the paper's 16-bit integer MAC.
    """
    if word_bits < 1:
        raise ValueError(f"word_bits must be >= 1, got {word_bits}")
    return MAC_16BIT_PJ * (word_bits / 16.0) ** 2


def estimate_energy_table(arch: Architecture) -> EnergyTable:
    """Estimate per-access energies for every level of ``arch``.

    Partitioned levels (per-tensor private buffers) are priced at the
    capacity-weighted mean of their partition energies, which keeps the
    table per-level while reflecting that a 12-word input spad is far
    cheaper to access than a 224-word weight spad.
    """
    levels: Dict[str, LevelEnergy] = {}
    for level in arch.levels:
        if level.total_capacity_words is None:
            read = dram_access_energy_pj(level.word_bits)
            levels[level.name] = LevelEnergy(read_pj=read, write_pj=read)
            continue
        if level.per_tensor_capacity is not None:
            total_words = 0
            weighted = 0.0
            for _, words in level.per_tensor_capacity:
                capacity_bytes = max(1, words * level.word_bits // 8)
                energy = sram_access_energy_pj(capacity_bytes, level.word_bits)
                weighted += energy * words
                total_words += words
            read = weighted / total_words
        else:
            capacity_bytes = max(1, level.capacity_words * level.word_bits // 8)
            read = sram_access_energy_pj(capacity_bytes, level.word_bits)
        levels[level.name] = LevelEnergy(
            read_pj=read, write_pj=read * SRAM_WRITE_FACTOR
        )
    return EnergyTable(levels=levels, mac_pj=mac_energy_pj(arch.compute.word_bits))


def per_tensor_access_energy_pj(arch: Architecture, level_name: str, tensor: str) -> float:
    """Access energy for a specific operand partition of a level.

    Falls back to the level's shared estimate when the level is not
    partitioned or does not list the tensor.
    """
    level = arch.level(level_name)
    words = level.tensor_capacity(tensor)
    if words is None:
        return estimate_energy_table(arch).read_pj(level_name)
    capacity_bytes = max(1, words * level.word_bits // 8)
    return sram_access_energy_pj(capacity_bytes, level.word_bits)

"""Energy and area estimation (the Accelergy + Cacti + Aladdin substitute).

The paper evaluates energy with Accelergy, which dispatches large memories
to Cacti and small components to Aladdin-derived tables. We replace that
toolchain with analytical models calibrated to the well-known relative
access costs of the Eyeriss paper (register file ~1x MAC, global buffer
~6x, DRAM ~200x). Because every result in the paper is a *ratio* between
mapspaces evaluated on the same cost model, preserving this ordering
preserves the paper's shapes.
"""

from repro.energy.sram import sram_access_energy_pj, sram_area_mm2
from repro.energy.dram import DRAM_ACCESS_PJ, dram_access_energy_pj
from repro.energy.table import EnergyTable, LevelEnergy
from repro.energy.accelergy import estimate_energy_table
from repro.energy.area import estimate_area_mm2

__all__ = [
    "sram_access_energy_pj",
    "sram_area_mm2",
    "DRAM_ACCESS_PJ",
    "dram_access_energy_pj",
    "EnergyTable",
    "LevelEnergy",
    "estimate_energy_table",
    "estimate_area_mm2",
]

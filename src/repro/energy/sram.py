"""Analytical SRAM energy and area model (the Cacti substitute).

Cacti produces per-access energy and layout area for SRAM arrays from
capacity, word width, and technology. We use a closed-form fit with the
classic square-root capacity scaling of SRAM bitline/wordline energy:

``E_access(pJ) = E_BASE + E_SCALE * sqrt(capacity_bytes)`` per 16-bit word.

Calibration targets (45 nm-class numbers widely used in the accelerator
literature, e.g. the Eyeriss energy table):

* a ~0.5 KiB register-file-class scratchpad costs about 1x a 16-bit MAC,
* a 128 KiB global buffer costs about 6x a MAC,
* DRAM (see :mod:`repro.energy.dram`) costs about 100x a MAC per word.
"""

from __future__ import annotations

import math

E_BASE_PJ = 0.2
E_SCALE_PJ_PER_SQRT_BYTE = 0.035

AREA_BASE_MM2 = 0.0005
AREA_PER_KIB_MM2 = 0.004

REFERENCE_WORD_BITS = 16


def sram_access_energy_pj(capacity_bytes: int, word_bits: int = 16) -> float:
    """Energy of one word access to an SRAM of ``capacity_bytes``.

    Scales linearly with word width relative to the 16-bit reference word.
    """
    if capacity_bytes < 1:
        raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
    if word_bits < 1:
        raise ValueError(f"word_bits must be >= 1, got {word_bits}")
    per_reference_word = E_BASE_PJ + E_SCALE_PJ_PER_SQRT_BYTE * math.sqrt(
        capacity_bytes
    )
    return per_reference_word * (word_bits / REFERENCE_WORD_BITS)


def sram_area_mm2(capacity_bytes: int) -> float:
    """Layout area of an SRAM array, linear in capacity plus fixed overhead."""
    if capacity_bytes < 1:
        raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
    return AREA_BASE_MM2 + AREA_PER_KIB_MM2 * (capacity_bytes / 1024.0)

"""Network-on-chip transfer energy — an optional fidelity extension.

The baseline model prices array accesses only; distributing a word across
a PE mesh also spends wire/router energy proportional to the distance
travelled. We use the standard mesh estimate: an average unicast crosses
~(sqrt(N))/2 hops of an N-instance mesh, and a multicast spanning the mesh
touches every row/column bus once. Per-hop energy is a 45 nm-class
ballpark per 16-bit word.

Enabled via ``Evaluator(include_noc=True)``; disabled by default to match
the paper's methodology.
"""

from __future__ import annotations

import math

from repro.arch.spec import Architecture
from repro.model.access_counts import AccessCounts

HOP_ENERGY_PJ = 0.06  # per 16-bit word per hop


def average_hops(fanout: int) -> float:
    """Mean Manhattan distance from a buffer to one of ``fanout`` children.

    For a square-ish mesh of N nodes the average source-to-node distance is
    about sqrt(N): half of it per axis, summed over two axes.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if fanout == 1:
        return 0.0
    return math.sqrt(fanout)


def noc_energy_pj(arch: Architecture, counts: AccessCounts) -> float:
    """Total NoC transfer energy for the given access counts.

    Every word read out of a level with a fanout below it crosses the
    distribution network once (reads are multicast-deduped already, so this
    under-counts multicast leaf deliveries slightly — consistent across
    mapspaces); every word written up (drains) crosses it in reverse.
    """
    total = 0.0
    for index, level in enumerate(arch.levels):
        if level.fanout <= 1:
            continue
        hops = average_hops(level.fanout)
        words = counts.level_reads(index)
        # Drain traffic into this level from its children also crosses the
        # same network: count writes at this level that came from below,
        # i.e. everything except fills from above. Fills from above are
        # writes at the *child* side; at this level they came from its own
        # parent's network, already charged there. Charging all writes here
        # is a consistent upper bound shared by every mapping.
        words += counts.level_writes(index)
        total += words * hops * HOP_ENERGY_PJ
    return total

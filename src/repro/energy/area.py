"""Area estimation for architectural design-space sweeps (Figs. 13/14).

The Pareto studies plot accelerator area against achieved EDP while the PE
array sweeps from 2x7 to 16x16. Area = sum of SRAM macro areas (each
physical instance counted) + MAC area + fixed per-PE overhead (control,
NoC routers). Absolute numbers are 45 nm-class ballparks; only monotone
growth with array size matters for the frontier's shape.
"""

from __future__ import annotations

from repro.arch.spec import Architecture
from repro.energy.sram import sram_area_mm2

MAC_AREA_MM2 = 0.0020
PE_OVERHEAD_MM2 = 0.0010


def estimate_area_mm2(arch: Architecture) -> float:
    """Total silicon area of ``arch`` in mm^2 (excluding DRAM)."""
    area = 0.0
    for index, level in enumerate(arch.levels):
        if level.total_capacity_words is None:
            continue  # off-chip
        instances = arch.instances_at(index)
        if level.per_tensor_capacity is not None:
            level_area = sum(
                sram_area_mm2(max(1, words * level.word_bits // 8))
                for _, words in level.per_tensor_capacity
            )
        else:
            level_area = sram_area_mm2(
                max(1, level.capacity_words * level.word_bits // 8)
            )
        area += level_area * instances
    compute_units = arch.total_compute_units
    area += compute_units * (MAC_AREA_MM2 + PE_OVERHEAD_MM2)
    return area

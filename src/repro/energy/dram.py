"""DRAM access-energy model.

Off-chip DRAM access energy is dominated by I/O and is effectively flat in
the capacities relevant here. We use the canonical ~200x-a-MAC figure from
the Eyeriss energy table: 200 pJ per 16-bit word.
"""

from __future__ import annotations

DRAM_ACCESS_PJ = 200.0

REFERENCE_WORD_BITS = 16


def dram_access_energy_pj(word_bits: int = 16) -> float:
    """Energy of one DRAM word access, scaled by word width."""
    if word_bits < 1:
        raise ValueError(f"word_bits must be >= 1, got {word_bits}")
    return DRAM_ACCESS_PJ * (word_bits / REFERENCE_WORD_BITS)

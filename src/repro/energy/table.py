"""Energy tables: per-level access energies consumed by the cost model.

An :class:`EnergyTable` is the interface between architecture/energy
estimation and the analytical cost model — exactly Accelergy's role in the
paper's toolchain (Timeloop produces access counts, Accelergy prices them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.exceptions import SpecError


@dataclass(frozen=True)
class LevelEnergy:
    """Per-access energies for one storage level, in picojoules per word."""

    read_pj: float
    write_pj: float

    def __post_init__(self) -> None:
        if self.read_pj < 0 or self.write_pj < 0:
            raise SpecError("access energies must be non-negative")


@dataclass(frozen=True)
class EnergyTable:
    """Access energies for every storage level plus the compute energy.

    Attributes:
        levels: ``{level_name: LevelEnergy}``.
        mac_pj: energy of one MAC operation.
    """

    levels: Mapping[str, LevelEnergy]
    mac_pj: float

    def __post_init__(self) -> None:
        if self.mac_pj < 0:
            raise SpecError("mac energy must be non-negative")

    def read_pj(self, level_name: str) -> float:
        return self._level(level_name).read_pj

    def write_pj(self, level_name: str) -> float:
        return self._level(level_name).write_pj

    def _level(self, level_name: str) -> LevelEnergy:
        try:
            return self.levels[level_name]
        except KeyError:
            raise SpecError(
                f"energy table has no entry for level {level_name}; "
                f"known levels: {sorted(self.levels)}"
            ) from None

    def scaled(self, factor: float) -> "EnergyTable":
        """Return a copy with all energies multiplied by ``factor``.

        Useful for technology scaling what-ifs without rebuilding the table.
        """
        if factor < 0:
            raise SpecError("scale factor must be non-negative")
        scaled_levels: Dict[str, LevelEnergy] = {
            name: LevelEnergy(e.read_pj * factor, e.write_pj * factor)
            for name, e in self.levels.items()
        }
        return EnergyTable(levels=scaled_levels, mac_pj=self.mac_pj * factor)

"""The Architecture: an ordered hierarchy of storage levels plus compute.

Levels are listed outermost first (DRAM at index 0); the compute level sits
below the last storage level. The *logical* hierarchy seen by mappings
interleaves a temporal loop block per storage level with a spatial loop
block per nonunit fanout, exactly as in Timeloop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.arch.level import ComputeLevel, StorageLevel
from repro.exceptions import SpecError
from repro.utils.mathx import product


@dataclass(frozen=True)
class Architecture:
    """A complete accelerator specification.

    Attributes:
        name: e.g. ``"eyeriss-like-14x12"``.
        levels: storage levels, outermost (DRAM) first.
        compute: the MAC level.
        mesh_x / mesh_y: optional headline PE-array shape for reporting
            (e.g. 14x12); behavioural fanouts live on the levels themselves.
    """

    name: str
    levels: Tuple[StorageLevel, ...]
    compute: ComputeLevel = ComputeLevel()
    mesh_x: Optional[int] = None
    mesh_y: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("architecture name must be non-empty")
        if not self.levels:
            raise SpecError(f"architecture {self.name} has no storage levels")
        names = [level.name for level in self.levels]
        if len(set(names)) != len(names):
            raise SpecError(f"architecture {self.name} has duplicate level names")
        if self.levels[0].capacity_words is not None:
            # The outermost level backs the whole problem; by convention it
            # is unbounded (DRAM). A bounded outer level would reject any
            # workload bigger than itself, which is never what presets mean.
            raise SpecError(
                f"architecture {self.name}: outermost level "
                f"{self.levels[0].name} must be unbounded (capacity None)"
            )

    @property
    def num_storage_levels(self) -> int:
        return len(self.levels)

    @property
    def innermost(self) -> StorageLevel:
        return self.levels[-1]

    @property
    def outermost(self) -> StorageLevel:
        return self.levels[0]

    def level(self, name: str) -> StorageLevel:
        """Look up a storage level by name."""
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"architecture {self.name} has no level {name}")

    def level_index(self, name: str) -> int:
        """Index of a storage level (0 = outermost)."""
        for i, lvl in enumerate(self.levels):
            if lvl.name == name:
                return i
        raise KeyError(f"architecture {self.name} has no level {name}")

    @property
    def total_compute_units(self) -> int:
        """Total parallel MAC instances = product of all fanouts."""
        return product(level.fanout for level in self.levels)

    def instances_at(self, index: int) -> int:
        """Number of physical instances of storage level ``index``.

        The outermost level has one instance; each nonunit fanout above a
        level multiplies its instance count.
        """
        if not 0 <= index < len(self.levels):
            raise IndexError(f"level index {index} out of range")
        return product(level.fanout for level in self.levels[:index])

    def iter_levels_inner_to_outer(self) -> Iterator[Tuple[int, StorageLevel]]:
        """Yield ``(index, level)`` from the innermost level outward."""
        for index in range(len(self.levels) - 1, -1, -1):
            yield index, self.levels[index]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"Architecture {self.name}:"]
        for index, level in enumerate(self.levels):
            cap = (
                "unbounded"
                if level.total_capacity_words is None
                else f"{level.total_capacity_words} words"
            )
            fanout = f" --fanout {level.fanout}-->" if level.fanout > 1 else ""
            lines.append(
                f"  [{index}] {level.name}: {cap}, "
                f"{self.instances_at(index)} instance(s){fanout}"
            )
        lines.append(
            f"  [compute] {self.compute.name}: "
            f"{self.total_compute_units} unit(s), {self.compute.word_bits}-bit"
        )
        return "\n".join(lines)

    def with_levels(self, levels: List[StorageLevel], name: Optional[str] = None) -> "Architecture":
        """Return a copy with replaced storage levels (for DSE sweeps)."""
        return Architecture(
            name=name or self.name,
            levels=tuple(levels),
            compute=self.compute,
            mesh_x=self.mesh_x,
            mesh_y=self.mesh_y,
        )

    def capacity_summary(self) -> Dict[str, Optional[int]]:
        """``{level_name: total words}`` for quick inspection."""
        return {level.name: level.total_capacity_words for level in self.levels}

"""Eyeriss-like architecture preset (the paper's baseline, Fig. 2).

Hierarchy (paper Section II-B):

* DRAM (off-chip, unbounded)
* Global buffer (GLB), 128 KiB shared — holds inputs and outputs; model
  parameters (weights) stream past it directly into the PE weight spads.
* 14x12 PE array (spatial fanout 168)
* Per-PE operand-private scratchpads: input buffer depth 12, partial-sum
  buffer depth 16, weight buffer depth 224 (16-bit words).
* 16-bit integer MAC per PE.

Run-length encoding is not modelled, matching the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture

GLB_BYTES_DEFAULT = 128 * 1024
PE_INPUT_DEPTH = 12
PE_PSUM_DEPTH = 16
PE_WEIGHT_DEPTH = 224
WORD_BITS = 16


def eyeriss_like(
    mesh_x: int = 14,
    mesh_y: int = 12,
    glb_bytes: int = GLB_BYTES_DEFAULT,
    pe_input_depth: int = PE_INPUT_DEPTH,
    pe_psum_depth: int = PE_PSUM_DEPTH,
    pe_weight_depth: int = PE_WEIGHT_DEPTH,
    flat_mesh: bool = False,
    name: Optional[str] = None,
) -> Architecture:
    """Build an Eyeriss-like accelerator.

    Args:
        mesh_x: PE columns (14 in the original design).
        mesh_y: PE rows (12 in the original design).
        glb_bytes: shared global-buffer capacity in bytes (128 KiB default).
        pe_input_depth: per-PE input scratchpad depth in words.
        pe_psum_depth: per-PE partial-sum scratchpad depth in words.
        pe_weight_depth: per-PE weight scratchpad depth in words.
        flat_mesh: treat the array as a 1-D fanout of ``mesh_x * mesh_y``
            PEs instead of a 2-D mesh. This is an *ablation* switch: with a
            flat fanout, spatial factors only have to fit the PE count, so
            much of the dimension/array misalignment Ruby-S exploits
            disappears. Real Eyeriss is a 2-D mesh.
        name: override the auto-generated name.

    The architectural sweep of Figs. 13/14 varies ``mesh_x`` x ``mesh_y``
    from 2x7 to 16x16 while keeping the PE microarchitecture fixed.
    """
    glb_words = glb_bytes * 8 // WORD_BITS
    dram = StorageLevel.build(
        name="DRAM",
        capacity_words=None,
        word_bits=WORD_BITS,
    )
    glb = StorageLevel.build(
        name="GlobalBuffer",
        capacity_words=glb_words,
        word_bits=WORD_BITS,
        # Weights bypass the GLB (streamed straight to PE weight spads).
        keeps={"Inputs", "Outputs"},
        fanout=mesh_x * mesh_y,
        fanout_x=None if flat_mesh else mesh_x,
        fanout_y=None if flat_mesh else mesh_y,
    )
    pe = StorageLevel.build(
        name="PEBuffer",
        word_bits=WORD_BITS,
        per_tensor_capacity={
            "Inputs": pe_input_depth,
            "Outputs": pe_psum_depth,
            "Weights": pe_weight_depth,
        },
        keeps={"Inputs", "Outputs", "Weights"},
    )
    return Architecture(
        name=name or f"eyeriss-like-{mesh_x}x{mesh_y}",
        levels=(dram, glb, pe),
        compute=ComputeLevel(name="MAC", word_bits=WORD_BITS),
        mesh_x=mesh_x,
        mesh_y=mesh_y,
    )

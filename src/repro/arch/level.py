"""Building blocks of an architecture: storage and compute levels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.exceptions import SpecError


@dataclass(frozen=True)
class StorageLevel:
    """One level of the (logical) memory hierarchy.

    Attributes:
        name: e.g. ``"DRAM"``, ``"GlobalBuffer"``, ``"PEBuffer"``.
        capacity_words: shared capacity in words, or ``None`` for unbounded
            (DRAM). When ``per_tensor_capacity`` is given it overrides this
            with operand-private buffers (as in Eyeriss PEs).
        word_bits: word width in bits.
        keeps: tensor names this level may hold. ``None`` means all tensors;
            a tensor not in ``keeps`` bypasses this level (e.g. weights skip
            the Eyeriss GLB and stream straight into the PE weight spads).
        per_tensor_capacity: optional ``{tensor_name: words}`` for levels
            built from operand-private buffers. Tensors listed here must be
            a subset of ``keeps`` (when ``keeps`` is set).
        fanout: number of instances of the next-inner level fed by each
            instance of this level (1 = no spatial fanout below this level).
        fanout_x / fanout_y: optional physical mesh shape with
            ``fanout_x * fanout_y == fanout``; used by area reporting and by
            mesh-aware constraints. Defaults to a 1-D arrangement.
        spatial_dims: problem dims that may be mapped spatially below this
            level (``None`` = any). Captures dataflow restrictions like
            Simba's C/M-only PE parallelism.
        bandwidth_words_per_cycle: read bandwidth toward the child level;
            ``None`` disables the bandwidth stall model for this level.
    """

    name: str
    capacity_words: Optional[int] = None
    word_bits: int = 16
    keeps: Optional[FrozenSet[str]] = None
    per_tensor_capacity: Optional[Tuple[Tuple[str, int], ...]] = None
    fanout: int = 1
    fanout_x: Optional[int] = None
    fanout_y: Optional[int] = None
    spatial_dims: Optional[FrozenSet[str]] = None
    bandwidth_words_per_cycle: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("storage level name must be non-empty")
        if self.capacity_words is not None and self.capacity_words < 1:
            raise SpecError(
                f"level {self.name}: capacity_words must be >= 1 or None, "
                f"got {self.capacity_words}"
            )
        if self.word_bits < 1:
            raise SpecError(f"level {self.name}: word_bits must be >= 1")
        if self.fanout < 1:
            raise SpecError(f"level {self.name}: fanout must be >= 1")
        if (self.fanout_x is None) != (self.fanout_y is None):
            raise SpecError(
                f"level {self.name}: fanout_x and fanout_y must be set together"
            )
        if self.fanout_x is not None:
            if self.fanout_x * self.fanout_y != self.fanout:
                raise SpecError(
                    f"level {self.name}: fanout_x*fanout_y "
                    f"({self.fanout_x}x{self.fanout_y}) != fanout ({self.fanout})"
                )
        if self.per_tensor_capacity is not None:
            for tensor, words in self.per_tensor_capacity:
                if words < 1:
                    raise SpecError(
                        f"level {self.name}: capacity for {tensor} must be >= 1"
                    )
                if self.keeps is not None and tensor not in self.keeps:
                    raise SpecError(
                        f"level {self.name}: per-tensor capacity for {tensor} "
                        f"but {tensor} not in keeps"
                    )

    @staticmethod
    def build(
        name: str,
        capacity_words: Optional[int] = None,
        word_bits: int = 16,
        keeps: Optional[FrozenSet[str]] = None,
        per_tensor_capacity: Optional[Mapping[str, int]] = None,
        fanout: int = 1,
        fanout_x: Optional[int] = None,
        fanout_y: Optional[int] = None,
        spatial_dims: Optional[FrozenSet[str]] = None,
        bandwidth_words_per_cycle: Optional[float] = None,
    ) -> "StorageLevel":
        """Convenience constructor accepting plain containers."""
        return StorageLevel(
            name=name,
            capacity_words=capacity_words,
            word_bits=word_bits,
            keeps=frozenset(keeps) if keeps is not None else None,
            per_tensor_capacity=(
                tuple(sorted(per_tensor_capacity.items()))
                if per_tensor_capacity is not None
                else None
            ),
            fanout=fanout,
            fanout_x=fanout_x,
            fanout_y=fanout_y,
            spatial_dims=frozenset(spatial_dims) if spatial_dims is not None else None,
            bandwidth_words_per_cycle=bandwidth_words_per_cycle,
        )

    def keeps_tensor(self, tensor_name: str) -> bool:
        """True if this level is allowed to buffer ``tensor_name``."""
        return self.keeps is None or tensor_name in self.keeps

    def tensor_capacity(self, tensor_name: str) -> Optional[int]:
        """Private capacity for ``tensor_name`` if this level is partitioned."""
        if self.per_tensor_capacity is None:
            return None
        for name, words in self.per_tensor_capacity:
            if name == tensor_name:
                return words
        return None

    @property
    def is_partitioned(self) -> bool:
        return self.per_tensor_capacity is not None

    @property
    def total_capacity_words(self) -> Optional[int]:
        """Total words this level can hold (summing private partitions)."""
        if self.per_tensor_capacity is not None:
            return sum(words for _, words in self.per_tensor_capacity)
        return self.capacity_words


@dataclass(frozen=True)
class ComputeLevel:
    """The innermost (arithmetic) level: scalar or vector MAC units.

    Attributes:
        name: e.g. ``"MAC"``.
        word_bits: operand precision (16-bit integer in the paper).
        ops_per_cycle: MACs issued per unit per cycle (1 for a scalar MAC).
    """

    name: str = "MAC"
    word_bits: int = 16
    ops_per_cycle: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("compute level name must be non-empty")
        if self.word_bits < 1:
            raise SpecError("compute word_bits must be >= 1")
        if self.ops_per_cycle < 1:
            raise SpecError("ops_per_cycle must be >= 1")

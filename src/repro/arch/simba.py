"""Simba-like architecture preset (paper Section IV-C, Fig. 12).

Simba [Shao et al., MICRO'19] builds PEs around vector MACs with shared
local weight/input/accumulation buffers. The paper evaluates a 15-PE
configuration whose PEs each contain four 4-wide vector MACs (16 lanes),
and a 9-PE configuration with three 3-wide vector MACs (9 lanes). PE-level
parallelism is restricted to the input-channel (C) and output-channel (M)
dimensions, matching Simba's data access patterns.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture

WORD_BITS = 16
GLB_BYTES_DEFAULT = 64 * 1024
PE_WEIGHT_BYTES = 32 * 1024
PE_INPUT_BYTES = 8 * 1024
PE_ACCUM_BYTES = 3 * 1024


def simba_like(
    num_pes: int = 15,
    vector_macs_per_pe: int = 4,
    vector_width: int = 4,
    glb_bytes: int = GLB_BYTES_DEFAULT,
    pe_weight_bytes: int = PE_WEIGHT_BYTES,
    pe_input_bytes: int = PE_INPUT_BYTES,
    pe_accum_bytes: int = PE_ACCUM_BYTES,
    name: Optional[str] = None,
) -> Architecture:
    """Build a Simba-like accelerator.

    Args:
        num_pes: number of PEs (the paper uses 15, and also 9).
        vector_macs_per_pe: vector MAC units per PE (4 in the 15-PE config).
        vector_width: lanes per vector MAC (4 in the 15-PE config).
        glb_bytes: shared global buffer size.
        pe_weight_bytes / pe_input_bytes / pe_accum_bytes: per-PE buffer
            capacities for the weight, input, and accumulation buffers.
        name: override the auto-generated name.

    The intra-PE lanes (``vector_macs_per_pe * vector_width``) appear as a
    second spatial fanout below the PE buffers, restricted to the C and M
    dimensions like the inter-PE fanout.
    """
    lanes = vector_macs_per_pe * vector_width
    dram = StorageLevel.build(name="DRAM", capacity_words=None, word_bits=WORD_BITS)
    glb = StorageLevel.build(
        name="GlobalBuffer",
        capacity_words=glb_bytes * 8 // WORD_BITS,
        word_bits=WORD_BITS,
        keeps={"Inputs", "Outputs"},
        fanout=num_pes,
        spatial_dims={"C", "M", "K"},
    )
    # Vector-MAC lanes read operands straight out of the PE buffers through
    # the distribution network, so the lane fanout hangs off the PE level
    # (there is no per-lane storage to model).
    pe = StorageLevel.build(
        name="PEBuffer",
        word_bits=WORD_BITS,
        per_tensor_capacity={
            "Weights": pe_weight_bytes * 8 // WORD_BITS,
            "Inputs": pe_input_bytes * 8 // WORD_BITS,
            "Outputs": pe_accum_bytes * 8 // WORD_BITS,
        },
        keeps={"Inputs", "Outputs", "Weights"},
        fanout=lanes,
        fanout_x=vector_macs_per_pe,
        fanout_y=vector_width,
        spatial_dims={"C", "M", "K"},
    )
    return Architecture(
        name=name or f"simba-like-{num_pes}pe-{vector_macs_per_pe}x{vector_width}",
        levels=(dram, glb, pe),
        compute=ComputeLevel(name="VectorMAC", word_bits=WORD_BITS),
        mesh_x=num_pes,
        mesh_y=1,
    )

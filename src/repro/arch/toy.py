"""Toy architectures used by the paper's Section II-D / III studies.

Two shapes appear in the paper:

* Fig. 4/5: a global buffer (1 KiB) fanning out to a small grid of PEs with
  no local storage — used for the 100-element distribution example.
* Fig. 7 / Table I / Fig. 8: a two-level hierarchy where each PE of a linear
  array owns a 1 KiB scratchpad — used for the mapspace-expansion studies.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture

WORD_BITS = 16


def toy_glb_architecture(
    num_pes: int = 6,
    glb_bytes: int = 1024,
    name: Optional[str] = None,
) -> Architecture:
    """DRAM -> small GLB -> ``num_pes`` storage-less PEs (Figs. 4 and 5).

    PEs without local storage are modelled as tiny (4-word) staging
    registers — just enough to latch one element per operand — so every
    operand streams from the GLB each cycle.
    """
    dram = StorageLevel.build(name="DRAM", capacity_words=None, word_bits=WORD_BITS)
    glb = StorageLevel.build(
        name="GlobalBuffer",
        capacity_words=glb_bytes * 8 // WORD_BITS,
        word_bits=WORD_BITS,
        fanout=num_pes,
    )
    pe = StorageLevel.build(name="PERegister", capacity_words=4, word_bits=WORD_BITS)
    return Architecture(
        name=name or f"toy-glb-{num_pes}pe",
        levels=(dram, glb, pe),
        compute=ComputeLevel(),
        mesh_x=num_pes,
        mesh_y=1,
    )


def toy_linear_architecture(
    num_pes: int,
    pe_buffer_bytes: int = 1024,
    name: Optional[str] = None,
) -> Architecture:
    """DRAM -> linear array of ``num_pes`` PEs, each with a private buffer.

    This is the two-level toy of Fig. 7 ("each linear-PE allocated a 1 KiB
    scratchpad buffer"), Table I (fanout 9), and Fig. 8 (16 PEs).
    """
    dram = StorageLevel.build(
        name="DRAM",
        capacity_words=None,
        word_bits=WORD_BITS,
        fanout=num_pes,
    )
    pe = StorageLevel.build(
        name="PEBuffer",
        capacity_words=pe_buffer_bytes * 8 // WORD_BITS,
        word_bits=WORD_BITS,
    )
    return Architecture(
        name=name or f"toy-linear-{num_pes}pe",
        levels=(dram, pe),
        compute=ComputeLevel(),
        mesh_x=num_pes,
        mesh_y=1,
    )

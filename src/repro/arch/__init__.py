"""Architecture specifications: memory hierarchies with spatial fanouts.

An :class:`~repro.arch.spec.Architecture` is an ordered list of storage
levels (outermost/DRAM first) ending at a compute level (the MAC units).
Each storage level may fan out spatially to multiple instances of the level
below it — that fanout is where spatial (``parFor``) loops live.

Presets reproduce the designs of the paper: an Eyeriss-like 14x12 row-
stationary accelerator, a Simba-like multi-PE vector-MAC accelerator, and
the toy linear arrays of Section III.
"""

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture
from repro.arch.eyeriss import eyeriss_like
from repro.arch.simba import simba_like
from repro.arch.toy import toy_glb_architecture, toy_linear_architecture

__all__ = [
    "ComputeLevel",
    "StorageLevel",
    "Architecture",
    "eyeriss_like",
    "simba_like",
    "toy_glb_architecture",
    "toy_linear_architecture",
]

"""TPU-like systolic-array preset (an extension beyond the paper).

A weight-stationary systolic array in the spirit of the TPU v1: one large
unified activation buffer feeding a big square MAC array with a dedicated
accumulator memory. Interesting for imperfect factorization because the
array is *large* (128x128 here): small or odd layer dimensions leave huge
fractions idle under perfect factorization, and the relative gains from
remainders grow with array size.

The systolic dataflow is approximated with the usual constraints: the
array unrolls the reduction dim (K or C) along one axis and the output
dim (M) along the other.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.level import ComputeLevel, StorageLevel
from repro.arch.spec import Architecture
from repro.mapspace.constraints import ConstraintSet

WORD_BITS = 16
UNIFIED_BUFFER_BYTES = 4 * 1024 * 1024
ACCUMULATOR_BYTES = 128 * 1024


def tpu_like(
    array_dim: int = 128,
    unified_buffer_bytes: int = UNIFIED_BUFFER_BYTES,
    accumulator_bytes: int = ACCUMULATOR_BYTES,
    name: Optional[str] = None,
) -> Architecture:
    """Build a TPU-like weight-stationary accelerator.

    Args:
        array_dim: systolic array side (128 gives a 16K-MAC array; the
            real TPU v1 uses 256).
        unified_buffer_bytes: on-chip activation buffer.
        accumulator_bytes: per-column accumulator storage, modelled as the
            output partition of the PE-level storage.
        name: override the auto-generated name.
    """
    dram = StorageLevel.build(name="DRAM", capacity_words=None, word_bits=WORD_BITS)
    unified = StorageLevel.build(
        name="UnifiedBuffer",
        capacity_words=unified_buffer_bytes * 8 // WORD_BITS,
        word_bits=WORD_BITS,
        keeps={"Inputs", "Outputs", "A", "C"},
        fanout=array_dim * array_dim,
        fanout_x=array_dim,
        fanout_y=array_dim,
    )
    pe = StorageLevel.build(
        name="PERegisters",
        word_bits=WORD_BITS,
        per_tensor_capacity={
            "Weights": 8,
            "B": 8,
            "Inputs": 4,
            "A": 4,
            "Outputs": max(1, accumulator_bytes * 8 // WORD_BITS // (array_dim**2)),
            "C": max(1, accumulator_bytes * 8 // WORD_BITS // (array_dim**2)),
        },
    )
    return Architecture(
        name=name or f"tpu-like-{array_dim}x{array_dim}",
        levels=(dram, unified, pe),
        compute=ComputeLevel(name="MAC", word_bits=WORD_BITS),
        mesh_x=array_dim,
        mesh_y=array_dim,
    )


def tpu_weight_stationary_constraints() -> ConstraintSet:
    """Systolic weight-stationary split: reduction dims along Y, output
    channels along X.

    Covers both convs (C reduced, M output) and GEMMs (K reduced, M
    output); feature-map dims stay temporal, streaming through the array.
    """
    return ConstraintSet.build(
        axis_dims={
            "UnifiedBuffer": (
                frozenset({"M"}),
                frozenset({"C", "K", "R", "S"}),
            )
        },
    )

"""Exception hierarchy for the repro package.

Every error carries a distinct ``exit_code`` (used by the CLI to map
failures to process exit statuses without printing tracebacks) and a
machine-readable :meth:`~ReproError.payload` so failures can be journaled
by the campaign layer and inspected by tooling instead of being reduced
to a string.

Errors that cross process boundaries (worker pools, campaign job
subprocesses) implement ``__reduce__`` so they survive pickling with
their structured fields intact.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Process exit status the CLI maps this error class to. Subclasses
    #: override with distinct nonzero codes; see ``repro.cli.main``.
    exit_code = 1

    #: HTTP response status the mapper service maps this error class to
    #: (``repro.service``). Caller-input errors override with 4xx codes;
    #: everything else is a server-side 500-family failure.
    http_status = 500

    def payload(self) -> Dict[str, Any]:
        """Machine-readable description (journaled by the campaign layer
        and returned as the service's JSON error body)."""
        return {
            "type": type(self).__name__,
            "message": str(self),
            "exit_code": self.exit_code,
            "http_status": self.http_status,
        }


class SpecError(ReproError):
    """An architecture, workload, or mapping specification is malformed."""

    exit_code = 2
    http_status = 400


class InvalidMappingError(ReproError):
    """A mapping violates a hard constraint (coverage, capacity, fanout)."""

    exit_code = 3
    http_status = 400


class MapspaceError(ReproError):
    """A mapspace cannot be constructed or sampled for the given inputs."""

    exit_code = 4
    http_status = 400


class SearchError(ReproError):
    """A search failed to produce any valid mapping."""

    exit_code = 5
    http_status = 422


class WorkerError(SearchError):
    """A parallel-search worker job failed.

    Raised by :func:`repro.search.parallel.parallel_random_search` in place
    of whatever bare exception a worker died with, so the caller learns
    *which* job — ``(index, seed)`` — failed. ``__reduce__`` keeps the
    structured fields across the pool's exception pickling.
    """

    def __init__(self, index: int, seed: int, message: str) -> None:
        super().__init__(f"worker job {index} (seed {seed}) failed: {message}")
        self.index = index
        self.seed = seed
        self.message = message

    def __reduce__(self):
        return (type(self), (self.index, self.seed, self.message))

    def payload(self) -> Dict[str, Any]:
        data = super().payload()
        data.update({"index": self.index, "seed": self.seed})
        return data


class EvaluationError(ReproError):
    """The cost model failed unexpectedly while evaluating a mapping.

    Invalid mappings are *not* errors (they come back as
    ``Evaluation(valid=False)``); this wraps genuine model failures —
    arithmetic blowups, malformed intermediate state — so one pathological
    mapping becomes a recorded per-job failure instead of an anonymous
    crash deep in a sweep.
    """

    exit_code = 6


class JobTimeoutError(ReproError):
    """A campaign job exceeded its per-job wall-clock budget."""

    exit_code = 7
    http_status = 504

    def __init__(self, job_id: str, timeout_s: float, attempt: int = 0) -> None:
        super().__init__(
            f"job {job_id!r} exceeded {timeout_s:g}s wall-clock budget "
            f"(attempt {attempt})"
        )
        self.job_id = job_id
        self.timeout_s = timeout_s
        self.attempt = attempt

    def __reduce__(self):
        return (type(self), (self.job_id, self.timeout_s, self.attempt))

    def payload(self) -> Dict[str, Any]:
        data = super().payload()
        data.update(
            {
                "job_id": self.job_id,
                "timeout_s": self.timeout_s,
                "attempt": self.attempt,
            }
        )
        return data


class CampaignError(ReproError):
    """A campaign cannot run: bad journal, bad configuration, or a
    failure of the campaign machinery itself (job failures are *recorded*,
    not raised — see ``repro.search.campaign``)."""

    exit_code = 8


class VerificationError(ReproError):
    """The differential verification harness found paths in disagreement.

    Raised by ``repro verify`` when generated mappings price differently
    across the scalar, cached, batch, or reference-simulator paths, or
    when a metamorphic invariant is violated. The divergence details and
    any dumped counterexample paths are in the printed report.
    """

    exit_code = 9


class BenchLedgerError(ReproError):
    """The benchmark ledger cannot answer the question asked of it:
    nothing recordable in the given payloads, or fewer than two records
    to compare. Distinct from a *regression*, which ``repro bench
    compare`` reports through its exit status, not an exception."""

    exit_code = 10


class ServiceError(ReproError):
    """The mapper service cannot serve: bad server state, an
    unrecoverable job-table inconsistency, or a malformed service journal.
    Per-request failures are *recorded* on the job and returned through
    its status payload — this class is for the service machinery itself."""

    exit_code = 11
    http_status = 503


class AdmissionError(ServiceError):
    """The service declined a request at admission (queue full).

    Maps to HTTP 429 with a ``Retry-After`` hint derived from the current
    queue depth and recent per-job latency — backpressure, not failure:
    the request was never accepted, so nothing needs cleanup.
    """

    http_status = 429

    def __init__(
        self, queue_depth: int, limit: int, retry_after_s: float = 1.0
    ) -> None:
        super().__init__(
            f"search queue is full ({queue_depth}/{limit} jobs); "
            f"retry in {retry_after_s:g}s"
        )
        self.queue_depth = queue_depth
        self.limit = limit
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        return (type(self), (self.queue_depth, self.limit, self.retry_after_s))

    def payload(self) -> Dict[str, Any]:
        data = super().payload()
        data.update(
            {
                "queue_depth": self.queue_depth,
                "limit": self.limit,
                "retry_after_s": self.retry_after_s,
            }
        )
        return data


class JobCrashError(CampaignError):
    """A campaign job's worker process died without reporting a result."""

    def __init__(
        self, job_id: str, exitcode: Optional[int] = None, attempt: int = 0
    ) -> None:
        super().__init__(
            f"job {job_id!r} worker crashed "
            f"(exitcode {exitcode}, attempt {attempt})"
        )
        self.job_id = job_id
        self.exitcode = exitcode
        self.attempt = attempt

    def __reduce__(self):
        return (type(self), (self.job_id, self.exitcode, self.attempt))

    def payload(self) -> Dict[str, Any]:
        data = super().payload()
        data.update(
            {
                "job_id": self.job_id,
                "worker_exitcode": self.exitcode,
                "attempt": self.attempt,
            }
        )
        return data

"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecError(ReproError):
    """An architecture, workload, or mapping specification is malformed."""


class InvalidMappingError(ReproError):
    """A mapping violates a hard constraint (coverage, capacity, fanout)."""


class MapspaceError(ReproError):
    """A mapspace cannot be constructed or sampled for the given inputs."""


class SearchError(ReproError):
    """A search failed to produce any valid mapping."""

"""Ablation studies for the reproduction's own design choices.

Three ablations back the modelling decisions DESIGN.md calls out:

* **mesh**: the misalignment Ruby-S exploits comes from the *2-D* PE mesh
  (per-axis fit), not from the PE count. Flattening the 14x12 array into a
  1-D fanout of 168 lets PFM tile AlexNet conv2 well, erasing most of the
  gap — evidence that per-axis spatial modelling is load-bearing for the
  paper's results.
* **sampling**: the structured imperfect-bound sampler (divisors + cap
  oversampled) vs a uniform sampler on an *aligned* layer. Both sample the
  same mapspace; structured sampling recovers PFM-quality mappings at
  small budgets where uniform sampling wanders.
* **search**: the paper claims Ruby is orthogonal to search strategy —
  a GAMMA-style genetic search over the Ruby-S space should find mappings
  at least as good as random sampling at a comparable evaluation count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.eyeriss import eyeriss_like
from repro.core.report import format_table
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.model.evaluator import Evaluation, Evaluator
from repro.problem.conv import ConvLayer
from repro.search.genetic import GeneticSearch
from repro.search.random_search import RandomSearch
from repro.zoo.alexnet import alexnet_conv2


@dataclass
class MeshAblationResult:
    """Best utilizations with a 2-D mesh vs a flattened 1-D fanout."""

    pfm_mesh: Evaluation
    pfm_flat: Evaluation
    ruby_s_mesh: Evaluation


def run_mesh_ablation(
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
) -> MeshAblationResult:
    """PFM on mesh vs flat vs Ruby-S on mesh, maximizing utilization."""
    from repro.experiments.common import multi_seed_search

    workload = alexnet_conv2()
    constraints = eyeriss_row_stationary()
    mesh = eyeriss_like()
    flat = eyeriss_like(flat_mesh=True)
    pfm_mesh = multi_seed_search(
        mesh, workload, "pfm", objective="delay", seeds=seeds,
        max_evaluations=max_evaluations, constraints=constraints,
    )
    # The flat array has no axes, so the per-axis split constraint does not
    # apply; PFM may combine any divisors up to 168.
    pfm_flat = multi_seed_search(
        flat, workload, "pfm", objective="delay", seeds=seeds,
        max_evaluations=max_evaluations,
    )
    ruby_s_mesh = multi_seed_search(
        mesh, workload, "ruby-s", objective="delay", seeds=seeds,
        max_evaluations=max_evaluations, constraints=constraints,
    )
    return MeshAblationResult(
        pfm_mesh=pfm_mesh, pfm_flat=pfm_flat, ruby_s_mesh=ruby_s_mesh
    )


def format_mesh_ablation(result: MeshAblationResult) -> str:
    rows = [
        ["pfm on 14x12 mesh", result.pfm_mesh.utilization],
        ["pfm on flat 168-wide fanout", result.pfm_flat.utilization],
        ["ruby-s on 14x12 mesh", result.ruby_s_mesh.utilization],
    ]
    return format_table(
        ["configuration", "peak utilization"],
        rows,
        title="Ablation: per-axis mesh modelling (AlexNet conv2)",
    )


@dataclass
class SamplerAblationResult:
    """Structured vs uniform imperfect-bound sampling on an aligned layer."""

    structured: Evaluation
    uniform: Evaluation
    pfm_reference: Evaluation


def run_sampler_ablation(
    seed: int = 0,
    max_evaluations: int = 3_000,
) -> SamplerAblationResult:
    """Ruby-S with both samplers vs the PFM reference on an aligned layer."""
    arch = eyeriss_like()
    workload = ConvLayer(
        "aligned_3x3", c=128, m=128, p=28, q=28, r=3, s=3
    ).workload()
    constraints = eyeriss_row_stationary()
    evaluator = Evaluator(arch, workload)

    def best(kind: str, sampling: str) -> Evaluation:
        space = MapSpace(
            arch, workload, MapspaceKind(kind), constraints, sampling=sampling
        )
        result = RandomSearch(
            space, evaluator, max_evaluations=max_evaluations,
            patience=None, seed=seed,
        ).run()
        return result.best

    return SamplerAblationResult(
        structured=best("ruby-s", "structured"),
        uniform=best("ruby-s", "uniform"),
        pfm_reference=best("pfm", "structured"),
    )


def format_sampler_ablation(result: SamplerAblationResult) -> str:
    rows = [
        ["ruby-s / structured sampler", result.structured.edp],
        ["ruby-s / uniform sampler", result.uniform.edp],
        ["pfm reference", result.pfm_reference.edp],
    ]
    return format_table(
        ["configuration", "best EDP"],
        rows,
        title="Ablation: imperfect-bound sampling (aligned 3x3 layer)",
    )


@dataclass
class SearchAblationResult:
    """Genetic vs random search over the same Ruby-S mapspace."""

    random: Evaluation
    genetic: Evaluation
    random_evaluations: int
    genetic_evaluations: int


def run_search_ablation(
    seed: int = 0,
    population: int = 40,
    generations: int = 30,
    workload=None,
) -> SearchAblationResult:
    """Compare search strategies (default: a misaligned pointwise layer)."""
    arch = eyeriss_like()
    if workload is None:
        workload = ConvLayer("pw_misaligned", c=2048, m=512, p=7, q=7).workload()
    constraints = eyeriss_row_stationary()
    evaluator = Evaluator(arch, workload)
    space = MapSpace(arch, workload, MapspaceKind.RUBY_S, constraints)
    genetic_result = GeneticSearch(
        space, evaluator, population_size=population,
        generations=generations, seed=seed,
    ).run()
    random_result = RandomSearch(
        space, evaluator, max_evaluations=genetic_result.num_evaluated,
        patience=None, seed=seed,
    ).run()
    return SearchAblationResult(
        random=random_result.best,
        genetic=genetic_result.best,
        random_evaluations=random_result.num_evaluated,
        genetic_evaluations=genetic_result.num_evaluated,
    )


def format_search_ablation(result: SearchAblationResult) -> str:
    rows = [
        ["random sampling", result.random_evaluations, result.random.edp],
        ["genetic (GAMMA-style)", result.genetic_evaluations, result.genetic.edp],
    ]
    return format_table(
        ["strategy", "evaluations", "best EDP"],
        rows,
        title="Ablation: search strategy over the Ruby-S mapspace",
    )

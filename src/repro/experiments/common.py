"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.arch.spec import Architecture
from repro.core.mapper import find_best_mapping
from repro.exceptions import SearchError
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.generator import MapspaceKind
from repro.model.evaluator import Evaluation
from repro.problem.workload import Workload
from repro.search.campaign import (
    CampaignJob,
    active_campaign,
    default_job_id,
    run_job_under_scope,
)


def multi_seed_search(
    arch: Architecture,
    workload: Workload,
    kind: Union[str, MapspaceKind],
    objective: str = "edp",
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
    patience: Optional[int] = 1_000,
    constraints: Optional[ConstraintSet] = None,
    job_id: Optional[str] = None,
) -> Evaluation:
    """Best evaluation over several independent random-search starts.

    The paper's searches run 3000-patience across 24 threads; a few
    independent seeds at a smaller budget is the laptop-scale equivalent
    that keeps the variance of the best-found mapping manageable.

    Inside a :func:`repro.search.campaign.campaign_scope`, the whole
    multi-seed search runs as one journaled campaign job (timeout, retry,
    resume-by-skip); the returned evaluation is identical either way.
    """
    campaign = active_campaign()
    if campaign is not None:
        job = CampaignJob(
            job_id=job_id
            or default_job_id(
                arch, workload, kind, objective, max_evaluations, patience, seeds
            ),
            arch=arch,
            workload=workload,
            kind=MapspaceKind(kind).value,
            objective=objective,
            max_evaluations=max_evaluations,
            patience=patience,
            seeds=tuple(seeds),
            constraints=constraints,
        )
        return run_job_under_scope(campaign, job)
    best: Optional[Evaluation] = None
    for seed in seeds:
        result = find_best_mapping(
            arch,
            workload,
            kind=kind,
            objective=objective,
            seed=seed,
            max_evaluations=max_evaluations,
            patience=patience,
            constraints=constraints,
        )
        if result.best is None:
            continue
        if best is None or result.best.metric(objective) < best.metric(objective):
            best = result.best
    if best is None:
        raise SearchError(
            f"no valid mapping found for {workload.name} on {arch.name} "
            f"({MapspaceKind(kind).value})"
        )
    return best


def best_metrics_by_kind(
    arch: Architecture,
    workload: Workload,
    kinds: Iterable[Union[str, MapspaceKind]],
    objective: str = "edp",
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
    patience: Optional[int] = 1_000,
    constraints: Optional[ConstraintSet] = None,
) -> Dict[str, Evaluation]:
    """Run :func:`multi_seed_search` for several mapspace kinds."""
    return {
        MapspaceKind(kind).value: multi_seed_search(
            arch,
            workload,
            kind,
            objective=objective,
            seeds=seeds,
            max_evaluations=max_evaluations,
            patience=patience,
            constraints=constraints,
        )
        for kind in kinds
    }


def spawn_seeds(base_seed: int, count: int) -> list:
    """Derive ``count`` deterministic seeds from one base seed."""
    rng = random.Random(base_seed)
    return [rng.getrandbits(32) for _ in range(count)]

"""Machine-readable export of experiment results.

The harness ``format_*`` functions print human tables; this module turns
the same result objects into plain JSON-able dicts so downstream tooling
(plotting notebooks, regression dashboards) can consume a run without
scraping text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.experiments.fig07 import Fig7Result
from repro.experiments.fig08 import Fig8Result
from repro.experiments.fig10 import NetworkComparison
from repro.experiments.fig11 import Fig11Result
from repro.experiments.fig13 import Fig13Result
from repro.experiments.table01 import Table1Result


def fig7_to_dict(result: Fig7Result, stride: int = 10) -> Dict[str, Any]:
    """Serialize a convergence study (series subsampled by ``stride``)."""
    return {
        "experiment": "fig7",
        "scenario": result.scenario,
        "runs": result.runs,
        "evaluations": result.evaluations,
        "stride": stride,
        "series": {
            kind: [
                None if value == float("inf") else value
                for value in values[::stride]
            ]
            for kind, values in result.series.items()
        },
    }


def table1_to_dict(result: Table1Result) -> Dict[str, Any]:
    return {
        "experiment": "table1",
        "sizes": result.sizes,
        "raw": result.raw,
        "valid": result.valid,
    }


def fig8_to_dict(result: Fig8Result) -> Dict[str, Any]:
    return {
        "experiment": "fig8",
        "sizes": result.sizes,
        "edp": result.edp,
        "cycles": result.cycles,
    }


def network_comparison_to_dict(
    comparison: NetworkComparison, experiment: str
) -> Dict[str, Any]:
    """Serialize a per-layer PFM-vs-Ruby-S comparison (Figs. 10/12 style)."""
    return {
        "experiment": experiment,
        "layers": [
            {
                "name": layer.name,
                "count": layer.count,
                "edp_ratio": layer.edp_ratio,
                "energy_ratio": layer.energy_ratio,
                "cycles_ratio": layer.cycles_ratio,
                "utilization_baseline": layer.baseline.utilization,
                "utilization_challenger": layer.challenger.utilization,
            }
            for layer in comparison.layers
        ],
        "network": {
            "edp_ratio": comparison.network_edp_ratio,
            "energy_ratio": comparison.network_energy_ratio,
            "cycles_ratio": comparison.network_cycles_ratio,
        },
    }


def fig11_to_dict(result: Fig11Result) -> Dict[str, Any]:
    return {
        "experiment": "fig11",
        "workloads": [
            {
                "name": comparison.name,
                "domain": result.domains[comparison.name],
                "edp_ratio": comparison.edp_ratio,
                "cycles_ratio": comparison.cycles_ratio,
            }
            for comparison in result.comparisons
        ],
        "geomean_edp_ratio": result.geomean_edp_ratio,
    }


def fig13_to_dict(result: Fig13Result) -> Dict[str, Any]:
    return {
        "experiment": "fig13",
        "suite": result.suite,
        "points": [
            {
                "shape": point.shape_label,
                "kind": point.kind.value,
                "area_mm2": point.area_mm2,
                "energy_pj": point.energy_pj,
                "cycles": point.cycles,
                "edp": point.edp,
            }
            for point in result.sweep.points
        ],
        "improvements_percent": result.improvements(),
        "ruby_s_dominates": result.ruby_s_dominates(),
    }


def save_result(data: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write an exported result dict as pretty JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target

"""Campaign job builders for the ``repro campaign`` CLI.

Turns a (suite, architecture, mapspace kinds) triple into the flat list
of :class:`~repro.search.campaign.CampaignJob` s the fault-tolerant
runner consumes. Job ids are ``{suite}:{workload}:{kind}`` — stable
across runs, so a journal written by ``campaign run`` is resumable by
``campaign resume`` from the header config alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.exceptions import CampaignError
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.problem.gemm import GemmLayer
from repro.problem.workload import Workload
from repro.search.campaign import CampaignJob
from repro.zoo.deepbench import deepbench_workloads
from repro.zoo.mobilenet import mobilenet_representative
from repro.zoo.resnet50 import resnet50_representative
from repro.zoo.toy import fig8_workload, table1_workload


def _toy_suite() -> List[Workload]:
    """A tiny handcrafted zoo: the paper's awkward vector sizes plus a
    couple of misaligned GEMMs. Small enough that a full campaign runs in
    seconds — the smoke-test and resume-parity workhorse."""
    workloads: List[Workload] = [
        fig8_workload(96),
        fig8_workload(100),
        fig8_workload(113),
        fig8_workload(127),
        table1_workload(23),
        GemmLayer("gemm_12x7x5", m=12, n=7, k=5).workload(),
        GemmLayer("gemm_9x9x17", m=9, n=9, k=17).workload(),
    ]
    return workloads


def _weighted(workloads: Sequence[Tuple[Workload, int]]) -> List[Workload]:
    return [workload for workload, _count in workloads]


def _deepbench() -> List[Workload]:
    return [workload for workload, _domain in deepbench_workloads()]


SUITE_BUILDERS = {
    "toy": _toy_suite,
    "resnet50": lambda: _weighted(resnet50_representative()),
    "deepbench": _deepbench,
    "mobilenet": lambda: _weighted(mobilenet_representative()),
}


def suite_workloads(suite: str) -> List[Workload]:
    """The workloads of a named campaign suite."""
    try:
        builder = SUITE_BUILDERS[suite]
    except KeyError:
        raise CampaignError(
            f"unknown suite {suite!r}; use one of {sorted(SUITE_BUILDERS)}"
        ) from None
    return builder()


def build_campaign_jobs(
    suite: str,
    arch: Architecture,
    kinds: Sequence[str] = ("pfm", "ruby-s"),
    objective: str = "edp",
    max_evaluations: int = 1_000,
    patience: Optional[int] = None,
    seeds: Sequence[int] = (1, 2),
    row_stationary: bool = False,
) -> List[CampaignJob]:
    """Expand a suite into one job per (workload, mapspace kind).

    ``row_stationary`` applies the Eyeriss constraint set to conv
    workloads (those with an R dim); GEMM/vector workloads always run
    unconstrained, matching the fig. 11 convention.
    """
    constraints = eyeriss_row_stationary() if row_stationary else None
    jobs: List[CampaignJob] = []
    for workload in suite_workloads(suite):
        is_conv = "R" in workload.dim_names
        for kind in kinds:
            jobs.append(
                CampaignJob(
                    job_id=f"{suite}:{workload.name}:{kind}",
                    arch=arch,
                    workload=workload,
                    kind=kind,
                    objective=objective,
                    max_evaluations=max_evaluations,
                    patience=patience,
                    seeds=tuple(seeds),
                    constraints=constraints if is_conv else None,
                )
            )
    return jobs


def campaign_header_config(
    suite: str,
    arch_name: str,
    arch_json: Optional[str],
    kinds: Sequence[str],
    objective: str,
    max_evaluations: int,
    patience: Optional[int],
    seeds: Sequence[int],
    row_stationary: bool,
    timeout_s: Optional[float],
    retries: int,
    workers: int,
) -> Dict:
    """The journal-header config ``campaign resume`` rebuilds jobs from."""
    return {
        "suite": suite,
        "arch": arch_name,
        "arch_json": arch_json,
        "kinds": list(kinds),
        "objective": objective,
        "max_evaluations": max_evaluations,
        "patience": patience,
        "seeds": list(seeds),
        "row_stationary": row_stationary,
        "timeout_s": timeout_s,
        "retries": retries,
        "workers": workers,
    }

"""Fig. 11: DeepBench on the Eyeriss-like baseline, Ruby-S vs PFM.

Vision kernels (ImageNet-style, factor-7 feature maps) map well under
perfect factorization, so Ruby-S roughly matches PFM there; speech,
speaker-ID, face, and OCR shapes misalign with the 14x12 array and give
Ruby-S its wins (paper: up to 33-45% lower EDP, ~10% suite average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.eyeriss import eyeriss_like
from repro.core.metrics import geometric_mean
from repro.core.report import format_table
from repro.experiments.common import best_metrics_by_kind
from repro.experiments.fig10 import LayerComparison
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.search.campaign import CampaignConfig, campaign_scope
from repro.zoo.deepbench import deepbench_workloads


@dataclass
class Fig11Result:
    """Per-workload comparisons, grouped by application domain."""

    comparisons: List[LayerComparison] = field(default_factory=list)
    domains: Dict[str, str] = field(default_factory=dict)

    def ratios_by_domain(self) -> Dict[str, List[float]]:
        grouped: Dict[str, List[float]] = {}
        for comparison in self.comparisons:
            domain = self.domains[comparison.name]
            grouped.setdefault(domain, []).append(comparison.edp_ratio)
        return grouped

    @property
    def geomean_edp_ratio(self) -> float:
        return geometric_mean([c.edp_ratio for c in self.comparisons])

    @property
    def geomean_cycles_ratio(self) -> float:
        return geometric_mean([c.cycles_ratio for c in self.comparisons])

    @property
    def best_improvement_percent(self) -> float:
        return 100.0 * (1.0 - min(c.edp_ratio for c in self.comparisons))


def run_fig11(
    seeds: Sequence[int] = (1, 2),
    max_evaluations: int = 2_500,
    patience: Optional[int] = 800,
    subset: Optional[Sequence[str]] = None,
    campaign: Optional[CampaignConfig] = None,
) -> Fig11Result:
    """DeepBench suite on Eyeriss-like: Ruby-S vs PFM per workload.

    GEMM workloads run unconstrained (the row-stationary split is a conv
    dataflow); conv workloads use the Eyeriss constraint set.
    """
    arch = eyeriss_like()
    conv_constraints = eyeriss_row_stationary()
    result = Fig11Result()
    with campaign_scope(campaign):
        for workload, domain in deepbench_workloads():
            if subset is not None and workload.name not in subset:
                continue
            is_conv = "R" in workload.dim_names
            best = best_metrics_by_kind(
                arch,
                workload,
                kinds=("pfm", "ruby-s"),
                seeds=seeds,
                max_evaluations=max_evaluations,
                patience=patience,
                constraints=conv_constraints if is_conv else None,
            )
            result.comparisons.append(
                LayerComparison(
                    name=workload.name,
                    count=1,
                    baseline=best["pfm"],
                    challenger=best["ruby-s"],
                )
            )
            result.domains[workload.name] = domain
    return result


def run_fig11_latency(
    seeds: Sequence[int] = (1, 2),
    max_evaluations: int = 2_500,
    patience: Optional[int] = 800,
    subset: Optional[Sequence[str]] = None,
    campaign: Optional[CampaignConfig] = None,
) -> Fig11Result:
    """The paper's latency-objective variant.

    "When targeting latency instead of EDP, Ruby-S generates mappings that
    reduce the latency 14% compared to PFMs." Same setup as
    :func:`run_fig11` but both searches minimize cycles.
    """
    arch = eyeriss_like()
    conv_constraints = eyeriss_row_stationary()
    result = Fig11Result()
    with campaign_scope(campaign):
        for workload, domain in deepbench_workloads():
            if subset is not None and workload.name not in subset:
                continue
            is_conv = "R" in workload.dim_names
            best = best_metrics_by_kind(
                arch,
                workload,
                kinds=("pfm", "ruby-s"),
                objective="delay",
                seeds=seeds,
                max_evaluations=max_evaluations,
                patience=patience,
                constraints=conv_constraints if is_conv else None,
            )
            result.comparisons.append(
                LayerComparison(
                    name=workload.name,
                    count=1,
                    baseline=best["pfm"],
                    challenger=best["ruby-s"],
                )
            )
            result.domains[workload.name] = domain
    return result


def format_fig11(result: Fig11Result, chart: bool = True) -> str:
    rows = []
    for comparison in result.comparisons:
        rows.append(
            [
                comparison.name,
                result.domains[comparison.name],
                comparison.edp_ratio,
                comparison.cycles_ratio,
                comparison.challenger.utilization,
                comparison.baseline.utilization,
            ]
        )
    rows.append(["GEOMEAN", "", result.geomean_edp_ratio, "", "", ""])
    table = format_table(
        ["workload", "domain", "EDP", "cycles", "util(ruby-s)", "util(pfm)"],
        rows,
        title="Fig. 11: DeepBench on Eyeriss-like (normalized to PFM)",
    )
    if not chart:
        return table
    from repro.core.plots import ascii_bar_chart

    bars = ascii_bar_chart(
        [c.name for c in result.comparisons],
        [c.edp_ratio for c in result.comparisons],
        reference=1.0,
        title="EDP normalized to PFM (| marks 1.0)",
    )
    return table + "\n\n" + bars

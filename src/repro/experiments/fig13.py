"""Figs. 13 & 14: architectural design-space sweep and Pareto analysis.

PE arrays from 2x7 to 16x16 are swept for ResNet-50 (Fig. 13a/14a) and a
DeepBench subselection (Fig. 13b/14b), with three mapping strategies: PFM,
PFM with padded workloads, and Ruby-S. Claims reproduced:

* Ruby-S design points form a Pareto frontier at or below the PFM points
  (Fig. 13);
* per-configuration EDP improvements average ~20-24% with maxima above
  50% (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.eyeriss import eyeriss_like
from repro.core.dse import SweepResult, sweep_pe_arrays
from repro.core.report import format_table
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.generator import MapspaceKind
from repro.problem.padding import pad_to_multiple
from repro.problem.workload import Workload
from repro.search.campaign import CampaignConfig, campaign_scope
from repro.utils.pareto import ParetoPoint, frontier_dominates, pareto_frontier
from repro.zoo.deepbench import deepbench_representative
from repro.zoo.resnet50 import resnet50_representative

SWEEP_SHAPES: Tuple[Tuple[int, int], ...] = (
    (2, 7),
    (4, 7),
    (7, 7),
    (8, 8),
    (14, 12),
    (16, 16),
)


@dataclass
class Fig13Result:
    """Sweep outcomes per suite (resnet50 / deepbench)."""

    suite: str
    sweep: SweepResult
    padded_sweep: Optional[SweepResult] = None

    def ruby_s_frontier(self) -> List[ParetoPoint]:
        return self.sweep.pareto_points(MapspaceKind.RUBY_S)

    def pfm_frontier(self) -> List[ParetoPoint]:
        return self.sweep.pareto_points(MapspaceKind.PFM)

    def ruby_s_dominates(self, tolerance: float = 0.03) -> bool:
        """Fig. 13's claim: the Ruby-S frontier is at or below PFM's.

        ``tolerance`` forgives EDP regressions smaller than the given
        fraction — Ruby-S contains PFM, so any regression is random-search
        noise (the paper's 24-thread/3000-patience searches see none).
        """
        ruby = [
            ParetoPoint(p.area_mm2, p.edp * (1.0 - tolerance))
            for p in self.sweep.of_kind(MapspaceKind.RUBY_S)
        ]
        pfm = [
            ParetoPoint(p.area_mm2, p.edp)
            for p in self.sweep.of_kind(MapspaceKind.PFM)
        ]
        return frontier_dominates(ruby, pfm)

    def improvements(self) -> Dict[str, float]:
        """Fig. 14: per-shape percent EDP improvement of Ruby-S over PFM."""
        return self.sweep.improvement_by_shape(
            MapspaceKind.RUBY_S, MapspaceKind.PFM
        )


def _padded_workloads(
    workloads: Sequence[Tuple[Workload, int]], mesh_x: int, mesh_y: int
) -> List[Tuple[Workload, int]]:
    """Pad the spatial-friendly dims up to the array axes (the Fig. 13
    'PFM with padding' strategy)."""
    padded = []
    for workload, count in workloads:
        multiples = {}
        if "Q" in workload.dim_names and workload.size("Q") > 1:
            multiples["Q"] = mesh_x
        if "M" in workload.dim_names and workload.size("M") > 1:
            multiples["M"] = mesh_y
        padded.append((pad_to_multiple(workload, multiples).workload, count))
    return padded


def run_fig13(
    suite: str = "resnet50",
    shapes: Sequence[Tuple[int, int]] = SWEEP_SHAPES,
    seeds_base: int = 0,
    max_evaluations: int = 2_000,
    patience: Optional[int] = 600,
    include_padding: bool = False,
    campaign: Optional[CampaignConfig] = None,
) -> Fig13Result:
    """Run the sweep for one suite ("resnet50" or "deepbench").

    With a ``campaign`` config, each (design, workload, kind) search of
    the sweep runs as a journaled campaign job (see
    ``repro.core.dse.evaluate_network``).
    """
    if suite == "resnet50":
        workloads = resnet50_representative()
    elif suite == "deepbench":
        workloads = deepbench_representative()
    else:
        raise ValueError(f"unknown suite {suite!r}")
    with campaign_scope(campaign):
        sweep = sweep_pe_arrays(
            workloads,
            kinds=(MapspaceKind.PFM, MapspaceKind.RUBY_S),
            array_shapes=shapes,
            arch_builder=eyeriss_like,
            constraints=eyeriss_row_stationary(),
            max_evaluations=max_evaluations,
            patience=patience,
            seed=seeds_base,
            restarts=2,
        )
        padded_sweep = None
        if include_padding:
            padded_points = []
            for mesh_x, mesh_y in shapes:
                padded = _padded_workloads(workloads, mesh_x, mesh_y)
                partial = sweep_pe_arrays(
                    padded,
                    kinds=(MapspaceKind.PFM,),
                    array_shapes=[(mesh_x, mesh_y)],
                    arch_builder=eyeriss_like,
                    constraints=eyeriss_row_stationary(),
                    max_evaluations=max_evaluations,
                    patience=patience,
                    seed=seeds_base + 1,
                )
                padded_points.extend(partial.points)
            padded_sweep = SweepResult(points=padded_points)
    return Fig13Result(suite=suite, sweep=sweep, padded_sweep=padded_sweep)


def format_fig13(result: Fig13Result) -> str:
    """Render area-vs-EDP per shape and the Fig. 14 improvement column."""
    improvements = result.improvements()
    rows = []
    for point in result.sweep.of_kind(MapspaceKind.PFM):
        ruby = next(
            p
            for p in result.sweep.of_kind(MapspaceKind.RUBY_S)
            if p.shape_label == point.shape_label
        )
        rows.append(
            [
                point.shape_label,
                point.area_mm2,
                point.edp,
                ruby.edp,
                improvements.get(point.shape_label, 0.0),
            ]
        )
    average = sum(improvements.values()) / len(improvements)
    best = max(improvements.values())
    rows.append(["AVG/MAX", "", "", "", f"{average:.1f}% / {best:.1f}%"])
    table = format_table(
        ["array", "area mm^2", "EDP pfm", "EDP ruby-s", "improvement %"],
        rows,
        title=(
            f"Figs. 13/14 ({result.suite}): array sweep, "
            f"Ruby-S dominates PFM frontier = {result.ruby_s_dominates()}"
        ),
    )
    from repro.core.plots import ascii_scatter

    scatter = ascii_scatter(
        {
            kind.value: [
                (p.area_mm2, p.edp) for p in result.sweep.of_kind(kind)
            ]
            for kind in (MapspaceKind.PFM, MapspaceKind.RUBY_S)
        },
        title=f"area (mm^2) vs EDP, {result.suite}",
    )
    return table + "\n\n" + scatter

"""Fig. 7: best-EDP-so-far convergence of the four mapspaces on toys.

Four scenarios, each a (workload, PE count) pair on the two-level linear
toy architecture with 1 KiB per-PE scratchpads:

* (a) 100x100x100 matmul, 5 PEs — aligned: PFM and Ruby-S converge
  together; Ruby/Ruby-T pay for their expansion.
* (b) same matmul, 16 PEs — misaligned: imperfect factorization wins.
* (c) 3x3x64 conv on 28x28x64, 8 PEs, only C/M spatial — aligned.
* (d) same conv, 15 PEs — misaligned: Ruby-S wins with manageable search.

The paper evaluates the first 10,000 mappings averaged over 100 seeded
runs; budgets here are configurable for laptop-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.toy import toy_linear_architecture
from repro.core.report import format_table
from repro.mapspace.constraints import ConstraintSet
from repro.mapspace.factory import make_mapspace
from repro.mapspace.generator import MapspaceKind
from repro.model.evaluator import Evaluator
from repro.problem.workload import Workload
from repro.search.random_search import RandomSearch
from repro.zoo.toy import fig7_conv_workload, fig7_matmul_workload

ALL_KINDS = ("pfm", "ruby", "ruby-s", "ruby-t")


@dataclass(frozen=True)
class Fig7Scenario:
    """One subplot of Fig. 7."""

    label: str
    workload: Workload
    num_pes: int
    constraints: Optional[ConstraintSet] = None


def scenario_a() -> Fig7Scenario:
    return Fig7Scenario("fig7a_matmul_5pe", fig7_matmul_workload(), 5)


def scenario_b() -> Fig7Scenario:
    return Fig7Scenario("fig7b_matmul_16pe", fig7_matmul_workload(), 16)


def _conv_constraints() -> ConstraintSet:
    # "We impose an additional constraint that only C and M be mapped onto
    # the PEs."
    return ConstraintSet.build(spatial_dims={"DRAM": {"C", "M"}})


def scenario_c() -> Fig7Scenario:
    return Fig7Scenario(
        "fig7c_conv_8pe", fig7_conv_workload(), 8, _conv_constraints()
    )


def scenario_d() -> Fig7Scenario:
    return Fig7Scenario(
        "fig7d_conv_15pe", fig7_conv_workload(), 15, _conv_constraints()
    )


SCENARIOS = {
    "a": scenario_a,
    "b": scenario_b,
    "c": scenario_c,
    "d": scenario_d,
}


@dataclass
class Fig7Result:
    """Averaged best-EDP-so-far series per mapspace kind.

    ``series[kind][i]`` is the mean (over runs) of the best EDP seen after
    ``i + 1`` evaluated mappings; positions before any valid mapping carry
    ``inf`` and are excluded from the mean.
    """

    scenario: str
    evaluations: int
    runs: int
    series: Dict[str, List[float]] = field(default_factory=dict)

    def final_edp(self, kind: str) -> float:
        return self.series[kind][-1]

    def edp_after(self, kind: str, evaluations: int) -> float:
        index = min(evaluations, self.evaluations) - 1
        return self.series[kind][index]


def run_fig7_scenario(
    scenario: Fig7Scenario,
    kinds: Sequence[str] = ALL_KINDS,
    evaluations: int = 4_000,
    runs: int = 3,
    base_seed: int = 0,
) -> Fig7Result:
    """Run the convergence study for one scenario."""
    arch = toy_linear_architecture(scenario.num_pes)
    evaluator = Evaluator(arch, scenario.workload)
    result = Fig7Result(
        scenario=scenario.label, evaluations=evaluations, runs=runs
    )
    for kind in kinds:
        accumulated = [0.0] * evaluations
        counts = [0] * evaluations
        for run in range(runs):
            space = make_mapspace(
                arch, scenario.workload, kind, scenario.constraints
            )
            search = RandomSearch(
                space,
                evaluator,
                max_evaluations=evaluations,
                patience=None,
                seed=base_seed * 1_000 + run,
            )
            series = search.run().best_so_far_series(evaluations)
            for i, value in enumerate(series):
                if value != float("inf"):
                    accumulated[i] += value
                    counts[i] += 1
        result.series[MapspaceKind(kind).value] = [
            accumulated[i] / counts[i] if counts[i] else float("inf")
            for i in range(evaluations)
        ]
    return result


def format_fig7(
    result: Fig7Result,
    checkpoints: Sequence[int] = (100, 1000, 4000),
    chart: bool = True,
) -> str:
    """Render the convergence series at a few checkpoints, paper-style.

    With ``chart=True`` an ASCII line chart of the full best-so-far curves
    (log-EDP vs evaluated mappings) follows the table — the actual Fig. 7
    visual.
    """
    headers = ["mapspace"] + [f"best EDP @{c}" for c in checkpoints]
    rows = []
    for kind, series in result.series.items():
        row = [kind]
        for checkpoint in checkpoints:
            index = min(checkpoint, result.evaluations) - 1
            row.append(series[index])
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title=(
            f"Fig. 7 ({result.scenario}): mean best-EDP-so-far over "
            f"{result.runs} runs"
        ),
    )
    if not chart:
        return table
    from repro.core.plots import ascii_line_chart

    return table + "\n\n" + ascii_line_chart(
        result.series,
        title=f"best EDP vs evaluated mappings ({result.scenario})",
    )

"""Table I: mapspace sizes for a rank-1 tensor vs dimension size.

Setup from the paper: two levels of memory hierarchy with a spatial fanout
of 9 between them (our toy linear array with 9 PEs). For each tensor size,
count the unique mappings of each mapspace; PFM stays tiny, Ruby-S grows
moderately (spatial bounds capped by the fanout), Ruby-T and Ruby explode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.toy import toy_linear_architecture
from repro.core.report import format_table
from repro.mapspace.counting import count_mapspace_sizes
from repro.mapspace.generator import MapspaceKind
from repro.zoo.toy import table1_workload

DEFAULT_SIZES = (3, 16, 100, 500, 1027, 4096)


@dataclass
class Table1Result:
    """Raw (and optionally validity-filtered) mapspace sizes per tensor size."""

    sizes: List[int] = field(default_factory=list)
    raw: Dict[str, List[int]] = field(default_factory=dict)
    valid: Optional[Dict[str, List[int]]] = None

    def row(self, size: int) -> Dict[str, int]:
        index = self.sizes.index(size)
        return {kind: counts[index] for kind, counts in self.raw.items()}


def run_table1(
    dimension_sizes: Sequence[int] = DEFAULT_SIZES,
    num_pes: int = 9,
    count_valid: bool = False,
    enumeration_cap: int = 5_000_000,
) -> Table1Result:
    """Count all four mapspaces for each dimension size."""
    arch = toy_linear_architecture(num_pes)
    result = Table1Result(sizes=list(dimension_sizes))
    for kind in MapspaceKind:
        result.raw[kind.value] = []
    if count_valid:
        result.valid = {kind.value: [] for kind in MapspaceKind}
    for size in dimension_sizes:
        counts = count_mapspace_sizes(
            arch,
            table1_workload(size),
            count_valid=count_valid,
            enumeration_cap=enumeration_cap,
        )
        for kind, sizes in counts.items():
            result.raw[kind.value].append(sizes.raw)
            if count_valid and result.valid is not None:
                result.valid[kind.value].append(sizes.valid)
    return result


def format_table1(result: Table1Result) -> str:
    """Render the table the way the paper lays it out (rows = sizes)."""
    kinds = list(result.raw)
    headers = ["D"] + kinds
    rows = []
    for i, size in enumerate(result.sizes):
        rows.append([size] + [result.raw[kind][i] for kind in kinds])
    return format_table(
        headers,
        rows,
        title=(
            "Table I: unique mappings of a rank-1 tensor over 2 memory "
            "levels with spatial fanout 9"
        ),
    )

"""Fig. 8: Ruby-S vs PFM vs PFM+padding across dimension sizes.

A single tensor of ``D`` elements is allocated across 16 linear PEs. The
padding strategy rounds ``D`` up to the next multiple of 16 so perfect
factorization can parallelize fully — at the cost of ineffectual zero
work (no sparsity hardware is modelled, matching the paper). Ruby-S packs
the array without padding. The paper's callouts: at the prime D = 127,
PFM cannot parallelize at all while padding and Ruby-S both take 8 cycles;
at D = 113 padding wastes ~12% of its computations and loses ~20% EDP to
Ruby-S.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.toy import toy_linear_architecture
from repro.core.report import format_table
from repro.experiments.common import multi_seed_search
from repro.model.evaluator import Evaluation
from repro.problem.padding import pad_dimension
from repro.search.campaign import CampaignConfig, campaign_scope
from repro.zoo.toy import fig8_workload

DEFAULT_SIZES = (96, 100, 108, 113, 116, 120, 127, 128)
STRATEGIES = ("ruby-s", "pfm", "pfm+pad")


@dataclass
class Fig8Result:
    """Per-size EDP of each strategy (absolute and Ruby-S-normalized)."""

    sizes: List[int] = field(default_factory=list)
    edp: Dict[str, List[float]] = field(default_factory=dict)
    cycles: Dict[str, List[int]] = field(default_factory=dict)

    def normalized(self, strategy: str, size: int) -> float:
        index = self.sizes.index(size)
        return self.edp[strategy][index] / self.edp["ruby-s"][index]


def _evaluate_strategy(
    arch, size: int, strategy: str, seeds, max_evaluations: int
) -> Evaluation:
    workload = fig8_workload(size)
    if strategy == "pfm+pad":
        workload = pad_dimension(workload, "D", 16).workload
        kind = "pfm"
    else:
        kind = strategy
    return multi_seed_search(
        arch,
        workload,
        kind,
        seeds=seeds,
        max_evaluations=max_evaluations,
        patience=max_evaluations // 4,
    )


def run_fig8(
    sizes: Sequence[int] = DEFAULT_SIZES,
    num_pes: int = 16,
    seeds: Sequence[int] = (1, 2),
    max_evaluations: int = 1_500,
    campaign: Optional[CampaignConfig] = None,
) -> Fig8Result:
    """Sweep dimension sizes for the three strategies.

    With a ``campaign`` config, every (size, strategy) search runs as a
    journaled, timeout/retry-protected campaign job and an interrupted
    sweep resumes from the journal.
    """
    arch = toy_linear_architecture(num_pes)
    result = Fig8Result(sizes=list(sizes))
    for strategy in STRATEGIES:
        result.edp[strategy] = []
        result.cycles[strategy] = []
    with campaign_scope(campaign):
        for size in sizes:
            for strategy in STRATEGIES:
                best = _evaluate_strategy(
                    arch, size, strategy, seeds, max_evaluations
                )
                result.edp[strategy].append(best.edp)
                result.cycles[strategy].append(best.cycles)
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render EDP normalized to Ruby-S (the paper's y-axis)."""
    headers = ["D"] + [f"{s} (norm)" for s in STRATEGIES] + ["cycles ruby-s/pfm/pad"]
    rows = []
    for i, size in enumerate(result.sizes):
        ruby = result.edp["ruby-s"][i]
        rows.append(
            [size]
            + [result.edp[s][i] / ruby for s in STRATEGIES]
            + [
                f"{result.cycles['ruby-s'][i]}/"
                f"{result.cycles['pfm'][i]}/"
                f"{result.cycles['pfm+pad'][i]}"
            ]
        )
    return format_table(
        headers,
        rows,
        title="Fig. 8: EDP normalized to Ruby-S, 16-PE linear array",
    )

"""Fig. 12: ResNet-50 on a Simba-like architecture, Ruby-S vs PFM.

The Simba-like design restricts PE-level parallelism to the channel dims
(C and M) and nests a second spatial level (vector-MAC lanes) inside each
PE. The paper evaluates a 15-PE configuration (four 4-wide vector MACs per
PE, ~10% net EDP improvement) and a 9-PE configuration (three 3-wide,
~45% improvement) — odd PE counts that channel dims rarely divide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.simba import simba_like
from repro.experiments.fig10 import NetworkComparison, compare_network, format_fig10
from repro.search.campaign import CampaignConfig
from repro.zoo.resnet50 import resnet50_representative, resnet50_workloads


@dataclass
class Fig12Result:
    """Network comparisons for the two Simba configurations."""

    config15: NetworkComparison
    config9: Optional[NetworkComparison] = None


def run_fig12(
    representative: bool = True,
    include_9pe: bool = True,
    seeds: Sequence[int] = (1, 2),
    max_evaluations: int = 2_500,
    patience: Optional[int] = 800,
    campaign: Optional[CampaignConfig] = None,
) -> Fig12Result:
    """ResNet-50 on Simba-like, for the paper's two configurations."""
    workloads = (
        resnet50_representative() if representative else resnet50_workloads()
    )
    config15 = compare_network(
        simba_like(num_pes=15, vector_macs_per_pe=4, vector_width=4),
        workloads,
        seeds=seeds,
        max_evaluations=max_evaluations,
        patience=patience,
        campaign=campaign,
    )
    config9 = None
    if include_9pe:
        config9 = compare_network(
            simba_like(num_pes=9, vector_macs_per_pe=3, vector_width=3),
            workloads,
            seeds=seeds,
            max_evaluations=max_evaluations,
            patience=patience,
            campaign=campaign,
        )
    return Fig12Result(config15=config15, config9=config9)


def format_fig12(result: Fig12Result) -> str:
    parts = [
        format_fig10(
            result.config15,
            title="Fig. 12: ResNet-50 on Simba-like, 15 PEs x (4x4-wide) "
            "(normalized to PFM)",
        )
    ]
    if result.config9 is not None:
        parts.append(
            format_fig10(
                result.config9,
                title="Fig. 12 (companion): 9 PEs x (3x3-wide)",
            )
        )
    return "\n\n".join(parts)

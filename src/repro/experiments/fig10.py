"""Fig. 10: ResNet-50 on the Eyeriss-like baseline, Ruby-S vs PFM.

Per layer (grouped into the paper's layer-type buckets) and for the whole
network: EDP, energy, and cycles of the best Ruby-S mapping normalized to
the best PFM mapping. The paper reports a 14% network EDP improvement from
a 17% cycle reduction at a 2% energy increase, dominated by pointwise and
dense layers whose dims misalign with the 14x12 array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.eyeriss import eyeriss_like
from repro.arch.spec import Architecture
from repro.core.metrics import geometric_mean
from repro.core.report import format_table
from repro.experiments.common import best_metrics_by_kind
from repro.mapspace.constraints import ConstraintSet, eyeriss_row_stationary
from repro.model.evaluator import Evaluation
from repro.problem.workload import Workload
from repro.search.campaign import CampaignConfig, campaign_scope
from repro.zoo.resnet50 import resnet50_representative, resnet50_workloads


@dataclass(frozen=True)
class LayerComparison:
    """Best PFM and Ruby-S evaluations of one layer (+ its network count)."""

    name: str
    count: int
    baseline: Evaluation
    challenger: Evaluation

    @property
    def edp_ratio(self) -> float:
        """Challenger EDP / baseline EDP (< 1 means the challenger wins)."""
        return self.challenger.edp / self.baseline.edp

    @property
    def energy_ratio(self) -> float:
        return self.challenger.energy_pj / self.baseline.energy_pj

    @property
    def cycles_ratio(self) -> float:
        return self.challenger.cycles / self.baseline.cycles


@dataclass
class NetworkComparison:
    """Per-layer comparisons plus count-weighted network totals."""

    layers: List[LayerComparison] = field(default_factory=list)

    def network_totals(self) -> Dict[str, float]:
        """Count-weighted total energy/cycles/EDP for both mapspaces."""
        totals = {
            "baseline_energy": 0.0,
            "baseline_cycles": 0.0,
            "challenger_energy": 0.0,
            "challenger_cycles": 0.0,
        }
        for layer in self.layers:
            totals["baseline_energy"] += layer.baseline.energy_pj * layer.count
            totals["baseline_cycles"] += layer.baseline.cycles * layer.count
            totals["challenger_energy"] += layer.challenger.energy_pj * layer.count
            totals["challenger_cycles"] += layer.challenger.cycles * layer.count
        totals["baseline_edp"] = (
            totals["baseline_energy"] * totals["baseline_cycles"]
        )
        totals["challenger_edp"] = (
            totals["challenger_energy"] * totals["challenger_cycles"]
        )
        return totals

    @property
    def network_edp_ratio(self) -> float:
        totals = self.network_totals()
        return totals["challenger_edp"] / totals["baseline_edp"]

    @property
    def network_cycles_ratio(self) -> float:
        totals = self.network_totals()
        return totals["challenger_cycles"] / totals["baseline_cycles"]

    @property
    def network_energy_ratio(self) -> float:
        totals = self.network_totals()
        return totals["challenger_energy"] / totals["baseline_energy"]

    @property
    def geomean_layer_edp_ratio(self) -> float:
        return geometric_mean([layer.edp_ratio for layer in self.layers])

    @property
    def best_layer_edp_ratio(self) -> float:
        return min(layer.edp_ratio for layer in self.layers)


def compare_network(
    arch: Architecture,
    workloads: Sequence[Tuple[Workload, int]],
    baseline_kind: str = "pfm",
    challenger_kind: str = "ruby-s",
    constraints: Optional[ConstraintSet] = None,
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
    patience: Optional[int] = 1_000,
    campaign: Optional[CampaignConfig] = None,
) -> NetworkComparison:
    """Search both mapspaces for every layer of a network.

    With a ``campaign`` config, every per-layer search is a journaled
    campaign job: a killed run resumes from the journal, hung searches
    are timed out and retried, and repeated failures are quarantined.
    """
    comparison = NetworkComparison()
    with campaign_scope(campaign):
        for workload, count in workloads:
            best = best_metrics_by_kind(
                arch,
                workload,
                kinds=(baseline_kind, challenger_kind),
                seeds=seeds,
                max_evaluations=max_evaluations,
                patience=patience,
                constraints=constraints,
            )
            comparison.layers.append(
                LayerComparison(
                    name=workload.name,
                    count=count,
                    baseline=best[baseline_kind],
                    challenger=best[challenger_kind],
                )
            )
    return comparison


def run_fig10(
    representative: bool = True,
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
    patience: Optional[int] = 1_000,
    mesh_x: int = 14,
    mesh_y: int = 12,
    campaign: Optional[CampaignConfig] = None,
) -> NetworkComparison:
    """ResNet-50 on Eyeriss-like: Ruby-S vs PFM per layer."""
    arch = eyeriss_like(mesh_x, mesh_y)
    workloads = (
        resnet50_representative() if representative else resnet50_workloads()
    )
    return compare_network(
        arch,
        workloads,
        constraints=eyeriss_row_stationary(),
        seeds=seeds,
        max_evaluations=max_evaluations,
        patience=patience,
        campaign=campaign,
    )


def format_fig10(
    comparison: NetworkComparison,
    title: str = "Fig. 10: ResNet-50 on Eyeriss-like (normalized to PFM)",
) -> str:
    """Render per-layer ratios plus the network summary row."""
    rows = []
    for layer in comparison.layers:
        rows.append(
            [
                layer.name,
                layer.count,
                layer.edp_ratio,
                layer.energy_ratio,
                layer.cycles_ratio,
                layer.challenger.utilization,
                layer.baseline.utilization,
            ]
        )
    rows.append(
        [
            "NETWORK",
            "",
            comparison.network_edp_ratio,
            comparison.network_energy_ratio,
            comparison.network_cycles_ratio,
            "",
            "",
        ]
    )
    return format_table(
        ["layer", "x", "EDP", "energy", "cycles", "util(ruby-s)", "util(pfm)"],
        rows,
        title=title,
    )

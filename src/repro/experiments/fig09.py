"""Fig. 9: AlexNet layer 2 — handcrafted strip mining vs PFM vs Ruby-S.

The paper's edge case where hand mapping beats perfect factorization: the
27-wide OFM dims of AlexNet conv2 misalign with the 14x12 array. Eyeriss's
strip-mined mapping reaches 85% utilization (our folded reconstruction:
80.4%), PFM tops out around 71% (ours: 64%), and Ruby-S matches the
handcrafted utilization while cutting EDP ~16% and energy ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.arch.eyeriss import eyeriss_like
from repro.core.report import format_table
from repro.experiments.common import multi_seed_search
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model.evaluator import Evaluation, Evaluator
from repro.search.campaign import CampaignConfig, campaign_scope
from repro.zoo.alexnet import alexnet_conv2
from repro.zoo.handcrafted import alexnet_conv2_strip_mined


@dataclass
class Fig9Result:
    """Evaluations of the three mapping sources.

    ``peak_utilization`` holds delay-optimized search results (the
    utilization claim); ``best_edp`` holds EDP-optimized ones (the
    efficiency claim). The handcrafted mapping is a single fixed point.
    """

    handcrafted: Evaluation
    best_edp: Dict[str, Evaluation]
    peak_utilization: Dict[str, Evaluation]

    def edp_improvement_over_handcrafted(self) -> float:
        """Percent EDP reduction of Ruby-S vs the handcrafted mapping."""
        ruby = self.best_edp["ruby-s"].edp
        return 100.0 * (self.handcrafted.edp - ruby) / self.handcrafted.edp

    def energy_improvement_over_handcrafted(self) -> float:
        ruby = self.best_edp["ruby-s"].energy_pj
        return (
            100.0
            * (self.handcrafted.energy_pj - ruby)
            / self.handcrafted.energy_pj
        )


def run_fig9(
    seeds: Sequence[int] = (1, 2, 3),
    max_evaluations: int = 3_000,
    patience: Optional[int] = 1_000,
    campaign: Optional[CampaignConfig] = None,
) -> Fig9Result:
    """Evaluate all three mapping sources on the Eyeriss baseline."""
    arch = eyeriss_like()
    workload = alexnet_conv2()
    constraints = eyeriss_row_stationary()
    handcrafted = Evaluator(arch, workload).evaluate(
        alexnet_conv2_strip_mined(arch)
    )
    best_edp = {}
    peak_utilization = {}
    with campaign_scope(campaign):
        for kind in ("pfm", "ruby-s"):
            best_edp[kind] = multi_seed_search(
                arch, workload, kind, objective="edp", seeds=seeds,
                max_evaluations=max_evaluations, patience=patience,
                constraints=constraints,
            )
            peak_utilization[kind] = multi_seed_search(
                arch, workload, kind, objective="delay", seeds=seeds,
                max_evaluations=max_evaluations, patience=patience,
                constraints=constraints,
            )
    return Fig9Result(
        handcrafted=handcrafted,
        best_edp=best_edp,
        peak_utilization=peak_utilization,
    )


def format_fig9(result: Fig9Result) -> str:
    """Render the three-way comparison (utilization, EDP, energy)."""
    rows = [
        [
            "handcrafted (strip-mined)",
            result.handcrafted.utilization,
            result.handcrafted.edp,
            result.handcrafted.energy_pj,
        ]
    ]
    for kind in ("pfm", "ruby-s"):
        rows.append(
            [
                f"{kind} (EDP-opt)",
                result.peak_utilization[kind].utilization,
                result.best_edp[kind].edp,
                result.best_edp[kind].energy_pj,
            ]
        )
    rows.append(
        [
            "ruby-s vs handcrafted",
            "",
            f"-{result.edp_improvement_over_handcrafted():.1f}%",
            f"-{result.energy_improvement_over_handcrafted():.1f}%",
        ]
    )
    return format_table(
        ["mapping", "peak util", "EDP (pJ*cyc)", "energy (pJ)"],
        rows,
        title="Fig. 9: AlexNet layer 2 on Eyeriss-like 14x12",
    )

"""Experiment harnesses reproducing every table and figure of the paper.

One module per artifact; each exposes a ``run_*`` function returning a
structured result plus a ``format_*`` report renderer printing the same
rows/series the paper reports. The ``benchmarks/`` tree wraps these with
pytest-benchmark and asserts the paper's qualitative claims.

| Module    | Paper artifact | Claim reproduced                               |
|-----------|----------------|------------------------------------------------|
| fig07     | Fig. 7(a-d)    | convergence of best EDP per mapspace            |
| table01   | Table I        | mapspace sizes vs tensor dimension              |
| fig08     | Fig. 8         | Ruby-S vs PFM vs padding across dimension sizes |
| fig09     | Fig. 9         | AlexNet L2: handcrafted vs PFM vs Ruby-S        |
| fig10     | Fig. 10        | ResNet-50 on Eyeriss-like, per layer type       |
| fig11     | Fig. 11        | DeepBench on Eyeriss-like                       |
| fig12     | Fig. 12        | ResNet-50 on Simba-like                         |
| fig13     | Figs. 13/14    | array sweep: Pareto frontier + improvements     |
"""

from repro.experiments.common import multi_seed_search, best_metrics_by_kind
from repro.experiments.fig07 import Fig7Result, format_fig7, run_fig7_scenario
from repro.experiments.table01 import (
    Table1Result,
    format_table1,
    run_table1,
)
from repro.experiments.fig08 import Fig8Result, format_fig8, run_fig8
from repro.experiments.fig09 import Fig9Result, format_fig9, run_fig9
from repro.experiments.fig10 import LayerComparison, format_fig10, run_fig10
from repro.experiments.fig11 import format_fig11, run_fig11
from repro.experiments.fig12 import format_fig12, run_fig12
from repro.experiments.fig13 import Fig13Result, format_fig13, run_fig13

__all__ = [
    "multi_seed_search",
    "best_metrics_by_kind",
    "Fig7Result",
    "format_fig7",
    "run_fig7_scenario",
    "Table1Result",
    "format_table1",
    "run_table1",
    "Fig8Result",
    "format_fig8",
    "run_fig8",
    "Fig9Result",
    "format_fig9",
    "run_fig9",
    "LayerComparison",
    "format_fig10",
    "run_fig10",
    "format_fig11",
    "run_fig11",
    "format_fig12",
    "run_fig12",
    "Fig13Result",
    "format_fig13",
    "run_fig13",
]

"""Mapping analysis: explain *why* a mapping costs what it costs.

Turns an evaluation into a human-readable report: per-level buffer
occupancy, per-tensor reuse factors (how many compute-side accesses each
fill amortizes), energy breakdown shares, and the data-movement profile.
The quickstart's "why is Ruby-S better here?" question is answered by
diffing two of these reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.spec import Architecture
from repro.core.report import format_table
from repro.mapping.nest import Mapping
from repro.mapping.validity import _tile_extents_at_level
from repro.model.evaluator import Evaluation, Evaluator
from repro.problem.workload import Workload


@dataclass(frozen=True)
class LevelOccupancy:
    """Buffer usage of one (level, tensor) pair."""

    level_name: str
    tensor_name: str
    tile_words: int
    capacity_words: Optional[int]  # None = unbounded or shared

    @property
    def occupancy(self) -> Optional[float]:
        """Tile words over capacity, or None for unbounded levels."""
        if self.capacity_words is None or self.capacity_words == 0:
            return None
        return self.tile_words / self.capacity_words


@dataclass(frozen=True)
class ReuseFactor:
    """Amortization of fills at one (level, tensor) pair.

    ``reads_served / fills`` — how many downstream reads each delivered
    element serves before being replaced. High reuse at cheap levels is
    what a good mapping buys.
    """

    level_name: str
    tensor_name: str
    reads_served: int
    fills: int

    @property
    def factor(self) -> Optional[float]:
        """Reads served per fill, or None when nothing was filled."""
        if self.fills == 0:
            return None
        return self.reads_served / self.fills


@dataclass
class MappingReport:
    """Structured explanation of one evaluation."""

    evaluation: Evaluation
    occupancies: List[LevelOccupancy] = field(default_factory=list)
    reuse: List[ReuseFactor] = field(default_factory=list)
    energy_shares: Dict[str, float] = field(default_factory=dict)


def explain_mapping(
    arch: Architecture,
    workload: Workload,
    mapping: Mapping,
    evaluator: Optional[Evaluator] = None,
) -> MappingReport:
    """Evaluate ``mapping`` and build its :class:`MappingReport`.

    Raises ``ValueError`` for invalid mappings — explain what exists.
    """
    evaluator = evaluator or Evaluator(arch, workload)
    evaluation = evaluator.evaluate(mapping)
    if not evaluation.valid:
        raise ValueError(
            "cannot explain an invalid mapping: " + "; ".join(evaluation.violations)
        )
    report = MappingReport(evaluation=evaluation)

    for level_index, level in enumerate(arch.levels):
        extents = _tile_extents_at_level(mapping, level_index)
        for tensor in workload.tensors:
            if not level.keeps_tensor(tensor.name):
                continue
            if mapping.bypasses(level.name, tensor.name):
                continue
            tile_words = tensor.tile_footprint(extents)
            capacity = level.tensor_capacity(tensor.name)
            if capacity is None:
                capacity = level.capacity_words
            report.occupancies.append(
                LevelOccupancy(
                    level_name=level.name,
                    tensor_name=tensor.name,
                    tile_words=tile_words,
                    capacity_words=capacity,
                )
            )

    counts = evaluation.access_counts
    for level_index, level in enumerate(arch.levels):
        for tensor in workload.tensors:
            key = (level_index, tensor.name)
            reads = counts.reads.get(key, 0)
            fills = counts.writes.get(key, 0)
            if reads == 0 and fills == 0:
                continue
            report.reuse.append(
                ReuseFactor(
                    level_name=level.name,
                    tensor_name=tensor.name,
                    reads_served=reads,
                    fills=fills,
                )
            )

    total = evaluation.energy_pj
    if total > 0:
        report.energy_shares = {
            component: energy / total
            for component, energy in evaluation.energy_breakdown_pj.items()
        }
    return report


def format_report(report: MappingReport) -> str:
    """Render a :class:`MappingReport` as text."""
    evaluation = report.evaluation
    header = (
        f"EDP {evaluation.edp:.4e}  energy {evaluation.energy_pj:.4e} pJ  "
        f"cycles {evaluation.cycles:,}  utilization {evaluation.utilization:.1%}"
    )
    occupancy_rows = [
        [
            o.level_name,
            o.tensor_name,
            o.tile_words,
            o.capacity_words if o.capacity_words is not None else "-",
            f"{o.occupancy:.1%}" if o.occupancy is not None else "-",
        ]
        for o in report.occupancies
    ]
    reuse_rows = [
        [
            r.level_name,
            r.tensor_name,
            r.reads_served,
            r.fills,
            f"{r.factor:.2f}" if r.factor is not None else "-",
        ]
        for r in report.reuse
    ]
    energy_rows = [
        [component, f"{share:.1%}"]
        for component, share in sorted(
            report.energy_shares.items(), key=lambda kv: -kv[1]
        )
    ]
    return "\n\n".join(
        [
            header,
            format_table(
                ["level", "tensor", "tile words", "capacity", "occupancy"],
                occupancy_rows,
                title="Buffer occupancy",
            ),
            format_table(
                ["level", "tensor", "reads", "writes", "reads/write"],
                reuse_rows,
                title="Access profile",
            ),
            format_table(
                ["component", "energy share"], energy_rows, title="Energy"
            ),
        ]
    )

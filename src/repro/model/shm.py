"""Zero-copy shared-memory transport for columnar NumPy arrays.

The batch engine's structure-of-arrays encoding (`repro.model.batch`) is
what makes cross-process work-sharing affordable: a packed candidate
batch or a precomputed factor table is a handful of contiguous int64
blocks, and `multiprocessing.shared_memory` can hand workers *views* of
those blocks instead of pickling row dicts through the pool's result
pipe. :class:`ShmArrayBundle` packs a named dict of arrays into one
shared segment and ships a tiny picklable :class:`BundleHandle`
(segment name + per-array dtype/shape/offset specs); workers attach and
get read-only ndarray views backed by the same physical pages.

Lifecycle discipline (mirrors the probe-tested pool semantics):

* the **driver** creates the segment (`share`) and is the only process
  that ever calls :meth:`ShmArrayBundle.unlink` — in a ``finally``, so a
  crashed or SIGKILLed worker can never leak ``/dev/shm`` entries;
* **workers** attach (`attach`) and simply drop their references; pool
  children inherit the driver's resource tracker, so no per-worker
  unregister dance is needed (attach re-registers into the same set and
  the driver's single unlink clears it).

When ``multiprocessing.shared_memory`` or NumPy is unavailable — or
segment creation fails at runtime (e.g. ``/dev/shm`` full) — the bundle
degrades to a **pickle fallback**: the handle carries the arrays
themselves and ``attach`` just hands them back. Same API, same data,
``transport`` records which path actually ran (the same degrade-never-
fail discipline as the fork→spawn→sequential pool ladder).
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

try:  # pragma: no cover - exercised via the pickle-fallback tests
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

try:  # pragma: no cover - stdlib, but gate like numpy for odd builds
    from multiprocessing import shared_memory as _shared_memory

    HAS_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]
    HAS_SHM = False

#: Prefix of every segment this module creates. Tests (and operators)
#: can assert cleanliness by globbing ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro_shm_"

#: Per-array alignment inside the segment. 64 bytes keeps every view
#: cache-line aligned regardless of the preceding array's size.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        size = int(np.dtype(self.dtype).itemsize)
        for extent in self.shape:
            size *= int(extent)
        return size


@dataclass
class BundleHandle:
    """Picklable descriptor of a shared bundle.

    ``transport`` is ``"shm"`` (``segment`` + ``specs`` describe the
    views) or ``"pickle"`` (``payload`` carries the arrays verbatim).
    """

    transport: str
    segment: Optional[str] = None
    specs: Tuple[ArraySpec, ...] = ()
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArrayBundle:
    """A named dict of arrays living in one shared-memory segment.

    Use :meth:`share` on the driver side and :meth:`attach` on the
    worker side; ``arrays`` maps names to ndarray views either way.
    """

    def __init__(
        self,
        handle: BundleHandle,
        arrays: Dict[str, Any],
        shm: Any = None,
        owner: bool = False,
    ) -> None:
        self.handle = handle
        self.arrays = arrays
        self._shm = shm
        self._owner = owner

    @property
    def transport(self) -> str:
        return self.handle.transport

    @classmethod
    def share(
        cls, arrays: Mapping[str, Any], allow_shm: bool = True
    ) -> "ShmArrayBundle":
        """Copy ``arrays`` into a fresh shared segment (driver side).

        One copy in; attaches are zero-copy. Falls back to carrying the
        arrays inside the (pickled) handle when shared memory is
        unavailable or the segment cannot be created.
        """
        if not (allow_shm and HAS_SHM and HAS_NUMPY):
            return cls._share_pickled(arrays)
        specs = []
        offset = 0
        sources = {}
        for name, array in arrays.items():
            src = np.ascontiguousarray(array)
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=src.dtype.str,
                    shape=tuple(int(x) for x in src.shape),
                    offset=offset,
                )
            )
            sources[name] = src
            offset += src.nbytes
        segment = SEGMENT_PREFIX + uuid.uuid4().hex[:16]
        try:
            shm = _shared_memory.SharedMemory(
                create=True, size=max(offset, 1), name=segment
            )
        except OSError:
            return cls._share_pickled(arrays)
        views: Dict[str, Any] = {}
        for spec in specs:
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view[...] = sources[spec.name]
            views[spec.name] = view
        handle = BundleHandle(
            transport="shm", segment=segment, specs=tuple(specs)
        )
        return cls(handle, views, shm=shm, owner=True)

    @classmethod
    def _share_pickled(cls, arrays: Mapping[str, Any]) -> "ShmArrayBundle":
        payload = dict(arrays)
        handle = BundleHandle(transport="pickle", payload=payload)
        return cls(handle, payload)

    @classmethod
    def attach(cls, handle: BundleHandle) -> "ShmArrayBundle":
        """Open read-only views over an existing bundle (worker side)."""
        if handle.transport == "pickle":
            return cls(handle, dict(handle.payload or {}))
        if not (HAS_SHM and HAS_NUMPY):  # pragma: no cover - driver gates
            raise RuntimeError(
                "cannot attach a shared-memory bundle without "
                "multiprocessing.shared_memory and numpy"
            )
        shm = _shared_memory.SharedMemory(name=handle.segment)
        views: Dict[str, Any] = {}
        for spec in handle.specs:
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view.flags.writeable = False
            views[spec.name] = view
        return cls(handle, views, shm=shm, owner=False)

    def close(self) -> None:
        """Drop this process's views and mapping (best effort)."""
        self.arrays = {}
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - outstanding views
                pass
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment name (driver side, exactly once).

        Existing mappings stay valid until every holder closes; the name
        just disappears from ``/dev/shm`` so nothing can leak.
        """
        if self._owner and self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._owner = False

    def release(self) -> None:
        """Driver-side cleanup: unlink the name, then drop the mapping."""
        self.unlink()
        self.close()

    def __enter__(self) -> "ShmArrayBundle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

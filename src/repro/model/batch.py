"""Vectorized batch evaluation: the columnar (structure-of-arrays) cost model.

The scalar :class:`~repro.model.evaluator.Evaluator` prices one mapping at a
time through pure-Python recursions; search loops are bounded by interpreter
overhead, not by the math. This module packs N candidate mappings into three
integer tensors and replays the exact same recursions as NumPy kernels over
whole batches:

* ``bounds[n, c, d]`` / ``rems[n, c, d]`` — the Eq. (5) bound and remainder
  of candidate ``n`` at *column* ``c`` for problem dimension ``d``. Columns
  are the fixed loop-block skeleton of the architecture (one temporal block
  per storage level plus one spatial block per mesh axis with fanout), the
  same skeleton :func:`~repro.mapspace.slots.build_slots` derives. An absent
  loop is the identity cell ``(bound=1, remainder=1)``, which every cost
  recursion passes through unchanged — so kernels run over the full fixed
  grid with no per-candidate filtering.
* ``pos[n, c, d]`` — the loop's position in the global nest (``-1`` when
  absent). Only *order* matters: the one order-sensitive quantity in the
  cost model is the innermost-relevant-temporal cutoff, and every predicate
  against it compares positions of loops that are both present, so any
  order-isomorphic numbering works (enumeration uses a virtual grid
  numbering; packed ``Mapping`` objects use their real positions).

Exactness: integers stay integers (int64, with a float-side overflow guard
that routes rows whose intermediates could exceed 2**53 back to the scalar
evaluator), and floats are composed in the same order as the scalar model
(per-level energy accumulation in architecture order, compute energy last),
so energy_pj, cycles, EDP — and utilization — match the scalar evaluator
bit for bit. The parity suite in ``tests/test_batch_eval.py`` asserts this
across presets, workload kinds, and imperfect mappings.

Lower-bound pruning: traffic through every boundary is at least one full
sweep of delivered tiles, and the per-rank delivery sum is multilinear in
the per-dimension tile counts, so its minimum over the feasible box
``t_j in [1, size_j]`` is attained at a box vertex. Minimizing over the
(at most four) vertices per rank yields a compulsory-traffic energy bound
that is a true constant per (architecture, workload); multiplied by the
(cheaply vectorized) exact cycle count it lower-bounds EDP, letting the
engine discard candidates that cannot beat the incumbent *before* the
expensive traffic stage. A relative margin keeps float rounding from ever
pruning a true improvement (see :data:`PRUNE_MARGIN`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import scope as _obs
from repro.problem.workload import Workload

try:  # pragma: no cover - exercised via the scalar-fallback tests
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: Default number of candidates packed per batch. Large enough to amortize
#: kernel launch overhead, small enough that a pruned batch wastes little.
DEFAULT_BATCH_SIZE = 512

#: Relative safety margin on the lower-bound prune test. A candidate is
#: pruned only when ``lower_bound * (1 - PRUNE_MARGIN) >= incumbent``; the
#: bound is computed with a handful of float roundings (relative error
#: ~1e-15), so the margin guarantees a pruned candidate's true metric is
#: strictly worse than the incumbent — no improvement is ever discarded,
#: and exact ties are left to the (tie-rejecting) search loops.
PRUNE_MARGIN = 1e-9

#: Intermediate integer quantities are kept below 2**53 so that int64
#: arithmetic cannot wrap and int->float conversions stay exact. Rows that
#: could exceed it fall back to the scalar evaluator (exact bigints).
_EXACT_LIMIT = float(2**53)


@dataclass(frozen=True)
class Column:
    """One loop block of the fixed columnar grid.

    Mirrors :class:`~repro.mapspace.slots.Slot` structure (which depends
    only on the architecture — constraints change caps and allowed dims,
    never which blocks exist), plus the hardware fanout limit used by the
    vectorized validity check.
    """

    level_index: int
    level_name: str
    spatial: bool
    axis: int = 0
    fanout_limit: int = 0  # hardware per-axis limit (spatial columns only)


def derive_columns(arch: Architecture) -> List[Column]:
    """Build the columnar grid skeleton for ``arch`` (outer to inner)."""
    columns: List[Column] = []
    for index, level in enumerate(arch.levels):
        columns.append(Column(index, level.name, spatial=False))
        if level.fanout > 1:
            axis_fanouts = [(0, level.fanout_x), (1, level.fanout_y)]
            if level.fanout_x is None:
                axis_fanouts = [(0, level.fanout)]
            for axis, axis_fanout in axis_fanouts:
                if axis_fanout is None or axis_fanout < 2:
                    continue
                columns.append(
                    Column(
                        index,
                        level.name,
                        spatial=True,
                        axis=axis,
                        fanout_limit=axis_fanout,
                    )
                )
    return columns


@dataclass(frozen=True)
class _TensorMeta:
    """Precomputed per-tensor projection structure (dim names -> indices)."""

    name: str
    is_output: bool
    bits_per_element: int
    ranks: Tuple[Tuple[Tuple[int, int], ...], ...]  # ((dim_idx, coef), ...)
    relevant_idx: Tuple[int, ...]  # workload dim order
    irrelevant_idx: Tuple[int, ...]  # workload dim order
    keepers: Tuple[int, ...]
    boundaries: Tuple[Tuple[int, Optional[int]], ...]  # (parent, child)
    partition_words: Tuple[Optional[int], ...]  # per storage level


class BatchLayout:
    """The fixed columnar structure of one (architecture, workload) pair.

    Holds everything that depends only on the specs — the column grid, the
    virtual position numbering used by enumeration, per-tensor projection
    metadata, and the per-level capacity/fanout limits. Energy coefficients
    live in :class:`BatchEvaluator` (they come from the evaluator's table).

    Args:
        arch: target architecture.
        workload: the tensor operation.
        permutation_priority: optional ``{level_name: fixed_dim_order}``
            matching the mapspace's constraint permutations, so the virtual
            grid numbering is order-isomorphic to the real nest positions
            that :meth:`~repro.mapspace.generator.MapSpace.assemble`
            produces with ``rng=None``. Irrelevant for packed ``Mapping``
            objects, which carry their real positions.
    """

    def __init__(
        self,
        arch: Architecture,
        workload: Workload,
        permutation_priority: Optional[Dict[str, Optional[Tuple[str, ...]]]] = None,
    ) -> None:
        if not HAS_NUMPY:
            raise RuntimeError("BatchLayout requires NumPy")
        self.arch = arch
        self.workload = workload
        self.columns = derive_columns(arch)
        self.num_columns = len(self.columns)
        self.level_names: Tuple[str, ...] = tuple(l.name for l in arch.levels)
        self.num_levels = len(arch.levels)
        self.dims: Tuple[str, ...] = workload.dim_names
        self.dim_index: Dict[str, int] = {d: i for i, d in enumerate(self.dims)}
        self.num_dims = len(self.dims)
        self.sizes = np.array(
            [workload.size(d) for d in self.dims], dtype=np.int64
        )
        self.col_level: Tuple[int, ...] = tuple(
            c.level_index for c in self.columns
        )
        self.col_spatial: Tuple[bool, ...] = tuple(c.spatial for c in self.columns)
        self.col_axis: Tuple[int, ...] = tuple(c.axis for c in self.columns)
        self._col_lookup: Dict[Tuple[int, bool, int], int] = {}
        for offset, column in enumerate(self.columns):
            key = (column.level_index, column.spatial, column.axis)
            self._col_lookup[key] = offset
        self._build_grid(permutation_priority or {})
        self._build_tensor_meta()
        self._build_limits()

    # -- construction ---------------------------------------------------

    def _build_grid(self, priorities: Dict[str, Optional[Tuple[str, ...]]]) -> None:
        """Number the grid cells in virtual nest order (see module doc)."""
        order: List[Tuple[int, int]] = []
        self.grid_cells_by_level: List[List[Tuple[int, int]]] = []
        for level_index, level_name in enumerate(self.level_names):
            cells: List[Tuple[int, int]] = []
            fixed = priorities.get(level_name)
            if fixed:
                priority = {dim: i for i, dim in enumerate(fixed)}
                dim_order = sorted(
                    range(self.num_dims),
                    key=lambda d: (
                        priority.get(self.dims[d], len(priority)),
                        d,
                    ),
                )
            else:
                dim_order = list(range(self.num_dims))
            for offset, column in enumerate(self.columns):
                if column.level_index != level_index or column.spatial:
                    continue
                cells.extend((offset, d) for d in dim_order)
            for offset, column in enumerate(self.columns):
                if column.level_index != level_index or not column.spatial:
                    continue
                cells.extend((offset, d) for d in range(self.num_dims))
            self.grid_cells_by_level.append(cells)
            order.extend(cells)
        self.grid_pos = np.full(
            (self.num_columns, self.num_dims), -1, dtype=np.int64
        )
        for position, (offset, d) in enumerate(order):
            self.grid_pos[offset, d] = position

    def _build_tensor_meta(self) -> None:
        self.tensors: List[_TensorMeta] = []
        self.paths_supported = True
        self.paths_reason = ""
        for tensor in self.workload.tensors:
            relevant = tensor.relevant_dims
            rel_idx = tuple(
                i for i, d in enumerate(self.dims) if d in relevant
            )
            irr_idx = tuple(
                i for i, d in enumerate(self.dims) if d not in relevant
            )
            ranks = tuple(
                tuple((self.dim_index[term.dim], term.coefficient) for term in rank)
                for rank in tensor.ranks
            )
            keepers = tuple(
                i
                for i, level in enumerate(self.arch.levels)
                if level.keeps_tensor(tensor.name)
            )
            if not keepers or keepers[0] != 0:
                # The scalar model raises SpecError on these architectures;
                # keep its semantics by refusing the batch path entirely.
                self.paths_supported = False
                self.paths_reason = (
                    f"tensor {tensor.name} has no outermost keeper level"
                )
            boundaries: List[Tuple[int, Optional[int]]] = [
                (parent, child) for parent, child in zip(keepers, keepers[1:])
            ]
            if keepers:
                boundaries.append((keepers[-1], None))
            partition = tuple(
                level.tensor_capacity(tensor.name) for level in self.arch.levels
            )
            self.tensors.append(
                _TensorMeta(
                    name=tensor.name,
                    is_output=tensor.is_output,
                    bits_per_element=tensor.bits_per_element,
                    ranks=ranks,
                    relevant_idx=rel_idx,
                    irrelevant_idx=irr_idx,
                    keepers=keepers,
                    boundaries=tuple(boundaries),
                    partition_words=partition,
                )
            )

    def _build_limits(self) -> None:
        # Spatial-dataflow restrictions: per spatial column, the dims that
        # may NOT take a nontrivial bound there (None = unrestricted).
        self.spatial_disallowed: List[Optional[Any]] = []
        for column in self.columns:
            if not column.spatial:
                self.spatial_disallowed.append(None)
                continue
            allowed = self.arch.levels[column.level_index].spatial_dims
            if allowed is None:
                self.spatial_disallowed.append(None)
            else:
                mask = np.array(
                    [d not in allowed for d in self.dims], dtype=bool
                )
                self.spatial_disallowed.append(mask if mask.any() else None)
        # Capacity checks: per bounded level, which tensors are kept there.
        self.capacity_levels: List[Tuple[int, Any]] = []
        for level_index, level in enumerate(self.arch.levels):
            if level.total_capacity_words is None:
                continue
            kept = tuple(
                t
                for t, tensor in enumerate(self.workload.tensors)
                if level.keeps_tensor(tensor.name)
            )
            suffix_cols = tuple(
                c
                for c in range(self.num_columns)
                if self.col_level[c] >= level_index
            )
            self.capacity_levels.append(
                (
                    level_index,
                    {
                        "kept": kept,
                        "cols": suffix_cols,
                        "word_bits": level.word_bits,
                        "shared_capacity": (
                            level.capacity_words
                            if not level.is_partitioned
                            else None
                        ),
                    },
                )
            )

    # -- packing and materialization ------------------------------------

    def column_for(
        self, level_index: int, spatial: bool, axis: int
    ) -> Optional[int]:
        """Grid column holding a loop at ``(level, block, axis)``, if any."""
        return self._col_lookup.get((level_index, spatial, axis if spatial else 0))

    def materialize(self, bounds_row: Any, rems_row: Any) -> Mapping:
        """Rebuild the :class:`Mapping` a packed enumeration row encodes.

        Inverse of the ``iter_batches`` packing: loops are emitted in
        virtual grid order, which equals the order
        :meth:`~repro.mapspace.generator.MapSpace.assemble` uses with
        ``rng=None`` (temporal dims sorted by the fixed permutation then
        dim order, spatial blocks in column/dim order).
        """
        nests: List[LevelNest] = []
        for level_index, level_name in enumerate(self.level_names):
            temporal: List[Loop] = []
            spatial: List[Loop] = []
            for offset, d in self.grid_cells_by_level[level_index]:
                bound = int(bounds_row[offset, d])
                remainder = int(rems_row[offset, d])
                if bound == 1 and remainder == 1:
                    continue
                column = self.columns[offset]
                loop = Loop(
                    self.dims[d],
                    bound,
                    remainder,
                    spatial=column.spatial,
                    axis=column.axis,
                )
                (spatial if column.spatial else temporal).append(loop)
            nests.append(
                LevelNest(
                    level_name=level_name,
                    temporal=tuple(temporal),
                    spatial=tuple(spatial),
                )
            )
        return Mapping(levels=tuple(nests))


@dataclass
class MappingBatch:
    """N candidate mappings in structure-of-arrays form.

    ``bounds``/``rems``/``pos`` are int64 arrays of shape
    ``[n, num_columns, num_dims]``; absent loops hold the identity cell
    ``(1, 1, -1)``. ``fallback`` flags rows the columnar grid cannot
    represent (bypass sets, misaligned levels, duplicate cells); those are
    priced by the scalar evaluator instead.
    """

    layout: BatchLayout
    bounds: Any
    rems: Any
    pos: Any
    fallback: Any
    mappings: Optional[List[Mapping]] = None

    @property
    def size(self) -> int:
        return int(self.bounds.shape[0])

    def mapping_at(self, index: int) -> Mapping:
        """The ``Mapping`` object of row ``index`` (rebuilt if not stored)."""
        if self.mappings is not None:
            return self.mappings[index]
        return self.layout.materialize(self.bounds[index], self.rems[index])


def pack_mappings(layout: BatchLayout, mappings: Sequence[Mapping]) -> MappingBatch:
    """Pack ``Mapping`` objects into columnar form (real nest positions).

    Rows the grid cannot represent are flagged ``fallback`` rather than
    rejected, so callers get uniform batch semantics with scalar-exact
    results for the exotic cases.
    """
    n = len(mappings)
    shape = (n, layout.num_columns, layout.num_dims)
    bounds = np.ones(shape, dtype=np.int64)
    rems = np.ones(shape, dtype=np.int64)
    pos = np.full(shape, -1, dtype=np.int64)
    fallback = np.zeros(n, dtype=bool)
    for i, mapping in enumerate(mappings):
        if mapping.bypass:
            fallback[i] = True
            continue
        if tuple(nest.level_name for nest in mapping.levels) != layout.level_names:
            fallback[i] = True
            continue
        for placed in mapping.placed_loops():
            loop = placed.loop
            d = layout.dim_index.get(loop.dim)
            if d is None:
                # Unknown dim: the scalar validity check reports it even
                # for trivial loops, so the row must go scalar.
                fallback[i] = True
                break
            if loop.bound == 1:
                continue  # identity cell; nontrivial_loops drops it too
            c = layout.column_for(placed.level_index, loop.spatial, loop.axis)
            if c is None or pos[i, c, d] != -1:
                fallback[i] = True
                break
            bounds[i, c, d] = loop.bound
            rems[i, c, d] = loop.remainder
            pos[i, c, d] = placed.position
    return MappingBatch(
        layout=layout,
        bounds=bounds,
        rems=rems,
        pos=pos,
        fallback=fallback,
        mappings=list(mappings),
    )


@dataclass(frozen=True)
class CandidateOutcome:
    """Per-candidate result of :meth:`BatchEvaluator.evaluate_mappings`.

    ``metric`` is ``inf`` for invalid or pruned candidates. ``evaluation``
    is populated only when a full scalar :class:`Evaluation` was produced
    anyway (cache hits and fallback rows); improvements should be
    re-priced through :meth:`Evaluator.evaluate_fresh` by the caller.
    """

    valid: bool
    pruned: bool
    metric: float
    evaluation: Optional[Evaluation] = None


@dataclass
class BatchOutcome:
    """Vectorized results for one :class:`MappingBatch`.

    Arrays are indexed by batch row. ``metric`` holds ``inf`` at invalid
    and pruned rows; ``energy_pj``/``cycles``/``utilization`` are only
    meaningful where ``valid & ~pruned``. ``evaluations`` maps fallback
    row indices to their full scalar evaluations.
    """

    valid: Any
    pruned: Any
    fallback: Any
    metric: Any
    energy_pj: Any
    cycles: Any
    utilization: Any
    evaluations: Dict[int, Evaluation] = field(default_factory=dict)


class BatchEvaluator:
    """Price whole batches of mappings with vectorized kernels.

    Wraps a scalar :class:`Evaluator` (whose energy table, cache, and
    fallback path it reuses) and guarantees bit-exact agreement with it on
    ``energy_pj``, ``cycles``, EDP, and ``utilization`` for every row it
    prices vectorized; rows it cannot represent go through the scalar
    evaluator unchanged. Check :attr:`supported` before use — searches
    keep their scalar loops when the engine is unavailable (no NumPy,
    NoC/static energy or bandwidth stalls enabled, or degenerate tensor
    paths).
    """

    def __init__(
        self, evaluator: Evaluator, layout: Optional[BatchLayout] = None
    ) -> None:
        self.evaluator = evaluator
        self.supported, self.unsupported_reason = self._support_check(evaluator)
        self.layout: Optional[BatchLayout] = None
        self.batches_evaluated = 0
        self.candidates_evaluated = 0
        self.candidates_pruned = 0
        self.candidates_fallback = 0
        if not self.supported:
            return
        self.layout = layout or BatchLayout(evaluator.arch, evaluator.workload)
        if not self.layout.paths_supported:
            self.supported = False
            self.unsupported_reason = self.layout.paths_reason
            return
        self._precompute()

    @staticmethod
    def _support_check(evaluator: Evaluator) -> Tuple[bool, str]:
        if not HAS_NUMPY:
            return False, "numpy unavailable"
        if evaluator.include_noc or evaluator.include_static:
            return False, "NoC/static energy components enabled"
        if any(
            level.bandwidth_words_per_cycle is not None
            for level in evaluator.arch.levels
        ):
            return False, "bandwidth stall model enabled"
        if evaluator.workload.total_operations >= _EXACT_LIMIT:
            return False, "workload exceeds exact-float operation count"
        return True, ""

    def _precompute(self) -> None:
        layout = self.layout
        assert layout is not None
        table = self.evaluator.energy_table
        self.read_pj: List[float] = []
        self.write_pj: List[float] = []
        for level in layout.arch.levels:
            self.read_pj.append(table.read_pj(level.name))
            self.write_pj.append(table.write_pj(level.name))
        # Matches the scalar energy model: compute energy is one exact
        # int * float product added after the per-level accumulation.
        self.compute_energy = layout.workload.total_operations * table.mac_pj
        self.units_opc = (
            layout.arch.total_compute_units * layout.arch.compute.ops_per_cycle
        )
        self.ops_f = float(layout.workload.total_operations)
        sizes = {d: int(s) for d, s in zip(layout.dims, layout.sizes)}
        self._build_lower_bound(sizes)
        self._build_overflow_guard()

    def _build_lower_bound(self, sizes: Dict[str, int]) -> None:
        """Compulsory-energy constant: see the module docstring derivation."""
        layout = self.layout
        assert layout is not None
        lower = 0.0
        for meta in layout.tensors:
            base_lb = 1
            for rank in meta.ranks:
                base_lb *= self._rank_vertex_min(rank, layout)
            for parent, child in meta.boundaries:
                if not meta.is_output:
                    lower += self.read_pj[parent] * base_lb
                    if child is not None:
                        lower += self.write_pj[child] * base_lb
                else:
                    lower += self.write_pj[parent] * base_lb
                    if child is not None:
                        lower += self.read_pj[child] * base_lb
        self.lb_energy = lower + self.compute_energy

    @staticmethod
    def _rank_vertex_min(
        rank: Tuple[Tuple[int, int], ...], layout: "BatchLayout"
    ) -> int:
        """Minimum delivery sum of one rank over the tile-count box.

        The sum is affine in each (independently relaxed) tile count, so
        the box minimum sits at a vertex ``t_j in {1, size_j}``.
        """
        sizes = [int(layout.sizes[d]) for d, _ in rank]
        best: Optional[int] = None
        for vertex in itertools.product(*[(1, s) for s in sizes]):
            all_tiles = 1
            for t in vertex:
                all_tiles *= t
            total = all_tiles
            for (d, coef), t, size in zip(rank, vertex, sizes):
                total += coef * (size - t) * (all_tiles // t)
            if best is None or total < best:
                best = total
        return best if best is not None else 1

    def _build_overflow_guard(self) -> None:
        """Per-tensor bound factors: traffic <= C_t * prod_d BD_d**e_td.

        ``BD_d`` is the product of all of dim ``d``'s bounds; relevant dims
        contribute once per rank they appear in (the delivery-sum bound),
        irrelevant dims once (the projection-count bound); ``C_t`` collects
        the ``1 + sum(coef)`` slack per rank. Rows where any factor — or
        the iteration-space product times the compute capacity — reaches
        2**53 fall back to the exact scalar path.
        """
        layout = self.layout
        assert layout is not None
        self._guard_tensors: List[Tuple[float, Any]] = []
        for meta in layout.tensors:
            c_const = 1.0
            exponents = np.ones(layout.num_dims, dtype=np.float64)
            for d in meta.relevant_idx:
                exponents[d] = 0.0
            for rank in meta.ranks:
                c_const *= 1.0 + sum(coef for _, coef in rank)
                for d, _ in rank:
                    exponents[d] += 1.0
            self._guard_tensors.append((c_const, exponents))

    # -- public API ------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        """Observability counters for ``SearchResult.stats['batch']``."""
        evaluated = self.candidates_evaluated
        return {
            "batches": self.batches_evaluated,
            "candidates": evaluated,
            "pruned": self.candidates_pruned,
            "prune_rate": (self.candidates_pruned / evaluated) if evaluated else 0.0,
            "fallback": self.candidates_fallback,
        }

    def evaluate_batch(
        self,
        batch: MappingBatch,
        objective: str = "edp",
        incumbent: float = float("inf"),
        prune: bool = False,
    ) -> BatchOutcome:
        """Price one packed batch; optionally prune against ``incumbent``."""
        if not self.supported:
            raise RuntimeError(
                f"batch evaluation unsupported: {self.unsupported_reason}"
            )
        layout = self.layout
        assert layout is not None
        n = batch.size
        bounds, rems, pos = batch.bounds, batch.rems, batch.pos
        fallback = batch.fallback | self._overflow_rows(bounds)
        valid = self._validity(bounds, rems)
        cycles = self._cycles(bounds, rems)
        cycles_f = cycles.astype(np.float64)
        pruned = np.zeros(n, dtype=bool)
        if prune and incumbent != float("inf"):
            if objective == "edp":
                bound_metric = self.lb_energy * cycles_f
            elif objective == "energy":
                bound_metric = np.full(n, self.lb_energy)
            else:
                bound_metric = cycles_f
            pruned = (
                valid
                & ~fallback
                & (bound_metric * (1.0 - PRUNE_MARGIN) >= incumbent)
            )
        metric = np.full(n, float("inf"))
        energy = np.full(n, float("nan"))
        utilization = np.full(n, float("nan"))
        live = np.flatnonzero(valid & ~fallback & ~pruned)
        if live.size:
            reads, writes = self._traffic(bounds, rems, pos, live)
            live_energy = self._energy(reads, writes)
            energy[live] = live_energy
            capacity = (cycles[live] * self.units_opc).astype(np.float64)
            utilization[live] = self.ops_f / capacity
            if objective == "edp":
                metric[live] = live_energy * cycles_f[live]
            elif objective == "energy":
                metric[live] = live_energy
            else:
                metric[live] = cycles_f[live]
        evaluations: Dict[int, Evaluation] = {}
        for i in np.flatnonzero(fallback):
            i = int(i)
            evaluation = self.evaluator.evaluate_fresh(batch.mapping_at(i))
            evaluations[i] = evaluation
            valid[i] = evaluation.valid
            pruned[i] = False
            if evaluation.valid:
                metric[i] = evaluation.metric(objective)
                energy[i] = evaluation.energy_pj
                cycles[i] = evaluation.cycles
                utilization[i] = evaluation.utilization
            else:
                metric[i] = float("inf")
        self.batches_evaluated += 1
        self.candidates_evaluated += n
        self.candidates_pruned += int(pruned.sum())
        self.candidates_fallback += int(fallback.sum())
        _obs.inc("batch.batches")
        _obs.inc("batch.candidates", n)
        _obs.inc("batch.pruned", int(pruned.sum()))
        _obs.inc("batch.fallback", int(fallback.sum()))
        return BatchOutcome(
            valid=valid,
            pruned=pruned,
            fallback=fallback,
            metric=metric,
            energy_pj=energy,
            cycles=cycles,
            utilization=utilization,
            evaluations=evaluations,
        )

    def evaluate_mappings(
        self,
        mappings: Sequence[Mapping],
        objective: str = "edp",
        incumbent: float = float("inf"),
        prune: bool = False,
    ) -> List[CandidateOutcome]:
        """Price a list of ``Mapping`` objects through the batch engine.

        With a cache attached to the wrapped evaluator, every candidate
        costs exactly one cache lookup (matching the scalar path's
        lookup count); hits bypass the kernels entirely. Misses are
        packed and priced vectorized — only improvements and fallback
        rows are re-priced scalar (and stored), so a batched search fills
        the cache more sparsely than a scalar one.
        """
        if not self.supported:
            raise RuntimeError(
                f"batch evaluation unsupported: {self.unsupported_reason}"
            )
        cache = self.evaluator.cache
        outcomes: List[Optional[CandidateOutcome]] = [None] * len(mappings)
        misses: List[Mapping] = []
        miss_rows: List[int] = []
        for i, mapping in enumerate(mappings):
            if cache is not None:
                hit = cache.get(mapping.signature())
                if hit is not None:
                    if hit.mapping is not mapping:
                        hit = replace(hit, mapping=mapping)
                    outcomes[i] = CandidateOutcome(
                        valid=hit.valid,
                        pruned=False,
                        metric=hit.metric(objective) if hit.valid else float("inf"),
                        evaluation=hit,
                    )
                    continue
            misses.append(mapping)
            miss_rows.append(i)
        if misses:
            assert self.layout is not None
            batch = pack_mappings(self.layout, misses)
            outcome = self.evaluate_batch(
                batch, objective=objective, incumbent=incumbent, prune=prune
            )
            for row, i in enumerate(miss_rows):
                outcomes[i] = CandidateOutcome(
                    valid=bool(outcome.valid[row]),
                    pruned=bool(outcome.pruned[row]),
                    metric=float(outcome.metric[row]),
                    evaluation=outcome.evaluations.get(row),
                )
        return [outcome for outcome in outcomes if outcome is not None]

    # -- vectorized kernels ----------------------------------------------

    def _overflow_rows(self, bounds: Any) -> Any:
        layout = self.layout
        assert layout is not None
        bd = np.ones((bounds.shape[0], layout.num_dims), dtype=np.float64)
        bounds_f = bounds.astype(np.float64)
        for c in range(layout.num_columns):
            bd *= bounds_f[:, c, :]
        over = bd.prod(axis=1) * self.units_opc >= _EXACT_LIMIT
        for c_const, exponents in self._guard_tensors:
            over |= c_const * (bd**exponents).prod(axis=1) >= _EXACT_LIMIT
        return over

    def _validity(self, bounds: Any, rems: Any) -> Any:
        """Replay ``check_mapping`` as boolean masks (structure is packed)."""
        layout = self.layout
        assert layout is not None
        n = bounds.shape[0]
        # Coverage: the full per-dim Eq. (5) chain must equal the dim size.
        cov = np.zeros((n, layout.num_dims), dtype=np.int64)
        for c in range(layout.num_columns):
            cov = cov * bounds[:, c, :] + rems[:, c, :] - 1
        valid = ((cov + 1) == layout.sizes[None, :]).all(axis=1)
        # Fanout and dataflow restrictions per spatial column.
        for c, column in enumerate(layout.columns):
            if not column.spatial:
                continue
            allocation = bounds[:, c, :].prod(axis=1)
            valid &= allocation <= column.fanout_limit
            disallowed = layout.spatial_disallowed[c]
            if disallowed is not None:
                valid &= ~(bounds[:, c, disallowed] > 1).any(axis=1)
        # Capacity: the largest tile held at each bounded level must fit.
        for level_index, info in layout.capacity_levels:
            ext = np.ones((n, layout.num_dims), dtype=np.int64)
            for c in info["cols"]:
                ext *= bounds[:, c, :]
            shared = np.zeros(n, dtype=np.int64)
            for t in info["kept"]:
                meta = layout.tensors[t]
                footprint = np.ones(n, dtype=np.int64)
                for rank in meta.ranks:
                    span = np.zeros(n, dtype=np.int64)
                    for d, coef in rank:
                        span += coef * (ext[:, d] - 1)
                    footprint *= span + 1
                words = np.maximum(
                    footprint * meta.bits_per_element // info["word_bits"], 1
                )
                partition = meta.partition_words[level_index]
                if partition is not None:
                    valid &= words <= partition
                else:
                    shared += words
            if info["shared_capacity"] is not None:
                valid &= shared <= info["shared_capacity"]
        return valid

    def _cycles(self, bounds: Any, rems: Any) -> Any:
        """Per-dim shadowed temporal-step recursion, product over dims."""
        layout = self.layout
        assert layout is not None
        n = bounds.shape[0]
        steps = np.zeros((n, layout.num_dims), dtype=np.int64)
        shadowed = np.zeros((n, layout.num_dims), dtype=bool)
        for c in range(layout.num_columns):
            if layout.col_spatial[c]:
                shadowed |= rems[:, c, :] >= 2
            else:
                effective = np.where(shadowed, bounds[:, c, :], rems[:, c, :])
                steps = steps * bounds[:, c, :] + effective - 1
        return (steps + 1).prod(axis=1)

    def _traffic(
        self, bounds: Any, rems: Any, pos: Any, live: Any
    ) -> Tuple[Any, Any]:
        """Exact per-level reads/writes for the surviving rows.

        A direct vectorization of ``compute_access_counts``: identical
        recursions over the fixed grid, with boundary predicates reduced
        to level comparisons and the cutoff carried as a per-row position.
        """
        layout = self.layout
        assert layout is not None
        b = bounds[live]
        r = rems[live]
        p = pos[live]
        m = live.size
        reads = np.zeros((m, layout.num_levels), dtype=np.int64)
        writes = np.zeros((m, layout.num_levels), dtype=np.int64)
        for meta in layout.tensors:
            rel = list(meta.relevant_idx)
            for parent, child in meta.boundaries:
                child_level = layout.num_levels if child is None else child
                above = [
                    c
                    for c in range(layout.num_columns)
                    if layout.col_level[c] < child_level
                ]
                # Innermost relevant temporal loop above the boundary.
                cutoff = np.full(m, -1, dtype=np.int64)
                for c in above:
                    if layout.col_spatial[c]:
                        continue
                    candidate = np.where(b[:, c, rel] > 1, p[:, c, rel], -1)
                    if candidate.shape[1]:
                        cutoff = np.maximum(cutoff, candidate.max(axis=1))
                # Delivered-tile counts per dim above the boundary.
                tiles = np.zeros((m, layout.num_dims), dtype=np.int64)
                for c in above:
                    tiles = tiles * b[:, c, :] + r[:, c, :] - 1
                tiles += 1
                base = np.ones(m, dtype=np.int64)
                for rank in meta.ranks:
                    all_tiles = np.ones(m, dtype=np.int64)
                    for d, _ in rank:
                        all_tiles = all_tiles * tiles[:, d]
                    total = all_tiles.copy()
                    for d, coef in rank:
                        total += (
                            coef
                            * (layout.sizes[d] - tiles[:, d])
                            * (all_tiles // tiles[:, d])
                        )
                    base *= total
                inner, outer, inner_sp, outer_sp = self._projection_multipliers(
                    b, r, p, meta, above, cutoff, parent
                )
                if not meta.is_output:
                    reads[:, parent] += base * outer
                    if child is not None:
                        writes[:, child] += base * inner
                else:
                    writes[:, parent] += base * outer
                    reads[:, parent] += base * (outer - outer_sp)
                    if child is not None:
                        reads[:, child] += base * inner
                        writes[:, child] += base * (inner - inner_sp)
        return reads, writes

    def _projection_multipliers(
        self,
        b: Any,
        r: Any,
        p: Any,
        meta: _TensorMeta,
        above: List[int],
        cutoff: Any,
        parent: int,
    ) -> Tuple[Any, Any, Any, Any]:
        """The four ``_projection_count`` products over irrelevant dims.

        Each recursion walks the boundary's columns inner to outer keeping
        (full-subtree, last-path) projection counts; a selected loop
        multiplies, an unselected one promotes ``full`` when it carries a
        genuine remainder. Selections (see ``_boundary_traffic``):

        * inner: spatial or inside-the-cutoff temporal (refetch + copies);
        * outer: spatial above the parent, or inside-the-cutoff temporal;
        * inner_spatial / outer_spatial: the copy-only multiplicities.
        """
        layout = self.layout
        assert layout is not None
        m = b.shape[0]
        ones = np.ones(m, dtype=np.int64)
        inner = ones.copy()
        outer = ones.copy()
        inner_sp = ones.copy()
        outer_sp = ones.copy()
        for d in meta.irrelevant_idx:
            f_in, l_in = ones.copy(), ones.copy()
            f_out, l_out = ones.copy(), ones.copy()
            f_is, l_is = ones.copy(), ones.copy()
            f_os, l_os = ones.copy(), ones.copy()
            for c in reversed(above):
                bc = b[:, c, d]
                rc = r[:, c, d]
                if layout.col_spatial[c]:
                    above_parent = layout.col_level[c] < parent
                    # inner / inner_spatial: always selected.
                    l_in = (rc - 1) * f_in + l_in
                    f_in = bc * f_in
                    l_is = (rc - 1) * f_is + l_is
                    f_is = bc * f_is
                    if above_parent:
                        l_out = (rc - 1) * f_out + l_out
                        f_out = bc * f_out
                        l_os = (rc - 1) * f_os + l_os
                        f_os = bc * f_os
                    else:
                        l_out = np.where(rc >= 2, f_out, l_out)
                        l_os = np.where(rc >= 2, f_os, l_os)
                else:
                    selected = p[:, c, d] < cutoff
                    promoted = rc >= 2
                    l_in = np.where(
                        selected,
                        (rc - 1) * f_in + l_in,
                        np.where(promoted, f_in, l_in),
                    )
                    f_in = np.where(selected, bc * f_in, f_in)
                    l_out = np.where(
                        selected,
                        (rc - 1) * f_out + l_out,
                        np.where(promoted, f_out, l_out),
                    )
                    f_out = np.where(selected, bc * f_out, f_out)
                    l_is = np.where(promoted, f_is, l_is)
                    l_os = np.where(promoted, f_os, l_os)
            inner = inner * l_in
            outer = outer * l_out
            inner_sp = inner_sp * l_is
            outer_sp = outer_sp * l_os
        return inner, outer, inner_sp, outer_sp

    def _energy(self, reads: Any, writes: Any) -> Any:
        """Float accumulation in the scalar model's exact operation order."""
        layout = self.layout
        assert layout is not None
        total = np.zeros(reads.shape[0], dtype=np.float64)
        for level in range(layout.num_levels):
            level_energy = (
                reads[:, level].astype(np.float64) * self.read_pj[level]
                + writes[:, level].astype(np.float64) * self.write_pj[level]
            )
            total = total + level_energy
        return total + self.compute_energy

"""Vectorized batch evaluation: the columnar (structure-of-arrays) cost model.

The scalar :class:`~repro.model.evaluator.Evaluator` prices one mapping at a
time through pure-Python recursions; search loops are bounded by interpreter
overhead, not by the math. This module packs N candidate mappings into three
integer tensors and replays the exact same recursions as NumPy kernels over
whole batches:

* ``bounds[n, c, d]`` / ``rems[n, c, d]`` — the Eq. (5) bound and remainder
  of candidate ``n`` at *column* ``c`` for problem dimension ``d``. Columns
  are the fixed loop-block skeleton of the architecture (one temporal block
  per storage level plus one spatial block per mesh axis with fanout), the
  same skeleton :func:`~repro.mapspace.slots.build_slots` derives. An absent
  loop is the identity cell ``(bound=1, remainder=1)``, which every cost
  recursion passes through unchanged — so kernels run over the full fixed
  grid with no per-candidate filtering.
* ``pos[n, c, d]`` — the loop's position in the global nest (``-1`` when
  absent). Only *order* matters: the one order-sensitive quantity in the
  cost model is the innermost-relevant-temporal cutoff, and every predicate
  against it compares positions of loops that are both present, so any
  order-isomorphic numbering works (enumeration uses a virtual grid
  numbering; packed ``Mapping`` objects use their real positions).

Exactness: integers stay integers (int64, with a float-side overflow guard
that routes rows whose intermediates could exceed 2**53 back to the scalar
evaluator), and floats are composed in the same order as the scalar model
(per-level energy accumulation in architecture order, compute energy last),
so energy_pj, cycles, EDP — and utilization — match the scalar evaluator
bit for bit. The parity suite in ``tests/test_batch_eval.py`` asserts this
across presets, workload kinds, and imperfect mappings.

Lower-bound pruning: traffic through every boundary is at least one full
sweep of delivered tiles, and the per-rank delivery sum is multilinear in
the per-dimension tile counts, so its minimum over the feasible box
``t_j in [1, size_j]`` is attained at a box vertex. Minimizing over the
(at most four) vertices per rank yields a compulsory-traffic energy bound
that is a true constant per (architecture, workload); multiplied by the
(cheaply vectorized) exact cycle count it lower-bounds EDP, letting the
engine discard candidates that cannot beat the incumbent *before* the
expensive traffic stage. A relative margin keeps float rounding from ever
pruning a true improvement (see :data:`PRUNE_MARGIN`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.mapping.loop import Loop
from repro.mapping.nest import LevelNest, Mapping
from repro.model.evaluator import Evaluation, Evaluator
from repro.obs import scope as _obs
from repro.problem.workload import Workload

try:  # pragma: no cover - exercised via the scalar-fallback tests
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: Default number of candidates packed per batch. Large enough to amortize
#: kernel launch overhead, small enough that a pruned batch wastes little.
DEFAULT_BATCH_SIZE = 512

#: Relative safety margin on the lower-bound prune test. A candidate is
#: pruned only when ``lower_bound * (1 - PRUNE_MARGIN) >= incumbent``; the
#: bound is computed with a handful of float roundings (relative error
#: ~1e-15), so the margin guarantees a pruned candidate's true metric is
#: strictly worse than the incumbent — no improvement is ever discarded,
#: and exact ties are left to the (tie-rejecting) search loops.
PRUNE_MARGIN = 1e-9

#: Intermediate integer quantities are kept below 2**53 so that int64
#: arithmetic cannot wrap and int->float conversions stay exact. Rows that
#: could exceed it fall back to the scalar evaluator (exact bigints).
_EXACT_LIMIT = float(2**53)


@dataclass(frozen=True)
class Column:
    """One loop block of the fixed columnar grid.

    Mirrors :class:`~repro.mapspace.slots.Slot` structure (which depends
    only on the architecture — constraints change caps and allowed dims,
    never which blocks exist), plus the hardware fanout limit used by the
    vectorized validity check.
    """

    level_index: int
    level_name: str
    spatial: bool
    axis: int = 0
    fanout_limit: int = 0  # hardware per-axis limit (spatial columns only)


def derive_columns(arch: Architecture) -> List[Column]:
    """Build the columnar grid skeleton for ``arch`` (outer to inner)."""
    columns: List[Column] = []
    for index, level in enumerate(arch.levels):
        columns.append(Column(index, level.name, spatial=False))
        if level.fanout > 1:
            axis_fanouts = [(0, level.fanout_x), (1, level.fanout_y)]
            if level.fanout_x is None:
                axis_fanouts = [(0, level.fanout)]
            for axis, axis_fanout in axis_fanouts:
                if axis_fanout is None or axis_fanout < 2:
                    continue
                columns.append(
                    Column(
                        index,
                        level.name,
                        spatial=True,
                        axis=axis,
                        fanout_limit=axis_fanout,
                    )
                )
    return columns


@dataclass(frozen=True)
class _TensorMeta:
    """Precomputed per-tensor projection structure (dim names -> indices)."""

    name: str
    is_output: bool
    bits_per_element: int
    ranks: Tuple[Tuple[Tuple[int, int], ...], ...]  # ((dim_idx, coef), ...)
    relevant_idx: Tuple[int, ...]  # workload dim order
    irrelevant_idx: Tuple[int, ...]  # workload dim order
    keepers: Tuple[int, ...]
    boundaries: Tuple[Tuple[int, Optional[int]], ...]  # (parent, child)
    partition_words: Tuple[Optional[int], ...]  # per storage level


class BatchLayout:
    """The fixed columnar structure of one (architecture, workload) pair.

    Holds everything that depends only on the specs — the column grid, the
    virtual position numbering used by enumeration, per-tensor projection
    metadata, and the per-level capacity/fanout limits. Energy coefficients
    live in :class:`BatchEvaluator` (they come from the evaluator's table).

    Args:
        arch: target architecture.
        workload: the tensor operation.
        permutation_priority: optional ``{level_name: fixed_dim_order}``
            matching the mapspace's constraint permutations, so the virtual
            grid numbering is order-isomorphic to the real nest positions
            that :meth:`~repro.mapspace.generator.MapSpace.assemble`
            produces with ``rng=None``. Irrelevant for packed ``Mapping``
            objects, which carry their real positions.
    """

    def __init__(
        self,
        arch: Architecture,
        workload: Workload,
        permutation_priority: Optional[Dict[str, Optional[Tuple[str, ...]]]] = None,
    ) -> None:
        if not HAS_NUMPY:
            raise RuntimeError("BatchLayout requires NumPy")
        self.arch = arch
        self.workload = workload
        self.columns = derive_columns(arch)
        self.num_columns = len(self.columns)
        self.level_names: Tuple[str, ...] = tuple(l.name for l in arch.levels)
        self.num_levels = len(arch.levels)
        self.dims: Tuple[str, ...] = workload.dim_names
        self.dim_index: Dict[str, int] = {d: i for i, d in enumerate(self.dims)}
        self.num_dims = len(self.dims)
        self.sizes = np.array(
            [workload.size(d) for d in self.dims], dtype=np.int64
        )
        self.col_level: Tuple[int, ...] = tuple(
            c.level_index for c in self.columns
        )
        self.col_spatial: Tuple[bool, ...] = tuple(c.spatial for c in self.columns)
        self.col_axis: Tuple[int, ...] = tuple(c.axis for c in self.columns)
        self._col_lookup: Dict[Tuple[int, bool, int], int] = {}
        for offset, column in enumerate(self.columns):
            key = (column.level_index, column.spatial, column.axis)
            self._col_lookup[key] = offset
        self._build_grid(permutation_priority or {})
        self._build_tensor_meta()
        self._build_limits()

    # -- construction ---------------------------------------------------

    def _build_grid(self, priorities: Dict[str, Optional[Tuple[str, ...]]]) -> None:
        """Number the grid cells in virtual nest order (see module doc)."""
        order: List[Tuple[int, int]] = []
        self.grid_cells_by_level: List[List[Tuple[int, int]]] = []
        for level_index, level_name in enumerate(self.level_names):
            cells: List[Tuple[int, int]] = []
            fixed = priorities.get(level_name)
            if fixed:
                priority = {dim: i for i, dim in enumerate(fixed)}
                dim_order = sorted(
                    range(self.num_dims),
                    key=lambda d: (
                        priority.get(self.dims[d], len(priority)),
                        d,
                    ),
                )
            else:
                dim_order = list(range(self.num_dims))
            for offset, column in enumerate(self.columns):
                if column.level_index != level_index or column.spatial:
                    continue
                cells.extend((offset, d) for d in dim_order)
            for offset, column in enumerate(self.columns):
                if column.level_index != level_index or not column.spatial:
                    continue
                cells.extend((offset, d) for d in range(self.num_dims))
            self.grid_cells_by_level.append(cells)
            order.extend(cells)
        self.grid_pos = np.full(
            (self.num_columns, self.num_dims), -1, dtype=np.int64
        )
        for position, (offset, d) in enumerate(order):
            self.grid_pos[offset, d] = position

    def _build_tensor_meta(self) -> None:
        self.tensors: List[_TensorMeta] = []
        self.paths_supported = True
        self.paths_reason = ""
        for tensor in self.workload.tensors:
            relevant = tensor.relevant_dims
            rel_idx = tuple(
                i for i, d in enumerate(self.dims) if d in relevant
            )
            irr_idx = tuple(
                i for i, d in enumerate(self.dims) if d not in relevant
            )
            ranks = tuple(
                tuple((self.dim_index[term.dim], term.coefficient) for term in rank)
                for rank in tensor.ranks
            )
            keepers = tuple(
                i
                for i, level in enumerate(self.arch.levels)
                if level.keeps_tensor(tensor.name)
            )
            if not keepers or keepers[0] != 0:
                # The scalar model raises SpecError on these architectures;
                # keep its semantics by refusing the batch path entirely.
                self.paths_supported = False
                self.paths_reason = (
                    f"tensor {tensor.name} has no outermost keeper level"
                )
            boundaries: List[Tuple[int, Optional[int]]] = [
                (parent, child) for parent, child in zip(keepers, keepers[1:])
            ]
            if keepers:
                boundaries.append((keepers[-1], None))
            partition = tuple(
                level.tensor_capacity(tensor.name) for level in self.arch.levels
            )
            self.tensors.append(
                _TensorMeta(
                    name=tensor.name,
                    is_output=tensor.is_output,
                    bits_per_element=tensor.bits_per_element,
                    ranks=ranks,
                    relevant_idx=rel_idx,
                    irrelevant_idx=irr_idx,
                    keepers=keepers,
                    boundaries=tuple(boundaries),
                    partition_words=partition,
                )
            )

    def _build_limits(self) -> None:
        # Spatial-dataflow restrictions: per spatial column, the dims that
        # may NOT take a nontrivial bound there (None = unrestricted).
        self.spatial_disallowed: List[Optional[Any]] = []
        for column in self.columns:
            if not column.spatial:
                self.spatial_disallowed.append(None)
                continue
            allowed = self.arch.levels[column.level_index].spatial_dims
            if allowed is None:
                self.spatial_disallowed.append(None)
            else:
                mask = np.array(
                    [d not in allowed for d in self.dims], dtype=bool
                )
                self.spatial_disallowed.append(mask if mask.any() else None)
        # Capacity checks: per bounded level, which tensors are kept there.
        self.capacity_levels: List[Tuple[int, Any]] = []
        for level_index, level in enumerate(self.arch.levels):
            if level.total_capacity_words is None:
                continue
            kept = tuple(
                t
                for t, tensor in enumerate(self.workload.tensors)
                if level.keeps_tensor(tensor.name)
            )
            suffix_cols = tuple(
                c
                for c in range(self.num_columns)
                if self.col_level[c] >= level_index
            )
            self.capacity_levels.append(
                (
                    level_index,
                    {
                        "kept": kept,
                        "cols": suffix_cols,
                        "word_bits": level.word_bits,
                        "shared_capacity": (
                            level.capacity_words
                            if not level.is_partitioned
                            else None
                        ),
                    },
                )
            )

    # -- packing and materialization ------------------------------------

    def column_for(
        self, level_index: int, spatial: bool, axis: int
    ) -> Optional[int]:
        """Grid column holding a loop at ``(level, block, axis)``, if any."""
        return self._col_lookup.get((level_index, spatial, axis if spatial else 0))

    def materialize(self, bounds_row: Any, rems_row: Any) -> Mapping:
        """Rebuild the :class:`Mapping` a packed enumeration row encodes.

        Inverse of the ``iter_batches`` packing: loops are emitted in
        virtual grid order, which equals the order
        :meth:`~repro.mapspace.generator.MapSpace.assemble` uses with
        ``rng=None`` (temporal dims sorted by the fixed permutation then
        dim order, spatial blocks in column/dim order).
        """
        nests: List[LevelNest] = []
        for level_index, level_name in enumerate(self.level_names):
            temporal: List[Loop] = []
            spatial: List[Loop] = []
            for offset, d in self.grid_cells_by_level[level_index]:
                bound = int(bounds_row[offset, d])
                remainder = int(rems_row[offset, d])
                if bound == 1 and remainder == 1:
                    continue
                column = self.columns[offset]
                loop = Loop(
                    self.dims[d],
                    bound,
                    remainder,
                    spatial=column.spatial,
                    axis=column.axis,
                )
                (spatial if column.spatial else temporal).append(loop)
            nests.append(
                LevelNest(
                    level_name=level_name,
                    temporal=tuple(temporal),
                    spatial=tuple(spatial),
                )
            )
        return Mapping(levels=tuple(nests))


@dataclass
class MappingBatch:
    """N candidate mappings in structure-of-arrays form.

    ``bounds``/``rems``/``pos`` are int64 arrays of shape
    ``[n, num_columns, num_dims]``; absent loops hold the identity cell
    ``(1, 1, -1)``. ``fallback`` flags rows the columnar grid cannot
    represent (bypass sets, misaligned levels, duplicate cells); those are
    priced by the scalar evaluator instead.
    """

    layout: BatchLayout
    bounds: Any
    rems: Any
    pos: Any
    fallback: Any
    mappings: Optional[List[Mapping]] = None
    #: Optional per-row provenance stamped by
    #: :meth:`MapSpace.iter_prefix_batches` (the source prefix's tag);
    #: pricing kernels ignore it.
    tags: Any = None

    @property
    def size(self) -> int:
        return int(self.bounds.shape[0])

    def mapping_at(self, index: int) -> Mapping:
        """The ``Mapping`` object of row ``index`` (rebuilt if not stored)."""
        if self.mappings is not None:
            return self.mappings[index]
        return self.layout.materialize(self.bounds[index], self.rems[index])

    def to_shared(self, allow_shm: bool = True):
        """Ship this batch's SoA arrays through one shared-memory segment.

        Returns ``(bundle, descriptor)``: the driver keeps ``bundle``
        alive until every worker is done (and then ``release()``-s it,
        exactly once); ``descriptor`` is a small picklable dict a worker
        hands to :meth:`from_shared`. Enumerated batches carry a
        row-constant broadcast of the layout's virtual position grid —
        that case is detected and shipped as a flag instead of ``n``
        materialized copies. Degrades to a pickle payload when shared
        memory is unavailable (see :class:`repro.model.shm.ShmArrayBundle`).
        """
        from repro.model.shm import ShmArrayBundle

        if self.mappings is not None and bool(self.fallback.any()):
            raise ValueError(
                "cannot transport a batch whose fallback rows need their "
                "original Mapping objects; re-pack without fallback rows"
            )
        grid_pos = (
            self.pos.ndim == 3
            and self.pos.strides[0] == 0
            and bool(np.array_equal(self.pos[0], self.layout.grid_pos))
        )
        arrays = {
            "bounds": self.bounds,
            "rems": self.rems,
            "fallback": self.fallback,
        }
        if not grid_pos:
            arrays["pos"] = self.pos
        if self.tags is not None:
            arrays["tags"] = self.tags
        bundle = ShmArrayBundle.share(arrays, allow_shm=allow_shm)
        descriptor = {"bundle": bundle.handle, "grid_pos": grid_pos}
        return bundle, descriptor

    @classmethod
    def from_shared(cls, layout: BatchLayout, descriptor):
        """Attach a transported batch (worker side).

        Returns ``(batch, bundle)``; the caller must keep ``bundle``
        referenced while the batch is in use, and may ``close()`` it only
        after dropping every view (accessing a view whose mapping was
        closed is undefined behavior). Pool workers can simply leave the
        mapping open for the process lifetime — the driver's single
        ``unlink`` is what prevents ``/dev/shm`` leaks.
        """
        from repro.model.shm import ShmArrayBundle

        bundle = ShmArrayBundle.attach(descriptor["bundle"])
        bounds = bundle.arrays["bounds"]
        if descriptor["grid_pos"]:
            pos = np.broadcast_to(layout.grid_pos[None, :, :], bounds.shape)
        else:
            pos = bundle.arrays["pos"]
        batch = cls(
            layout=layout,
            bounds=bounds,
            rems=bundle.arrays["rems"],
            pos=pos,
            fallback=bundle.arrays["fallback"],
            tags=bundle.arrays.get("tags"),
        )
        return batch, bundle


def pack_mappings(layout: BatchLayout, mappings: Sequence[Mapping]) -> MappingBatch:
    """Pack ``Mapping`` objects into columnar form (real nest positions).

    Rows the grid cannot represent are flagged ``fallback`` rather than
    rejected, so callers get uniform batch semantics with scalar-exact
    results for the exotic cases.
    """
    n = len(mappings)
    shape = (n, layout.num_columns, layout.num_dims)
    bounds = np.ones(shape, dtype=np.int64)
    rems = np.ones(shape, dtype=np.int64)
    pos = np.full(shape, -1, dtype=np.int64)
    fallback = np.zeros(n, dtype=bool)
    for i, mapping in enumerate(mappings):
        if mapping.bypass:
            fallback[i] = True
            continue
        if tuple(nest.level_name for nest in mapping.levels) != layout.level_names:
            fallback[i] = True
            continue
        for placed in mapping.placed_loops():
            loop = placed.loop
            d = layout.dim_index.get(loop.dim)
            if d is None:
                # Unknown dim: the scalar validity check reports it even
                # for trivial loops, so the row must go scalar.
                fallback[i] = True
                break
            if loop.bound == 1:
                continue  # identity cell; nontrivial_loops drops it too
            c = layout.column_for(placed.level_index, loop.spatial, loop.axis)
            if c is None or pos[i, c, d] != -1:
                fallback[i] = True
                break
            bounds[i, c, d] = loop.bound
            rems[i, c, d] = loop.remainder
            pos[i, c, d] = placed.position
    return MappingBatch(
        layout=layout,
        bounds=bounds,
        rems=rems,
        pos=pos,
        fallback=fallback,
        mappings=list(mappings),
    )


@dataclass(frozen=True)
class CandidateOutcome:
    """Per-candidate result of :meth:`BatchEvaluator.evaluate_mappings`.

    ``metric`` is ``inf`` for invalid or pruned candidates. ``evaluation``
    is populated only when a full scalar :class:`Evaluation` was produced
    anyway (cache hits and fallback rows); improvements should be
    re-priced through :meth:`Evaluator.evaluate_fresh` by the caller.
    ``energy_pj``/``cycles``/``utilization`` carry the bit-exact component
    metrics for valid, unpruned candidates (multi-objective searches need
    the raw coordinates, not just the collapsed objective) and are ``None``
    otherwise.
    """

    valid: bool
    pruned: bool
    metric: float
    evaluation: Optional[Evaluation] = None
    energy_pj: Optional[float] = None
    cycles: Optional[int] = None
    utilization: Optional[float] = None


@dataclass
class BatchOutcome:
    """Vectorized results for one :class:`MappingBatch`.

    Arrays are indexed by batch row. ``metric`` holds ``inf`` at invalid
    and pruned rows; ``energy_pj``/``cycles``/``utilization`` are only
    meaningful where ``valid & ~pruned``. ``evaluations`` maps fallback
    row indices to their full scalar evaluations.
    """

    valid: Any
    pruned: Any
    fallback: Any
    metric: Any
    energy_pj: Any
    cycles: Any
    utilization: Any
    evaluations: Dict[int, Evaluation] = field(default_factory=dict)


class BatchEvaluator:
    """Price whole batches of mappings with vectorized kernels.

    Wraps a scalar :class:`Evaluator` (whose energy table, cache, and
    fallback path it reuses) and guarantees bit-exact agreement with it on
    ``energy_pj``, ``cycles``, EDP, and ``utilization`` for every row it
    prices vectorized; rows it cannot represent go through the scalar
    evaluator unchanged. Check :attr:`supported` before use — searches
    keep their scalar loops when the engine is unavailable (no NumPy,
    NoC/static energy or bandwidth stalls enabled, or degenerate tensor
    paths).
    """

    def __init__(
        self, evaluator: Evaluator, layout: Optional[BatchLayout] = None
    ) -> None:
        self.evaluator = evaluator
        self.supported, self.unsupported_reason = self._support_check(evaluator)
        self.layout: Optional[BatchLayout] = None
        self.batches_evaluated = 0
        self.candidates_evaluated = 0
        self.candidates_pruned = 0
        self.candidates_fallback = 0
        if not self.supported:
            return
        self.layout = layout or BatchLayout(evaluator.arch, evaluator.workload)
        if not self.layout.paths_supported:
            self.supported = False
            self.unsupported_reason = self.layout.paths_reason
            return
        self._precompute()

    @staticmethod
    def _support_check(evaluator: Evaluator) -> Tuple[bool, str]:
        if not HAS_NUMPY:
            return False, "numpy unavailable"
        if evaluator.include_noc or evaluator.include_static:
            return False, "NoC/static energy components enabled"
        if any(
            level.bandwidth_words_per_cycle is not None
            for level in evaluator.arch.levels
        ):
            return False, "bandwidth stall model enabled"
        if evaluator.workload.total_operations >= _EXACT_LIMIT:
            return False, "workload exceeds exact-float operation count"
        return True, ""

    def _precompute(self) -> None:
        layout = self.layout
        assert layout is not None
        table = self.evaluator.energy_table
        self.read_pj: List[float] = []
        self.write_pj: List[float] = []
        for level in layout.arch.levels:
            self.read_pj.append(table.read_pj(level.name))
            self.write_pj.append(table.write_pj(level.name))
        # Matches the scalar energy model: compute energy is one exact
        # int * float product added after the per-level accumulation.
        self.compute_energy = layout.workload.total_operations * table.mac_pj
        self.units_opc = (
            layout.arch.total_compute_units * layout.arch.compute.ops_per_cycle
        )
        self.ops_f = float(layout.workload.total_operations)
        sizes = {d: int(s) for d, s in zip(layout.dims, layout.sizes)}
        self._build_lower_bound(sizes)
        self._build_overflow_guard()

    def _build_lower_bound(self, sizes: Dict[str, int]) -> None:
        """Compulsory-energy constant: see the module docstring derivation."""
        layout = self.layout
        assert layout is not None
        lower = 0.0
        for meta in layout.tensors:
            base_lb = 1
            for rank in meta.ranks:
                base_lb *= self._rank_vertex_min(rank, layout)
            for parent, child in meta.boundaries:
                if not meta.is_output:
                    lower += self.read_pj[parent] * base_lb
                    if child is not None:
                        lower += self.write_pj[child] * base_lb
                else:
                    lower += self.write_pj[parent] * base_lb
                    if child is not None:
                        lower += self.read_pj[child] * base_lb
        self.lb_energy = lower + self.compute_energy

    @staticmethod
    def _rank_vertex_min(
        rank: Tuple[Tuple[int, int], ...], layout: "BatchLayout"
    ) -> int:
        """Minimum delivery sum of one rank over the tile-count box.

        The sum is affine in each (independently relaxed) tile count, so
        the box minimum sits at a vertex ``t_j in {1, size_j}``.
        """
        sizes = [int(layout.sizes[d]) for d, _ in rank]
        best: Optional[int] = None
        for vertex in itertools.product(*[(1, s) for s in sizes]):
            all_tiles = 1
            for t in vertex:
                all_tiles *= t
            total = all_tiles
            for (d, coef), t, size in zip(rank, vertex, sizes):
                total += coef * (size - t) * (all_tiles // t)
            if best is None or total < best:
                best = total
        return best if best is not None else 1

    def _build_overflow_guard(self) -> None:
        """Per-tensor bound factors: traffic <= C_t * prod_d BD_d**e_td.

        ``BD_d`` is the product of all of dim ``d``'s bounds; relevant dims
        contribute once per rank they appear in (the delivery-sum bound),
        irrelevant dims once (the projection-count bound); ``C_t`` collects
        the ``1 + sum(coef)`` slack per rank. Rows where any factor — or
        the iteration-space product times the compute capacity — reaches
        2**53 fall back to the exact scalar path.
        """
        layout = self.layout
        assert layout is not None
        self._guard_tensors: List[Tuple[float, Any]] = []
        for meta in layout.tensors:
            c_const = 1.0
            exponents = np.ones(layout.num_dims, dtype=np.float64)
            for d in meta.relevant_idx:
                exponents[d] = 0.0
            for rank in meta.ranks:
                c_const *= 1.0 + sum(coef for _, coef in rank)
                for d, _ in rank:
                    exponents[d] += 1.0
            self._guard_tensors.append((c_const, exponents))

    # -- public API ------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        """Observability counters for ``SearchResult.stats['batch']``."""
        evaluated = self.candidates_evaluated
        return {
            "batches": self.batches_evaluated,
            "candidates": evaluated,
            "pruned": self.candidates_pruned,
            "prune_rate": (self.candidates_pruned / evaluated) if evaluated else 0.0,
            "fallback": self.candidates_fallback,
        }

    def evaluate_batch(
        self,
        batch: MappingBatch,
        objective: str = "edp",
        incumbent: float = float("inf"),
        prune: bool = False,
    ) -> BatchOutcome:
        """Price one packed batch; optionally prune against ``incumbent``."""
        if not self.supported:
            raise RuntimeError(
                f"batch evaluation unsupported: {self.unsupported_reason}"
            )
        layout = self.layout
        assert layout is not None
        n = batch.size
        bounds, rems, pos = batch.bounds, batch.rems, batch.pos
        fallback = batch.fallback | self._overflow_rows(bounds)
        valid = self._validity(bounds, rems)
        cycles = self._cycles(bounds, rems)
        cycles_f = cycles.astype(np.float64)
        pruned = np.zeros(n, dtype=bool)
        if prune and incumbent != float("inf"):
            if objective == "edp":
                bound_metric = self.lb_energy * cycles_f
            elif objective == "energy":
                bound_metric = np.full(n, self.lb_energy)
            else:
                bound_metric = cycles_f
            pruned = (
                valid
                & ~fallback
                & (bound_metric * (1.0 - PRUNE_MARGIN) >= incumbent)
            )
        metric = np.full(n, float("inf"))
        energy = np.full(n, float("nan"))
        utilization = np.full(n, float("nan"))
        live = np.flatnonzero(valid & ~fallback & ~pruned)
        if live.size:
            reads, writes = self._traffic(bounds, rems, pos, live)
            live_energy = self._energy(reads, writes)
            energy[live] = live_energy
            capacity = (cycles[live] * self.units_opc).astype(np.float64)
            utilization[live] = self.ops_f / capacity
            if objective == "edp":
                metric[live] = live_energy * cycles_f[live]
            elif objective == "energy":
                metric[live] = live_energy
            else:
                metric[live] = cycles_f[live]
        evaluations: Dict[int, Evaluation] = {}
        for i in np.flatnonzero(fallback):
            i = int(i)
            evaluation = self.evaluator.evaluate_fresh(batch.mapping_at(i))
            evaluations[i] = evaluation
            valid[i] = evaluation.valid
            pruned[i] = False
            if evaluation.valid:
                metric[i] = evaluation.metric(objective)
                energy[i] = evaluation.energy_pj
                cycles[i] = evaluation.cycles
                utilization[i] = evaluation.utilization
            else:
                metric[i] = float("inf")
        self.batches_evaluated += 1
        self.candidates_evaluated += n
        self.candidates_pruned += int(pruned.sum())
        self.candidates_fallback += int(fallback.sum())
        _obs.inc("batch.batches")
        _obs.inc("batch.candidates", n)
        _obs.inc("batch.pruned", int(pruned.sum()))
        _obs.inc("batch.fallback", int(fallback.sum()))
        return BatchOutcome(
            valid=valid,
            pruned=pruned,
            fallback=fallback,
            metric=metric,
            energy_pj=energy,
            cycles=cycles,
            utilization=utilization,
            evaluations=evaluations,
        )

    def evaluate_mappings(
        self,
        mappings: Sequence[Mapping],
        objective: str = "edp",
        incumbent: float = float("inf"),
        prune: bool = False,
    ) -> List[CandidateOutcome]:
        """Price a list of ``Mapping`` objects through the batch engine.

        With a cache attached to the wrapped evaluator, every candidate
        costs exactly one cache lookup (matching the scalar path's
        lookup count); hits bypass the kernels entirely. Misses are
        packed and priced vectorized — only improvements and fallback
        rows are re-priced scalar (and stored), so a batched search fills
        the cache more sparsely than a scalar one.
        """
        if not self.supported:
            raise RuntimeError(
                f"batch evaluation unsupported: {self.unsupported_reason}"
            )
        cache = self.evaluator.cache
        outcomes: List[Optional[CandidateOutcome]] = [None] * len(mappings)
        misses: List[Mapping] = []
        miss_rows: List[int] = []
        for i, mapping in enumerate(mappings):
            if cache is not None:
                hit = cache.get(mapping.signature())
                if hit is not None:
                    if hit.mapping is not mapping:
                        hit = replace(hit, mapping=mapping)
                    outcomes[i] = CandidateOutcome(
                        valid=hit.valid,
                        pruned=False,
                        metric=hit.metric(objective) if hit.valid else float("inf"),
                        evaluation=hit,
                        energy_pj=hit.energy_pj if hit.valid else None,
                        cycles=hit.cycles if hit.valid else None,
                        utilization=hit.utilization if hit.valid else None,
                    )
                    continue
            misses.append(mapping)
            miss_rows.append(i)
        if misses:
            assert self.layout is not None
            batch = pack_mappings(self.layout, misses)
            outcome = self.evaluate_batch(
                batch, objective=objective, incumbent=incumbent, prune=prune
            )
            for row, i in enumerate(miss_rows):
                live = bool(outcome.valid[row]) and not bool(outcome.pruned[row])
                outcomes[i] = CandidateOutcome(
                    valid=bool(outcome.valid[row]),
                    pruned=bool(outcome.pruned[row]),
                    metric=float(outcome.metric[row]),
                    evaluation=outcome.evaluations.get(row),
                    energy_pj=float(outcome.energy_pj[row]) if live else None,
                    cycles=int(outcome.cycles[row]) if live else None,
                    utilization=(
                        float(outcome.utilization[row]) if live else None
                    ),
                )
        return [outcome for outcome in outcomes if outcome is not None]

    # -- vectorized kernels ----------------------------------------------

    def _overflow_rows(self, bounds: Any) -> Any:
        layout = self.layout
        assert layout is not None
        bd = np.ones((bounds.shape[0], layout.num_dims), dtype=np.float64)
        bounds_f = bounds.astype(np.float64)
        for c in range(layout.num_columns):
            bd *= bounds_f[:, c, :]
        over = bd.prod(axis=1) * self.units_opc >= _EXACT_LIMIT
        for c_const, exponents in self._guard_tensors:
            over |= c_const * (bd**exponents).prod(axis=1) >= _EXACT_LIMIT
        return over

    def _validity(self, bounds: Any, rems: Any) -> Any:
        """Replay ``check_mapping`` as boolean masks (structure is packed)."""
        layout = self.layout
        assert layout is not None
        n = bounds.shape[0]
        # Coverage: the full per-dim Eq. (5) chain must equal the dim size.
        cov = np.zeros((n, layout.num_dims), dtype=np.int64)
        for c in range(layout.num_columns):
            cov = cov * bounds[:, c, :] + rems[:, c, :] - 1
        valid = ((cov + 1) == layout.sizes[None, :]).all(axis=1)
        # Fanout and dataflow restrictions per spatial column.
        for c, column in enumerate(layout.columns):
            if not column.spatial:
                continue
            allocation = bounds[:, c, :].prod(axis=1)
            valid &= allocation <= column.fanout_limit
            disallowed = layout.spatial_disallowed[c]
            if disallowed is not None:
                valid &= ~(bounds[:, c, disallowed] > 1).any(axis=1)
        # Capacity: the largest tile held at each bounded level must fit.
        for level_index, info in layout.capacity_levels:
            ext = np.ones((n, layout.num_dims), dtype=np.int64)
            for c in info["cols"]:
                ext *= bounds[:, c, :]
            shared = np.zeros(n, dtype=np.int64)
            for t in info["kept"]:
                meta = layout.tensors[t]
                footprint = np.ones(n, dtype=np.int64)
                for rank in meta.ranks:
                    span = np.zeros(n, dtype=np.int64)
                    for d, coef in rank:
                        span += coef * (ext[:, d] - 1)
                    footprint *= span + 1
                words = np.maximum(
                    footprint * meta.bits_per_element // info["word_bits"], 1
                )
                partition = meta.partition_words[level_index]
                if partition is not None:
                    valid &= words <= partition
                else:
                    shared += words
            if info["shared_capacity"] is not None:
                valid &= shared <= info["shared_capacity"]
        return valid

    def _cycles(self, bounds: Any, rems: Any) -> Any:
        """Per-dim shadowed temporal-step recursion, product over dims."""
        layout = self.layout
        assert layout is not None
        n = bounds.shape[0]
        steps = np.zeros((n, layout.num_dims), dtype=np.int64)
        shadowed = np.zeros((n, layout.num_dims), dtype=bool)
        for c in range(layout.num_columns):
            if layout.col_spatial[c]:
                shadowed |= rems[:, c, :] >= 2
            else:
                effective = np.where(shadowed, bounds[:, c, :], rems[:, c, :])
                steps = steps * bounds[:, c, :] + effective - 1
        return (steps + 1).prod(axis=1)

    def _traffic(
        self, bounds: Any, rems: Any, pos: Any, live: Any
    ) -> Tuple[Any, Any]:
        """Exact per-level reads/writes for the surviving rows.

        A direct vectorization of ``compute_access_counts``: identical
        recursions over the fixed grid, with boundary predicates reduced
        to level comparisons and the cutoff carried as a per-row position.
        """
        layout = self.layout
        assert layout is not None
        b = bounds[live]
        r = rems[live]
        p = pos[live]
        m = live.size
        reads = np.zeros((m, layout.num_levels), dtype=np.int64)
        writes = np.zeros((m, layout.num_levels), dtype=np.int64)
        for meta in layout.tensors:
            rel = list(meta.relevant_idx)
            for parent, child in meta.boundaries:
                child_level = layout.num_levels if child is None else child
                above = [
                    c
                    for c in range(layout.num_columns)
                    if layout.col_level[c] < child_level
                ]
                # Innermost relevant temporal loop above the boundary.
                cutoff = np.full(m, -1, dtype=np.int64)
                for c in above:
                    if layout.col_spatial[c]:
                        continue
                    candidate = np.where(b[:, c, rel] > 1, p[:, c, rel], -1)
                    if candidate.shape[1]:
                        cutoff = np.maximum(cutoff, candidate.max(axis=1))
                # Delivered-tile counts per dim above the boundary.
                tiles = np.zeros((m, layout.num_dims), dtype=np.int64)
                for c in above:
                    tiles = tiles * b[:, c, :] + r[:, c, :] - 1
                tiles += 1
                base = np.ones(m, dtype=np.int64)
                for rank in meta.ranks:
                    all_tiles = np.ones(m, dtype=np.int64)
                    for d, _ in rank:
                        all_tiles = all_tiles * tiles[:, d]
                    total = all_tiles.copy()
                    for d, coef in rank:
                        total += (
                            coef
                            * (layout.sizes[d] - tiles[:, d])
                            * (all_tiles // tiles[:, d])
                        )
                    base *= total
                inner, outer, inner_sp, outer_sp = self._projection_multipliers(
                    b, r, p, meta, above, cutoff, parent
                )
                if not meta.is_output:
                    reads[:, parent] += base * outer
                    if child is not None:
                        writes[:, child] += base * inner
                else:
                    writes[:, parent] += base * outer
                    reads[:, parent] += base * (outer - outer_sp)
                    if child is not None:
                        reads[:, child] += base * inner
                        writes[:, child] += base * (inner - inner_sp)
        return reads, writes

    def _projection_multipliers(
        self,
        b: Any,
        r: Any,
        p: Any,
        meta: _TensorMeta,
        above: List[int],
        cutoff: Any,
        parent: int,
    ) -> Tuple[Any, Any, Any, Any]:
        """The four ``_projection_count`` products over irrelevant dims.

        Each recursion walks the boundary's columns inner to outer keeping
        (full-subtree, last-path) projection counts; a selected loop
        multiplies, an unselected one promotes ``full`` when it carries a
        genuine remainder. Selections (see ``_boundary_traffic``):

        * inner: spatial or inside-the-cutoff temporal (refetch + copies);
        * outer: spatial above the parent, or inside-the-cutoff temporal;
        * inner_spatial / outer_spatial: the copy-only multiplicities.
        """
        layout = self.layout
        assert layout is not None
        m = b.shape[0]
        ones = np.ones(m, dtype=np.int64)
        inner = ones.copy()
        outer = ones.copy()
        inner_sp = ones.copy()
        outer_sp = ones.copy()
        for d in meta.irrelevant_idx:
            f_in, l_in = ones.copy(), ones.copy()
            f_out, l_out = ones.copy(), ones.copy()
            f_is, l_is = ones.copy(), ones.copy()
            f_os, l_os = ones.copy(), ones.copy()
            for c in reversed(above):
                bc = b[:, c, d]
                rc = r[:, c, d]
                if layout.col_spatial[c]:
                    above_parent = layout.col_level[c] < parent
                    # inner / inner_spatial: always selected.
                    l_in = (rc - 1) * f_in + l_in
                    f_in = bc * f_in
                    l_is = (rc - 1) * f_is + l_is
                    f_is = bc * f_is
                    if above_parent:
                        l_out = (rc - 1) * f_out + l_out
                        f_out = bc * f_out
                        l_os = (rc - 1) * f_os + l_os
                        f_os = bc * f_os
                    else:
                        l_out = np.where(rc >= 2, f_out, l_out)
                        l_os = np.where(rc >= 2, f_os, l_os)
                else:
                    selected = p[:, c, d] < cutoff
                    promoted = rc >= 2
                    l_in = np.where(
                        selected,
                        (rc - 1) * f_in + l_in,
                        np.where(promoted, f_in, l_in),
                    )
                    f_in = np.where(selected, bc * f_in, f_in)
                    l_out = np.where(
                        selected,
                        (rc - 1) * f_out + l_out,
                        np.where(promoted, f_out, l_out),
                    )
                    f_out = np.where(selected, bc * f_out, f_out)
                    l_is = np.where(promoted, f_is, l_is)
                    l_os = np.where(promoted, f_os, l_os)
            inner = inner * l_in
            outer = outer * l_out
            inner_sp = inner_sp * l_is
            outer_sp = outer_sp * l_os
        return inner, outer, inner_sp, outer_sp

    def _energy(self, reads: Any, writes: Any) -> Any:
        """Float accumulation in the scalar model's exact operation order."""
        layout = self.layout
        assert layout is not None
        total = np.zeros(reads.shape[0], dtype=np.float64)
        for level in range(layout.num_levels):
            level_energy = (
                reads[:, level].astype(np.float64) * self.read_pj[level]
                + writes[:, level].astype(np.float64) * self.write_pj[level]
            )
            total = total + level_energy
        return total + self.compute_energy


class PartialBoundEngine:
    """Admissible completion bounds for partial chain assignments.

    The batch engine's lower bound (:meth:`BatchEvaluator._build_lower_bound`)
    is a single constant — the per-rank multilinear delivery sum minimized
    over the whole tile-count box. This class refines that bound along the
    per-dimension prefix tree: a prefix pins the full Eq. (5) chains of a
    subset of problem dimensions, which fixes those dimensions' per-boundary
    delivered-tile counts and per-dimension cycle factors *exactly*, while
    unassigned dimensions stay relaxed over the box spanned by their chain
    menu. The result lower-bounds the metric of **every** mapping that
    completes the prefix, so a branch-and-bound search can discard whole
    subtrees before they are enumerated:

    * **cycles** — the cycle count is an exact per-dimension product
      (see :meth:`BatchEvaluator._cycles`); assigned dims contribute their
      exact factor, free dims the minimum factor over their menu.
    * **energy** — each tensor boundary's traffic is its rank delivery-sum
      product times per-dimension projection multipliers over the
      irrelevant dims. Each rank sum is multilinear in the per-dim
      delivered tile counts, so with assigned counts pinned the minimum
      over the free counts sits at a vertex of their menu's [min, max]
      box. The multipliers factor per irrelevant dimension and are coupled
      to the rest of the mapping only through the boundary's *cutoff* (the
      innermost relevant temporal position above it, a max over relevant
      dims); both the per-dim factor and the cutoff are monotone under
      assignment, so replaying each factor at a cutoff *lower bound*
      (assigned relevant dims exact, free ones at their menu minimum)
      stays admissible. The output tensor's read-delta terms
      (``outer - outer_sp`` / ``inner - inner_sp``), which are always
      nonnegative, are the only traffic dropped outright.
    * **EDP** — both factors are nonnegative, so the product of the two
      bounds lower-bounds the product.

    Bounds are monotone along the tree (fixing more dimensions can only
    raise them), which makes best-first search with a single
    front-of-heap cutoff exact. All arithmetic is Python ints/floats —
    no overflow concerns — and the same :data:`PRUNE_MARGIN` discipline
    as row-level pruning keeps float rounding from ever cutting a true
    improvement.
    """

    def __init__(
        self,
        engine: BatchEvaluator,
        menus: Sequence[Tuple[str, Sequence[Any]]],
    ) -> None:
        if not engine.supported:
            raise RuntimeError(
                f"partial bounds need a supported batch engine: "
                f"{engine.unsupported_reason}"
            )
        self.engine = engine
        layout = engine.layout
        assert layout is not None
        self.layout = layout
        # Boundary cut levels at which delivered-tile counts are needed
        # (a boundary (parent, child) folds the columns above ``child``;
        # the innermost boundary folds everything).
        self.cuts: Tuple[int, ...] = tuple(
            sorted(
                {
                    layout.num_levels if child is None else child
                    for meta in layout.tensors
                    for _, child in meta.boundaries
                }
            )
        )
        #: Per dim, per menu chain: (cycle factor, {cut: delivered tiles}).
        self.chain_stats: Dict[str, List[Tuple[int, Dict[int, int]]]] = {}
        #: Per dim: minimum cycle factor over the menu (free-dim relaxation).
        self.min_cycles: Dict[str, int] = {}
        #: Per dim, per cut: [min, max] delivered-tile box over the menu.
        self.tile_range: Dict[str, Dict[int, Tuple[int, int]]] = {}
        #: Per dim: the menu chains themselves (projection-factor replay).
        self.menus: Dict[str, Sequence[Any]] = {}
        #: Per dim, per chain: {cut: innermost qualifying temporal position}
        #: (-1 when the chain has no bound>1 temporal loop above the cut).
        self.qual: Dict[str, List[Dict[int, int]]] = {}
        #: Per dim: {cut: minimum qualifying position over the menu}.
        self.qual_min: Dict[str, Dict[int, int]] = {}
        for dim, menu in menus:
            stats = [
                (self._chain_cycles(chain), self._chain_tiles(chain))
                for chain in menu
            ]
            if not stats:
                raise RuntimeError(f"dimension {dim} has an empty chain menu")
            self.chain_stats[dim] = stats
            self.min_cycles[dim] = min(s[0] for s in stats)
            self.tile_range[dim] = {
                cut: (
                    min(s[1][cut] for s in stats),
                    max(s[1][cut] for s in stats),
                )
                for cut in self.cuts
            }
            self.menus[dim] = list(menu)
            quals = [self._chain_qual(dim, chain) for chain in menu]
            self.qual[dim] = quals
            self.qual_min[dim] = {
                cut: min(q[cut] for q in quals) for cut in self.cuts
            }
        self._factor_cache: Dict[Tuple, int] = {}
        self._factor_min_cache: Dict[Tuple, int] = {}
        # Menu-vectorized views of the per-chain stats, for pricing every
        # child of a tree node in one :meth:`child_bounds` call.
        self._cyc_vec = {
            dim: np.array([s[0] for s in stats], dtype=np.int64)
            for dim, stats in self.chain_stats.items()
        }
        self._tiles_vec = {
            dim: {
                cut: np.array([s[1][cut] for s in stats], dtype=np.int64)
                for cut in self.cuts
            }
            for dim, stats in self.chain_stats.items()
        }
        self._qual_vec = {
            dim: {
                cut: np.array([q[cut] for q in quals], dtype=np.int64)
                for cut in self.cuts
            }
            for dim, quals in self.qual.items()
        }
        #: Largest possible cutoff (cutoffs are virtual grid positions, or
        #: -1); factor-vs-cutoff tables are indexed by ``cutoff + 1``.
        self._cutoff_hi = int(self.layout.grid_pos.max())
        self._factor_table_cache: Dict[Tuple, Any] = {}
        self._factor_min_table_cache: Dict[Tuple, Any] = {}
        self._factor_menu_cache: Dict[Tuple, Any] = {}
        self._factor_menu_table_cache: Dict[Tuple, Any] = {}

    def _chain_cycles(self, chain: Any) -> int:
        """One dimension's exact factor of the cycle product.

        The scalar replay of the :meth:`BatchEvaluator._cycles` kernel for
        a single (dim, chain) column walk.
        """
        layout = self.layout
        steps = 0
        shadowed = False
        for c in range(layout.num_columns):
            b = chain.bounds[c]
            r = chain.remainders[c]
            if layout.col_spatial[c]:
                shadowed = shadowed or r >= 2
            else:
                steps = steps * b + (b if shadowed else r) - 1
        return steps + 1

    def _chain_tiles(self, chain: Any) -> Dict[int, int]:
        """Delivered-tile counts of one dimension above each boundary cut.

        The per-dim fold from :meth:`BatchEvaluator._traffic`: columns are
        level-ordered, so the cuts (ascending) share one running fold.
        """
        layout = self.layout
        tiles: Dict[int, int] = {}
        t = 0
        c = 0
        for cut in self.cuts:
            while c < layout.num_columns and layout.col_level[c] < cut:
                t = t * chain.bounds[c] + chain.remainders[c] - 1
                c += 1
            tiles[cut] = t + 1
        return tiles

    def _chain_qual(self, dim: str, chain: Any) -> Dict[int, int]:
        """Innermost qualifying temporal position per cut for one chain.

        The per-dim ingredient of a boundary's cutoff in
        :meth:`BatchEvaluator._traffic`: the deepest virtual grid position
        among this dimension's bound>1 temporal loops above the cut, or
        ``-1`` when there is none. The boundary cutoff is the max of these
        over the tensor's relevant dims.
        """
        layout = self.layout
        d = layout.dim_index[dim]
        qual: Dict[int, int] = {}
        for cut in self.cuts:
            deepest = -1
            for c in range(layout.num_columns):
                if layout.col_level[c] >= cut or layout.col_spatial[c]:
                    continue
                if chain.bounds[c] > 1:
                    deepest = max(deepest, int(layout.grid_pos[c, d]))
            qual[cut] = deepest
        return qual

    def _projection_factor(
        self, dim: str, chain: Any, cut: int, parent: int,
        inner: bool, cutoff: int,
    ) -> int:
        """One irrelevant dimension's projection-count factor, replayed.

        The scalar replay of one ``d`` iteration of
        :meth:`BatchEvaluator._projection_multipliers`, at a given cutoff:
        walk the boundary's columns inner to outer keeping (full-subtree,
        last-path) counts; spatial loops are always selected on the inner
        multiplier and selected above the parent on the outer one;
        temporal loops are selected when their position is inside the
        cutoff, and otherwise promote the full count when they carry a
        genuine remainder. Both counts are monotone in the selected set,
        so evaluating at a cutoff lower bound is admissible.
        """
        layout = self.layout
        d = layout.dim_index[dim]
        f = 1
        l = 1
        for c in range(layout.num_columns - 1, -1, -1):
            if layout.col_level[c] >= cut:
                continue
            b = int(chain.bounds[c])
            r = int(chain.remainders[c])
            if layout.col_spatial[c]:
                if inner or layout.col_level[c] < parent:
                    l = (r - 1) * f + l
                    f = b * f
                elif r >= 2:
                    l = f
            else:
                if int(layout.grid_pos[c, d]) < cutoff:
                    l = (r - 1) * f + l
                    f = b * f
                elif r >= 2:
                    l = f
        return l

    def _factor(
        self, dim: str, idx: int, cut: int, parent: int,
        inner: bool, cutoff: int,
    ) -> int:
        """Memoized exact projection factor of one assigned chain."""
        key = (dim, idx, cut, parent, inner, cutoff)
        cached = self._factor_cache.get(key)
        if cached is None:
            # A preloaded (or previously built) cutoff table already holds
            # every value of this factor — workers seeded via
            # :meth:`preload_tables` never replay the Python fold.
            table = self._factor_table_cache.get((dim, idx, cut, parent, inner))
            if table is not None:
                cached = int(table[cutoff + 1])
            else:
                cached = self._projection_factor(
                    dim, self.menus[dim][idx], cut, parent, inner, cutoff
                )
            self._factor_cache[key] = cached
        return cached

    def _factor_min(
        self, dim: str, cut: int, parent: int, inner: bool, cutoff: int
    ) -> int:
        """Memoized menu-minimum projection factor of a free dimension."""
        key = (dim, cut, parent, inner, cutoff)
        cached = self._factor_min_cache.get(key)
        if cached is None:
            table = self._factor_min_table_cache.get((dim, cut, parent, inner))
            if table is not None:
                cached = int(table[cutoff + 1])
            else:
                cached = min(
                    self._factor(dim, idx, cut, parent, inner, cutoff)
                    for idx in range(len(self.menus[dim]))
                )
            self._factor_min_cache[key] = cached
        return cached

    def _factor_table(
        self, dim: str, idx: int, cut: int, parent: int, inner: bool
    ) -> Any:
        """One assigned chain's projection factor, tabulated over cutoffs.

        Index ``cutoff + 1`` (cutoffs range over ``[-1, _cutoff_hi]``), so
        a per-child cutoff vector gathers factors in one fancy-index.
        """
        key = (dim, idx, cut, parent, inner)
        table = self._factor_table_cache.get(key)
        if table is None:
            table = np.array(
                [
                    self._factor(dim, idx, cut, parent, inner, cutoff)
                    for cutoff in range(-1, self._cutoff_hi + 1)
                ],
                dtype=np.int64,
            )
            self._factor_table_cache[key] = table
        return table

    def _factor_min_table(
        self, dim: str, cut: int, parent: int, inner: bool
    ) -> Any:
        """A free dimension's menu-minimum factor, tabulated over cutoffs."""
        key = (dim, cut, parent, inner)
        table = self._factor_min_table_cache.get(key)
        if table is None:
            table = np.array(
                [
                    self._factor_min(dim, cut, parent, inner, cutoff)
                    for cutoff in range(-1, self._cutoff_hi + 1)
                ],
                dtype=np.int64,
            )
            self._factor_min_table_cache[key] = table
        return table

    def _factor_menu_vec(
        self, dim: str, cut: int, parent: int, inner: bool, cutoff: int
    ) -> Any:
        """All of one dimension's menu factors at one fixed cutoff."""
        key = (dim, cut, parent, inner, cutoff)
        vec = self._factor_menu_cache.get(key)
        if vec is None:
            vec = np.array(
                [
                    self._factor(dim, idx, cut, parent, inner, cutoff)
                    for idx in range(len(self.menus[dim]))
                ],
                dtype=np.int64,
            )
            self._factor_menu_cache[key] = vec
        return vec

    def _factor_menu_table(
        self, dim: str, cut: int, parent: int, inner: bool
    ) -> Any:
        """One dimension's factors over (menu index, cutoff), 2-D."""
        key = (dim, cut, parent, inner)
        table = self._factor_menu_table_cache.get(key)
        if table is None:
            table = np.stack(
                [
                    self._factor_table(dim, idx, cut, parent, inner)
                    for idx in range(len(self.menus[dim]))
                ]
            )
            self._factor_menu_table_cache[key] = table
        return table

    # -- cross-process table transport -----------------------------------
    #
    # Building the factor tables is the engine's only Python-loop-heavy
    # work (a _projection_factor replay per (dim, chain, cutoff) tuple);
    # everything else in __init__ is a few small folds. The parallel
    # branch-and-bound driver therefore builds the tables once, exports
    # them as a flat dict of int64 arrays, and ships them to workers as
    # shared-memory views — each worker's engine starts bound-ready
    # without replaying a single fold.

    def precompute_tables(self) -> None:
        """Eagerly build every factor table the tree walk can request."""
        layout = self.layout
        for meta in layout.tensors:
            for parent, child in meta.boundaries:
                cut = layout.num_levels if child is None else child
                inners = (False, True) if child is not None else (False,)
                for d in meta.irrelevant_idx:
                    dim = layout.dims[d]
                    for inner in inners:
                        self._factor_menu_table(dim, cut, parent, inner)
                        self._factor_min_table(dim, cut, parent, inner)

    def export_tables(self) -> Dict[str, Any]:
        """All factor tables as a flat ``{key: int64 array}`` dict.

        Keys encode the cache key (``kind|dim|cut|parent|inner``); the
        dict round-trips through :class:`repro.model.shm.ShmArrayBundle`
        into :meth:`preload_tables` on the worker side.
        """
        self.precompute_tables()
        arrays: Dict[str, Any] = {}
        for (dim, cut, parent, inner), table in sorted(
            self._factor_menu_table_cache.items()
        ):
            arrays[f"menu|{dim}|{cut}|{parent}|{int(inner)}"] = table
        for (dim, cut, parent, inner), table in sorted(
            self._factor_min_table_cache.items()
        ):
            arrays[f"min|{dim}|{cut}|{parent}|{int(inner)}"] = table
        return arrays

    def preload_tables(self, arrays: Dict[str, Any]) -> int:
        """Seed the factor-table caches from exported arrays (zero-copy).

        Accepts the dict produced by :meth:`export_tables` (typically as
        attached shared-memory views). Per-chain rows of each menu table
        are installed too, so both the vectorized and the scalar factor
        paths hit without ever replaying the Python fold. Returns the
        number of tables installed.
        """
        loaded = 0
        for name, table in arrays.items():
            kind, dim, cut, parent, inner = name.split("|")
            key = (dim, int(cut), int(parent), bool(int(inner)))
            if kind == "menu":
                self._factor_menu_table_cache[key] = table
                for idx in range(table.shape[0]):
                    self._factor_table_cache[(dim, idx) + key[1:]] = table[idx]
            elif kind == "min":
                self._factor_min_table_cache[key] = table
            else:
                continue
            loaded += 1
        return loaded

    def suffix_bounds(
        self, assigned: Dict[str, int], objective: str = "edp"
    ) -> Any:
        """:meth:`bound` of every *complete* assignment extending ``assigned``.

        Returns an array shaped by the free dimensions' menu lengths (in
        layout dim order). Nothing is relaxed — each cell fixes every
        dimension, so the cell value equals the scalar ``bound`` of that
        full assignment: the tightest partial bound the engine can state,
        computed densely. This is the leaf regime of the tree walk: once
        a subtree is small, sweeping all of its completions' bounds in a
        few broadcast kernels costs far less than branching further, and
        the cells it cuts are never even enumerated into batches.
        """
        layout = self.layout
        free = [dim for dim in layout.dims if dim not in assigned]
        axis = {dim: i for i, dim in enumerate(free)}
        k = len(free)

        def spread(dim: str, arr: Any) -> Any:
            shape = [1] * k
            shape[axis[dim]] = arr.shape[0]
            return arr.reshape(shape)

        cycles_scalar = 1
        for dim in layout.dims:
            idx = assigned.get(dim)
            if idx is not None:
                cycles_scalar *= self.chain_stats[dim][idx][0]
        cycles: Any = np.int64(cycles_scalar)
        for dim in free:
            cycles = cycles * spread(dim, self._cyc_vec[dim])
        if objective == "delay":
            return np.broadcast_to(
                cycles, tuple(len(self.menus[dim]) for dim in free)
            ).astype(float)
        engine = self.engine
        energy: Any = np.float64(engine.compute_energy)
        for meta in layout.tensors:
            for parent, child in meta.boundaries:
                cut = layout.num_levels if child is None else child
                base: Any = 1
                for rank in meta.ranks:
                    tiles = []
                    sizes = []
                    for d, _ in rank:
                        dim = layout.dims[d]
                        sizes.append(int(layout.sizes[d]))
                        idx = assigned.get(dim)
                        if idx is not None:
                            tiles.append(
                                np.int64(self.chain_stats[dim][idx][1][cut])
                            )
                        else:
                            tiles.append(
                                spread(dim, self._tiles_vec[dim][cut])
                            )
                    all_tiles: Any = 1
                    for t in tiles:
                        all_tiles = all_tiles * t
                    total = all_tiles
                    for (_, coef), t, size in zip(rank, tiles, sizes):
                        total = total + coef * (size - t) * (all_tiles // t)
                    base = base * total
                cutoff: Any = np.int64(-1)
                for d in meta.relevant_idx:
                    dim = layout.dims[d]
                    idx = assigned.get(dim)
                    if idx is not None:
                        cutoff = np.maximum(
                            cutoff, np.int64(self.qual[dim][idx][cut])
                        )
                    else:
                        cutoff = np.maximum(
                            cutoff, spread(dim, self._qual_vec[dim][cut])
                        )
                cutoff_idx = cutoff + 1
                outer: Any = 1
                inner: Any = 1
                for d in meta.irrelevant_idx:
                    dim = layout.dims[d]
                    idx = assigned.get(dim)
                    if idx is not None:
                        outer = outer * self._factor_table(
                            dim, idx, cut, parent, False
                        )[cutoff_idx]
                        if child is not None:
                            inner = inner * self._factor_table(
                                dim, idx, cut, parent, True
                            )[cutoff_idx]
                    else:
                        m = len(self.menus[dim])
                        idx_grid = spread(dim, np.arange(m, dtype=np.int64))
                        outer = outer * self._factor_menu_table(
                            dim, cut, parent, False
                        )[idx_grid, cutoff_idx]
                        if child is not None:
                            inner = inner * self._factor_menu_table(
                                dim, cut, parent, True
                            )[idx_grid, cutoff_idx]
                if not meta.is_output:
                    energy = energy + engine.read_pj[parent] * (base * outer)
                    if child is not None:
                        energy = energy + engine.write_pj[child] * (
                            base * inner
                        )
                else:
                    energy = energy + engine.write_pj[parent] * (base * outer)
                    if child is not None:
                        energy = energy + engine.read_pj[child] * (
                            base * inner
                        )
        shape = tuple(len(self.menus[dim]) for dim in free)
        if objective == "energy":
            return np.broadcast_to(energy, shape).astype(float)
        return np.broadcast_to(energy * cycles.astype(float), shape)

    def _rank_min_vec(
        self,
        rank: Tuple[Tuple[int, int], ...],
        cut: int,
        assigned: Dict[str, int],
        branch_dim: str,
    ) -> Any:
        """:meth:`_rank_min` with ``branch_dim`` swept over its whole menu.

        Returns a scalar when the branch dimension does not appear in the
        rank (the sum is then child-independent), else an int64 vector
        over the branch menu. Identical vertex-relaxation math, so every
        element equals the scalar bound of the corresponding child.
        """
        b_idx = self.layout.dim_index[branch_dim]
        if all(d != b_idx for d, _ in rank):
            return self._rank_min(rank, cut, assigned)
        t_branch = self._tiles_vec[branch_dim][cut]
        choices: List[Optional[Tuple[int, ...]]] = []
        sizes: List[int] = []
        for d, _ in rank:
            dim = self.layout.dims[d]
            sizes.append(int(self.layout.sizes[d]))
            if d == b_idx:
                choices.append(None)  # placeholder: the swept menu axis
                continue
            idx = assigned.get(dim)
            if idx is not None:
                choices.append((self.chain_stats[dim][idx][1][cut],))
            else:
                lo, hi = self.tile_range[dim][cut]
                choices.append((lo,) if lo == hi else (lo, hi))
        best: Any = None
        for vertex in itertools.product(
            *[c if c is not None else (None,) for c in choices]
        ):
            scalar_tiles = 1
            for t in vertex:
                if t is not None:
                    scalar_tiles *= t
            all_tiles = t_branch * scalar_tiles
            total = all_tiles.copy()
            for (_, coef), t, size in zip(rank, vertex, sizes):
                tv = t_branch if t is None else t
                total = total + coef * (size - tv) * (all_tiles // tv)
            best = total if best is None else np.minimum(best, total)
        return best

    def child_bounds(
        self, assigned: Dict[str, int], branch_dim: str,
        objective: str = "edp",
    ) -> Any:
        """:meth:`bound` for every child of a node, menu-vectorized.

        Element ``k`` is the bound of ``assigned | {branch_dim: k}`` —
        the same per-component math as the scalar path (asserted by the
        admissibility tests), computed once per expansion instead of once
        per child. This is what makes deep branching affordable: the
        scalar bound re-derives every rank sum per child, turning tree
        walks over wide menus into millions of tiny Python folds.
        """
        layout = self.layout
        menu_len = len(self.menus[branch_dim])
        b_idx = layout.dim_index[branch_dim]
        cycles_base = 1
        for dim in layout.dims:
            if dim == branch_dim:
                continue
            idx = assigned.get(dim)
            cycles_base *= (
                self.chain_stats[dim][idx][0]
                if idx is not None
                else self.min_cycles[dim]
            )
        cycles_vec = cycles_base * self._cyc_vec[branch_dim]
        if objective == "delay":
            return cycles_vec.astype(float)
        engine = self.engine
        energy = np.full(menu_len, engine.compute_energy, dtype=float)
        for meta in layout.tensors:
            branch_relevant = b_idx in meta.relevant_idx
            for parent, child in meta.boundaries:
                cut = layout.num_levels if child is None else child
                base: Any = 1
                for rank in meta.ranks:
                    base = base * self._rank_min_vec(
                        rank, cut, assigned, branch_dim
                    )
                if branch_relevant:
                    fixed = -1
                    for d in meta.relevant_idx:
                        if d == b_idx:
                            continue
                        dim = layout.dims[d]
                        idx = assigned.get(dim)
                        qual = (
                            self.qual[dim][idx][cut]
                            if idx is not None
                            else self.qual_min[dim][cut]
                        )
                        if qual > fixed:
                            fixed = qual
                    cutoff_idx = (
                        np.maximum(fixed, self._qual_vec[branch_dim][cut]) + 1
                    )
                    outer: Any = np.ones(menu_len, dtype=np.int64)
                    inner: Any = np.ones(menu_len, dtype=np.int64)
                    for d in meta.irrelevant_idx:
                        dim = layout.dims[d]
                        idx = assigned.get(dim)
                        if idx is not None:
                            outer = outer * self._factor_table(
                                dim, idx, cut, parent, False
                            )[cutoff_idx]
                            if child is not None:
                                inner = inner * self._factor_table(
                                    dim, idx, cut, parent, True
                                )[cutoff_idx]
                        else:
                            outer = outer * self._factor_min_table(
                                dim, cut, parent, False
                            )[cutoff_idx]
                            if child is not None:
                                inner = inner * self._factor_min_table(
                                    dim, cut, parent, True
                                )[cutoff_idx]
                else:
                    # The branch dim is irrelevant here, so the cutoff is
                    # child-independent and the branch contributes its
                    # menu factor vector at that one cutoff.
                    cutoff = -1
                    for d in meta.relevant_idx:
                        dim = layout.dims[d]
                        idx = assigned.get(dim)
                        qual = (
                            self.qual[dim][idx][cut]
                            if idx is not None
                            else self.qual_min[dim][cut]
                        )
                        if qual > cutoff:
                            cutoff = qual
                    outer = self._factor_menu_vec(
                        branch_dim, cut, parent, False, cutoff
                    )
                    inner = (
                        self._factor_menu_vec(
                            branch_dim, cut, parent, True, cutoff
                        )
                        if child is not None
                        else None
                    )
                    for d in meta.irrelevant_idx:
                        if d == b_idx:
                            continue
                        dim = layout.dims[d]
                        idx = assigned.get(dim)
                        if idx is not None:
                            outer = outer * self._factor(
                                dim, idx, cut, parent, False, cutoff
                            )
                            if child is not None:
                                inner = inner * self._factor(
                                    dim, idx, cut, parent, True, cutoff
                                )
                        else:
                            outer = outer * self._factor_min(
                                dim, cut, parent, False, cutoff
                            )
                            if child is not None:
                                inner = inner * self._factor_min(
                                    dim, cut, parent, True, cutoff
                                )
                if not meta.is_output:
                    energy = energy + engine.read_pj[parent] * (base * outer)
                    if child is not None:
                        energy = energy + engine.write_pj[child] * (
                            base * inner
                        )
                else:
                    energy = energy + engine.write_pj[parent] * (base * outer)
                    if child is not None:
                        energy = energy + engine.read_pj[child] * (
                            base * inner
                        )
        if objective == "energy":
            return energy
        return energy * cycles_vec.astype(float)

    def bound(self, assigned: Dict[str, int], objective: str = "edp") -> float:
        """Lower bound on ``objective`` over all completions of ``assigned``.

        ``assigned`` maps dimension names to chain indices into the menus
        this engine was built with. Invalid completions price to ``inf``
        under every search, so bounding the raw model metric is admissible
        for them too.
        """
        cycles_lb = 1
        for dim in self.layout.dims:
            idx = assigned.get(dim)
            cycles_lb *= (
                self.chain_stats[dim][idx][0]
                if idx is not None
                else self.min_cycles[dim]
            )
        if objective == "delay":
            return float(cycles_lb)
        engine = self.engine
        layout = self.layout
        energy = 0.0
        for meta in layout.tensors:
            for parent, child in meta.boundaries:
                cut = layout.num_levels if child is None else child
                base = 1
                for rank in meta.ranks:
                    base *= self._rank_min(rank, cut, assigned)
                # Cutoff lower bound: assigned relevant dims contribute
                # their exact innermost qualifying position, free ones
                # their menu minimum. The true cutoff is the max over
                # exact positions, so this never overshoots.
                cutoff = -1
                for d in meta.relevant_idx:
                    dim = layout.dims[d]
                    idx = assigned.get(dim)
                    qual = (
                        self.qual[dim][idx][cut]
                        if idx is not None
                        else self.qual_min[dim][cut]
                    )
                    if qual > cutoff:
                        cutoff = qual
                outer = 1
                inner = 1
                for d in meta.irrelevant_idx:
                    dim = layout.dims[d]
                    idx = assigned.get(dim)
                    if idx is not None:
                        outer *= self._factor(
                            dim, idx, cut, parent, False, cutoff
                        )
                        if child is not None:
                            inner *= self._factor(
                                dim, idx, cut, parent, True, cutoff
                            )
                    else:
                        outer *= self._factor_min(
                            dim, cut, parent, False, cutoff
                        )
                        if child is not None:
                            inner *= self._factor_min(
                                dim, cut, parent, True, cutoff
                            )
                if not meta.is_output:
                    energy += engine.read_pj[parent] * base * outer
                    if child is not None:
                        energy += engine.write_pj[child] * base * inner
                else:
                    energy += engine.write_pj[parent] * base * outer
                    if child is not None:
                        energy += engine.read_pj[child] * base * inner
        energy += engine.compute_energy
        if objective == "energy":
            return energy
        return energy * float(cycles_lb)

    def _rank_min(
        self,
        rank: Tuple[Tuple[int, int], ...],
        cut: int,
        assigned: Dict[str, int],
    ) -> int:
        """Box-vertex minimum of one rank's delivery sum at one boundary.

        Assigned dims contribute their exact delivered-tile count at this
        cut; free dims relax over their menu's [min, max] box. The sum is
        affine in each count separately, so the box minimum sits at a
        vertex (at most 2**|free| evaluations; ranks couple <= 2 dims).
        """
        choices: List[Tuple[int, ...]] = []
        sizes: List[int] = []
        for d, _ in rank:
            dim = self.layout.dims[d]
            sizes.append(int(self.layout.sizes[d]))
            idx = assigned.get(dim)
            if idx is not None:
                choices.append((self.chain_stats[dim][idx][1][cut],))
            else:
                lo, hi = self.tile_range[dim][cut]
                choices.append((lo,) if lo == hi else (lo, hi))
        best: Optional[int] = None
        for vertex in itertools.product(*choices):
            all_tiles = 1
            for t in vertex:
                all_tiles *= t
            total = all_tiles
            for (_, coef), t, size in zip(rank, vertex, sizes):
                total += coef * (size - t) * (all_tiles // t)
            if best is None or total < best:
                best = total
        return best if best is not None else 1

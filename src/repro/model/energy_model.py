"""Energy rollup: price access counts with an energy table."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch.spec import Architecture
from repro.energy.table import EnergyTable
from repro.model.access_counts import AccessCounts
from repro.problem.workload import Workload


def compute_energy_pj(
    arch: Architecture,
    workload: Workload,
    counts: AccessCounts,
    table: EnergyTable,
) -> Tuple[float, Dict[str, float]]:
    """Total energy in pJ and a per-component breakdown.

    The breakdown maps each storage level name (plus ``"compute"``) to its
    energy contribution; the sum equals the returned total.
    """
    breakdown: Dict[str, float] = {}
    total = 0.0
    for index, level in enumerate(arch.levels):
        read_pj = table.read_pj(level.name)
        write_pj = table.write_pj(level.name)
        energy = (
            counts.level_reads(index) * read_pj
            + counts.level_writes(index) * write_pj
        )
        breakdown[level.name] = energy
        total += energy
    compute_energy = workload.total_operations * table.mac_pj
    breakdown["compute"] = compute_energy
    total += compute_energy
    return total, breakdown

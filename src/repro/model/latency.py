"""Latency and utilization with imperfect spatial factorization.

Total cycles = product over dimensions of each dimension's exact temporal
step count (Eq. 5 recursion over its temporal loops). Spatial loops execute
in lockstep within a step, so a spatial remainder shortens the schedule:
the paper's Fig. 5 toy saves 3 of 20 cycles by running 16 steps on 6 PEs
plus one step on 4 PEs instead of 20 steps on 5 PEs.

Compute utilization is ``total_MACs / (cycles * total_compute_units)`` —
with imperfect spatial factors the numerator is exact (no padding zeros),
so utilization directly reflects how well remainders pack the array.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch.spec import Architecture
from repro.mapping.chains import temporal_steps
from repro.mapping.nest import Mapping
from repro.model.access_counts import AccessCounts
from repro.problem.workload import Workload


def compute_cycles(workload: Workload, mapping: Mapping) -> int:
    """Exact temporal step count of ``mapping`` on ``workload``.

    The full per-dimension chain (spatial loops included) feeds
    :func:`~repro.mapping.chains.temporal_steps` so that spatial loops can
    shadow inner temporal remainders correctly.
    """
    cycles = 1
    placed = mapping.placed_loops()
    for dim in workload.dim_names:
        steps = temporal_steps(
            p.loop
            for p in placed
            if p.loop.dim == dim and p.loop.bound > 1
        )
        cycles *= steps
    return cycles


def compute_utilization(
    arch: Architecture, workload: Workload, cycles: int
) -> float:
    """Fraction of compute-unit-cycles doing useful MACs."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    capacity = cycles * arch.total_compute_units * arch.compute.ops_per_cycle
    return workload.total_operations / capacity


def spatial_allocations(mapping: Mapping) -> Dict[str, int]:
    """Per-level claimed fanout (product of spatial bounds)."""
    return {nest.level_name: nest.spatial_allocation for nest in mapping.levels}


def bandwidth_stall_cycles(
    arch: Architecture, counts: AccessCounts
) -> Optional[int]:
    """Cycles implied by the most-bandwidth-bound level, or None.

    Only levels with an explicit ``bandwidth_words_per_cycle`` participate;
    the presets leave bandwidth unset (compute-bound, matching the paper's
    cycles-normalized-to-MAC-delay methodology).
    """
    worst: Optional[int] = None
    for index, level in enumerate(arch.levels):
        bandwidth = level.bandwidth_words_per_cycle
        if bandwidth is None:
            continue
        instances = arch.instances_at(index)
        words = counts.level_total(index)
        needed = int(-(-words // (bandwidth * instances)))
        if worst is None or needed > worst:
            worst = needed
    return worst

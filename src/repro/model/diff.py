"""Structured comparison of two evaluations ("why is B better than A?").

Produces per-metric ratios and per-(level, tensor) traffic deltas, sorted
by energy impact — the quantitative answer behind every "Ruby-S improves
layer X by Y%" row in the experiment tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.spec import Architecture
from repro.core.report import format_table
from repro.energy.table import EnergyTable
from repro.model.evaluator import Evaluation


@dataclass(frozen=True)
class TrafficDelta:
    """Access-count change at one (level, tensor) between two evaluations."""

    level_name: str
    tensor_name: str
    reads_before: int
    reads_after: int
    writes_before: int
    writes_after: int
    energy_delta_pj: float  # negative = the challenger saves energy here


@dataclass
class EvaluationDiff:
    """The comparison of a challenger against a baseline evaluation."""

    baseline: Evaluation
    challenger: Evaluation
    deltas: List[TrafficDelta] = field(default_factory=list)

    @property
    def edp_ratio(self) -> float:
        return self.challenger.edp / self.baseline.edp

    @property
    def energy_ratio(self) -> float:
        return self.challenger.energy_pj / self.baseline.energy_pj

    @property
    def cycles_ratio(self) -> float:
        return self.challenger.cycles / self.baseline.cycles

    @property
    def utilization_delta(self) -> float:
        return self.challenger.utilization - self.baseline.utilization

    def dominant_deltas(self, top: int = 5) -> List[TrafficDelta]:
        """The traffic changes with the largest absolute energy impact."""
        return sorted(
            self.deltas, key=lambda d: abs(d.energy_delta_pj), reverse=True
        )[:top]


def diff_evaluations(
    arch: Architecture,
    table: EnergyTable,
    baseline: Evaluation,
    challenger: Evaluation,
) -> EvaluationDiff:
    """Build the structured diff of two *valid* evaluations."""
    if not (baseline.valid and challenger.valid):
        raise ValueError("diff needs two valid evaluations")
    result = EvaluationDiff(baseline=baseline, challenger=challenger)
    before_reads = baseline.access_counts.reads
    after_reads = challenger.access_counts.reads
    before_writes = baseline.access_counts.writes
    after_writes = challenger.access_counts.writes
    keys = (
        set(before_reads) | set(after_reads)
        | set(before_writes) | set(after_writes)
    )
    for level_index, tensor_name in sorted(keys):
        level = arch.levels[level_index]
        rb = before_reads.get((level_index, tensor_name), 0)
        ra = after_reads.get((level_index, tensor_name), 0)
        wb = before_writes.get((level_index, tensor_name), 0)
        wa = after_writes.get((level_index, tensor_name), 0)
        if (rb, wb) == (ra, wa):
            continue
        energy_delta = (ra - rb) * table.read_pj(level.name) + (
            wa - wb
        ) * table.write_pj(level.name)
        result.deltas.append(
            TrafficDelta(
                level_name=level.name,
                tensor_name=tensor_name,
                reads_before=rb,
                reads_after=ra,
                writes_before=wb,
                writes_after=wa,
                energy_delta_pj=energy_delta,
            )
        )
    return result


def format_diff(diff: EvaluationDiff, top: int = 8) -> str:
    """Render the diff: metric ratios plus the dominant traffic changes."""
    header = (
        f"challenger / baseline: EDP x{diff.edp_ratio:.3f}  "
        f"energy x{diff.energy_ratio:.3f}  cycles x{diff.cycles_ratio:.3f}  "
        f"utilization {diff.baseline.utilization:.1%} -> "
        f"{diff.challenger.utilization:.1%}"
    )
    rows: List[List[object]] = []
    for delta in diff.dominant_deltas(top):
        rows.append(
            [
                delta.level_name,
                delta.tensor_name,
                f"{delta.reads_before} -> {delta.reads_after}",
                f"{delta.writes_before} -> {delta.writes_after}",
                delta.energy_delta_pj,
            ]
        )
    return header + "\n\n" + format_table(
        ["level", "tensor", "reads", "writes", "energy delta pJ"],
        rows,
        title=f"Dominant traffic changes (top {min(top, len(diff.deltas))})",
    )

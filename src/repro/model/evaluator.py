"""The Evaluator: mapping -> (energy, cycles, EDP, utilization).

This is the architecture cost model of the Timeloop decomposition — the
third subproblem next to mapspace generation and search. An
:class:`Evaluator` is bound to one (architecture, workload) pair so search
loops can evaluate thousands of mappings without re-deriving tensor paths
or energy tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.arch.spec import Architecture
from repro.energy.accelergy import estimate_energy_table
from repro.exceptions import EvaluationError, ReproError
from repro.energy.table import EnergyTable
from repro.mapping.nest import Mapping
from repro.mapping.validity import check_mapping
from repro.model.access_counts import AccessCounts, compute_access_counts
from repro.model.eval_cache import EvaluationCache
from repro.model.energy_model import compute_energy_pj
from repro.obs import scope as _obs
from repro.model.latency import (
    bandwidth_stall_cycles,
    compute_cycles,
    compute_utilization,
)
from repro.problem.workload import Workload


@dataclass(frozen=True)
class Evaluation:
    """The result of evaluating one mapping.

    Attributes:
        mapping: the evaluated mapping.
        valid: False if the mapping violated a hard constraint; invalid
            evaluations carry the violations and no metrics.
        violations: human-readable constraint violations (empty when valid).
        energy_pj: total energy in picojoules.
        cycles: total execution cycles (MAC-normalized delay).
        utilization: useful-MAC fraction of compute-unit-cycles.
        energy_breakdown_pj: per-component energy.
        access_counts: per-level, per-tensor element access totals.
    """

    mapping: Mapping
    valid: bool
    violations: Tuple[str, ...] = ()
    energy_pj: float = 0.0
    cycles: int = 0
    utilization: float = 0.0
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    access_counts: Optional[AccessCounts] = None

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles) — the paper's target metric."""
        return self.energy_pj * self.cycles

    def metric(self, objective: str) -> float:
        """Look up an optimization objective by name."""
        if objective == "edp":
            return self.edp
        if objective == "energy":
            return self.energy_pj
        if objective in ("delay", "cycles", "latency"):
            return float(self.cycles)
        raise ValueError(
            f"unknown objective {objective!r}; use edp, energy, or delay"
        )


class Evaluator:
    """Evaluate mappings of one workload on one architecture.

    Args:
        arch: the accelerator.
        workload: the tensor operation.
        energy_table: optional pre-built energy table; estimated via the
            Accelergy-like model when omitted. Search drivers that spin up
            many evaluators for the same architecture should build the
            table once and pass it in — estimation walks every storage
            level through the SRAM/DRAM models.
        cache: optional :class:`~repro.model.eval_cache.EvaluationCache`
            consulted (by mapping signature) before the full
            validity -> access-counts -> energy pipeline. Cache hits are
            guaranteed to match what the pipeline would have produced.
    """

    def __init__(
        self,
        arch: Architecture,
        workload: Workload,
        energy_table: Optional[EnergyTable] = None,
        include_noc: bool = False,
        include_static: bool = False,
        clock_ghz: float = 1.0,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.arch = arch
        self.workload = workload
        self.energy_table = energy_table or estimate_energy_table(arch)
        self.include_noc = include_noc
        self.include_static = include_static
        self.clock_ghz = clock_ghz
        self.cache = cache

    def evaluate(self, mapping: Mapping) -> Evaluation:
        """Validate and evaluate ``mapping``; never raises on bad mappings.

        With a cache attached, an already-seen signature skips the cost
        model entirely; the returned evaluation always carries the mapping
        that was asked about (not the equivalent one priced first), so
        callers comparing ``result.mapping`` see no difference between a
        hit and a miss.
        """
        if self.cache is None:
            return self._evaluate_uncached(mapping)
        key = mapping.signature()
        hit = self.cache.get(key)
        if hit is not None:
            if hit.mapping is mapping:
                return hit
            return replace(hit, mapping=mapping)
        evaluation = self._evaluate_uncached(mapping)
        self.cache.put(key, evaluation)
        return evaluation

    def evaluate_fresh(self, mapping: Mapping) -> Evaluation:
        """Run the full pipeline unconditionally and store the result.

        Skips the cache *lookup* (the caller already knows the mapping is
        unseen — e.g. the batch engine, which consults the cache itself)
        but still records the evaluation so later lookups hit.
        """
        evaluation = self._evaluate_uncached(mapping)
        if self.cache is not None:
            self.cache.put(mapping.signature(), evaluation)
        return evaluation

    def _evaluate_uncached(self, mapping: Mapping) -> Evaluation:
        """The full validity -> access-counts -> energy pipeline.

        Invalid mappings come back as ``Evaluation(valid=False)``.
        Anything else the model raises on a mapping that *passed*
        validation is a genuine cost-model failure and is wrapped in
        :class:`~repro.exceptions.EvaluationError`, so campaign drivers
        can record it as a structured per-job failure instead of dying on
        an anonymous ``ZeroDivisionError`` deep in a sweep.
        """
        _obs.inc("evaluator.evals")
        violations = check_mapping(mapping, self.arch, self.workload)
        if violations:
            return Evaluation(
                mapping=mapping, valid=False, violations=tuple(violations)
            )
        try:
            return self._cost_mapping(mapping)
        except ReproError:
            raise
        except Exception as error:
            raise EvaluationError(
                f"cost model failed on mapping {mapping.signature()!r}: "
                f"{type(error).__name__}: {error}"
            ) from error

    def _cost_mapping(self, mapping: Mapping) -> Evaluation:
        """Price one already-validated mapping."""
        counts = compute_access_counts(self.arch, self.workload, mapping)
        cycles = compute_cycles(self.workload, mapping)
        stall = bandwidth_stall_cycles(self.arch, counts)
        if stall is not None:
            cycles = max(cycles, stall)
        energy, breakdown = compute_energy_pj(
            self.arch, self.workload, counts, self.energy_table
        )
        if self.include_noc:
            from repro.energy.noc import noc_energy_pj

            noc = noc_energy_pj(self.arch, counts)
            breakdown["noc"] = noc
            energy += noc
        if self.include_static:
            from repro.energy.static import static_energy_pj

            static = static_energy_pj(self.arch, cycles, self.clock_ghz)
            breakdown["static"] = static
            energy += static
        utilization = compute_utilization(self.arch, self.workload, cycles)
        return Evaluation(
            mapping=mapping,
            valid=True,
            energy_pj=energy,
            cycles=cycles,
            utilization=utilization,
            energy_breakdown_pj=breakdown,
            access_counts=counts,
        )

    def evaluate_many(self, mappings: List[Mapping]) -> List[Evaluation]:
        """Evaluate a batch of mappings (convenience for search drivers)."""
        return [self.evaluate(mapping) for mapping in mappings]

    def best_of(
        self, mappings: List[Mapping], objective: str = "edp"
    ) -> Optional[Evaluation]:
        """Best valid evaluation among ``mappings`` or None."""
        best: Optional[Evaluation] = None
        for mapping in mappings:
            evaluation = self.evaluate(mapping)
            if not evaluation.valid:
                continue
            if best is None or evaluation.metric(objective) < best.metric(objective):
                best = evaluation
        return best

"""Bounded LRU cache for mapping evaluations (the search fast path).

Random-sampling search re-draws duplicate mappings constantly — on small
and mid-sized mapspaces a 3000-patience run prices the same loopnest
hundreds of times, and the full validity -> access-counts -> energy
pipeline costs milliseconds per call. Keying a bounded LRU on
:meth:`~repro.mapping.nest.Mapping.signature` turns every re-draw into a
dictionary lookup without changing any search result: two mappings with
equal signatures are guaranteed to evaluate identically.

The cache is deliberately dumb — no TTLs, no weak references, no
threading locks. Each search worker owns a private cache (process pools
give no shared memory to exploit), and hit/miss/eviction counters make
the fast path observable through ``SearchResult.stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Hashable, Optional

from repro.exceptions import SearchError
from repro.obs import scope as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluator imports us)
    from repro.model.evaluator import Evaluation

#: Default cache bound: ~100k evaluations. An Evaluation is a few hundred
#: bytes plus its access-count payload, so this stays in the tens of MB
#: while covering every duplicate a paper-scale (10k-budget) search draws.
DEFAULT_CACHE_SIZE = 100_000


class EvaluationCache:
    """LRU cache from mapping signature to :class:`Evaluation`.

    Args:
        max_entries: capacity bound; the least-recently-used entry is
            evicted once the bound is exceeded.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that fell through to the cost model.
        evictions: entries dropped to respect ``max_entries``.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise SearchError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Evaluation]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional["Evaluation"]:
        """Return the cached evaluation for ``key`` or None, counting the lookup."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _obs.inc("evaluator.cache_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _obs.inc("evaluator.cache_hits")
        return entry

    def put(self, key: Hashable, evaluation: "Evaluation") -> None:
        """Insert ``evaluation`` under ``key``, evicting the LRU entry if full."""
        self._entries[key] = evaluation
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for ``SearchResult.stats`` and logging."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "max_entries": self.max_entries,
        }

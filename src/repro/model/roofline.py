"""Roofline analysis of evaluated mappings.

Classic roofline: attainable throughput = min(peak compute, operational
intensity x memory bandwidth). For a mapping we compute its operational
intensity (MACs per DRAM byte actually moved — a property of the mapping's
reuse, not of the workload alone) and locate it against an architecture's
roofline. A mapping that is compute-bound at high utilization has nothing
left to gain from more reuse; a memory-bound one wants better tiling
before more PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.spec import Architecture
from repro.model.evaluator import Evaluation


@dataclass(frozen=True)
class RooflinePoint:
    """One mapping's position in the roofline plane.

    Attributes:
        operational_intensity: MACs per DRAM byte moved by this mapping.
        achieved_ops_per_cycle: MACs / cycles (the mapping's throughput).
        peak_ops_per_cycle: compute roof of the architecture.
        dram_bytes_per_cycle: bandwidth roof, or None if the architecture
            declares no DRAM bandwidth (the presets' default).
    """

    operational_intensity: float
    achieved_ops_per_cycle: float
    peak_ops_per_cycle: float
    dram_bytes_per_cycle: Optional[float]

    @property
    def attainable_ops_per_cycle(self) -> float:
        """The roof above this operational intensity."""
        if self.dram_bytes_per_cycle is None:
            return self.peak_ops_per_cycle
        return min(
            self.peak_ops_per_cycle,
            self.operational_intensity * self.dram_bytes_per_cycle,
        )

    @property
    def is_compute_bound(self) -> bool:
        """True when the compute roof is the binding one."""
        if self.dram_bytes_per_cycle is None:
            return True
        return (
            self.operational_intensity * self.dram_bytes_per_cycle
            >= self.peak_ops_per_cycle
        )

    @property
    def ridge_intensity(self) -> Optional[float]:
        """Operational intensity where the two roofs meet."""
        if self.dram_bytes_per_cycle is None:
            return None
        return self.peak_ops_per_cycle / self.dram_bytes_per_cycle

    @property
    def roof_fraction(self) -> float:
        """Achieved throughput as a fraction of the attainable roof."""
        roof = self.attainable_ops_per_cycle
        if roof == 0:
            return 0.0
        return self.achieved_ops_per_cycle / roof


def roofline_point(
    arch: Architecture, workload, evaluation: Evaluation
) -> RooflinePoint:
    """Locate a valid evaluation on ``arch``'s roofline.

    Raises ``ValueError`` for invalid evaluations (no counts to analyze).
    """
    if not evaluation.valid or evaluation.access_counts is None:
        raise ValueError("roofline analysis needs a valid evaluation")
    counts = evaluation.access_counts
    dram = arch.levels[0]
    dram_words = counts.level_reads(0) + counts.level_writes(0)
    dram_bytes = dram_words * dram.word_bits / 8.0
    macs = workload.total_operations
    intensity = macs / dram_bytes if dram_bytes > 0 else float("inf")
    bandwidth = dram.bandwidth_words_per_cycle
    return RooflinePoint(
        operational_intensity=intensity,
        achieved_ops_per_cycle=macs / evaluation.cycles,
        peak_ops_per_cycle=float(
            arch.total_compute_units * arch.compute.ops_per_cycle
        ),
        dram_bytes_per_cycle=(
            bandwidth * dram.word_bits / 8.0 if bandwidth is not None else None
        ),
    )

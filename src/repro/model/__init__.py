"""The analytical cost model (the Timeloop-model substitute).

Given (architecture, workload, mapping), compute exact access counts per
storage level and tensor, compute cycles with imperfect-spatial utilization,
price energy with an :class:`~repro.energy.table.EnergyTable`, and roll up
to EDP. The remainder-aware math is exact for the quantities that drive the
paper's results: total operations, temporal steps, and per-sweep element
traffic of relevant dimensions.
"""

from repro.model.dataflow import TensorPath, tensor_paths
from repro.model.access_counts import AccessCounts, compute_access_counts
from repro.model.latency import compute_cycles, compute_utilization
from repro.model.eval_cache import DEFAULT_CACHE_SIZE, EvaluationCache
from repro.model.evaluator import Evaluation, Evaluator
from repro.model.analysis import MappingReport, explain_mapping, format_report
from repro.model.reference_sim import SimulationResult, simulate
from repro.model.roofline import RooflinePoint, roofline_point
from repro.model.diff import EvaluationDiff, diff_evaluations, format_diff
from repro.model.sparsity import gated_evaluation
from repro.model.batch import (
    DEFAULT_BATCH_SIZE,
    HAS_NUMPY,
    BatchEvaluator,
    BatchLayout,
    BatchOutcome,
    CandidateOutcome,
    MappingBatch,
    pack_mappings,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "HAS_NUMPY",
    "BatchEvaluator",
    "BatchLayout",
    "BatchOutcome",
    "CandidateOutcome",
    "MappingBatch",
    "pack_mappings",
    "TensorPath",
    "tensor_paths",
    "AccessCounts",
    "compute_access_counts",
    "compute_cycles",
    "compute_utilization",
    "DEFAULT_CACHE_SIZE",
    "EvaluationCache",
    "Evaluation",
    "Evaluator",
    "MappingReport",
    "explain_mapping",
    "format_report",
    "SimulationResult",
    "simulate",
    "RooflinePoint",
    "roofline_point",
    "EvaluationDiff",
    "diff_evaluations",
    "format_diff",
    "gated_evaluation",
]

"""Exact per-level access counting with imperfect factorization.

For each tensor and each consecutive pair of keeper levels, the element
traffic across the boundary decomposes per problem dimension (Eq. 5 makes
each dimension's tile structure independent):

* a **relevant** dimension contributes its delivered-tile count and the
  exact summed extents of those tiles (= the dimension's coverage — tiles
  partition the iteration space, so imperfect factors cost nothing extra);
* an **irrelevant temporal** loop contributes its trip count iff a relevant
  temporal loop lies inside it above the boundary (tile churn forces
  refetch), else 1 (the child's tile persists — reuse);
* an **irrelevant spatial** loop always multiplies fills into the child
  (every instance holds a copy) but multiplies reads from the parent only
  when it lies *above* the parent (fanouts between parent and child are
  multicast — one read, many deliveries; for outputs, spatial reduction).

Sliding-window (conv input) ranks couple two dimensions; their footprint
sums use the closed form in :func:`_rank_delivery_sum`.

Accuracy: the formulas are exact (validated against the reference
simulator in ``tests/test_reference_sim.py`` and continuously by
``repro verify``) except in two corners where real tile reuse survives a
remainder and the closed form still charges for it — a deliberately
**conservative** approximation (it can overcount, never undercount, so it
biases against — never inflates — the benefit of imperfect factorization):

* a *spatial remainder* on a dimension relevant to a tensor with an
  irrelevant counting loop enclosing it: an instance that idles through
  the remainder window keeps its resident tile, so revisits of that tile
  are not real refetches;
* a *temporal remainder* on a relevant dimension under an irrelevant
  counting loop: when the remainder pass collapses to a single tile,
  consecutive trips of the counting loop see an unchanged tile (no
  displacement, no refetch), but the trip count is multiplied in anyway.

See :func:`repro.verify.differential.compare_case` for the tolerance
bounds these corners are held to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.spec import Architecture
from repro.mapping.chains import chain_trip_count
from repro.mapping.nest import Mapping, PlacedLoop
from repro.model.dataflow import (
    Boundary,
    innermost_relevant_temporal_position,
    nontrivial_loops,
    tensor_paths,
)
from repro.problem.tensor import TensorSpec
from repro.problem.workload import Workload


@dataclass
class AccessCounts:
    """Word-granularity access totals per (storage level, tensor).

    ``reads[(level_index, tensor_name)]`` counts elements read out of the
    level (serving children, draining partial sums); ``writes[...]`` counts
    elements written into it (fills, accumulations, drain receipts).
    """

    reads: Dict[Tuple[int, str], int] = field(default_factory=dict)
    writes: Dict[Tuple[int, str], int] = field(default_factory=dict)

    def add_reads(self, level: int, tensor: str, count: int) -> None:
        """Accumulate ``count`` element reads at ``(level, tensor)``."""
        key = (level, tensor)
        self.reads[key] = self.reads.get(key, 0) + count

    def add_writes(self, level: int, tensor: str, count: int) -> None:
        """Accumulate ``count`` element writes at ``(level, tensor)``."""
        key = (level, tensor)
        self.writes[key] = self.writes.get(key, 0) + count

    def level_reads(self, level: int) -> int:
        """Total element reads out of one storage level (all tensors)."""
        return sum(v for (lvl, _), v in self.reads.items() if lvl == level)

    def level_writes(self, level: int) -> int:
        """Total element writes into one storage level (all tensors)."""
        return sum(v for (lvl, _), v in self.writes.items() if lvl == level)

    def level_total(self, level: int) -> int:
        """Reads plus writes at one storage level."""
        return self.level_reads(level) + self.level_writes(level)

    def tensor_reads(self, tensor: str) -> int:
        """Total reads of one tensor across all levels."""
        return sum(v for (_, name), v in self.reads.items() if name == tensor)

    def tensor_writes(self, tensor: str) -> int:
        """Total writes of one tensor across all levels."""
        return sum(v for (_, name), v in self.writes.items() if name == tensor)


@dataclass(frozen=True)
class _BoundaryTraffic:
    """Element counts across one boundary of one tensor's path.

    The ``*_spatial`` fields count only the instance (copy) multiplicity of
    each side; subtracting them from the combined multipliers leaves the
    temporal *revisit* multiplicity, which is what partial-sum refill
    traffic scales with (a spatial copy is a first visit, not a revisit).
    """

    base_elements: int  # one full sweep of delivered tiles
    inner_multiplier: int  # refetch + per-instance copies at the child side
    outer_multiplier: int  # refetch + parent-instance copies (multicast-aware)
    inner_spatial: int = 1  # child-side instance copies only
    outer_spatial: int = 1  # parent-side instance copies only


def compute_access_counts(
    arch: Architecture, workload: Workload, mapping: Mapping
) -> AccessCounts:
    """Compute exact access counts for every level and tensor."""
    counts = AccessCounts()
    loops = nontrivial_loops(mapping)
    paths = tensor_paths(arch, workload, mapping)
    for path in paths.values():
        tensor = path.tensor
        for boundary in path.boundaries:
            traffic = _boundary_traffic(tensor, workload, loops, boundary)
            _accumulate(counts, tensor, boundary, traffic)
    return counts


def _boundary_traffic(
    tensor: TensorSpec,
    workload: Workload,
    loops: List[PlacedLoop],
    boundary: Boundary,
) -> _BoundaryTraffic:
    relevant = tensor.relevant_dims
    bpos = boundary.boundary_position
    ppos = boundary.parent_position
    cutoff = innermost_relevant_temporal_position(loops, relevant, bpos)

    tiles: Dict[str, int] = {}
    coverage: Dict[str, int] = {}
    for dim in relevant:
        dim_loops = [p for p in loops if p.loop.dim == dim]
        tiles[dim] = chain_trip_count(
            p.loop for p in dim_loops if p.position < bpos
        )
        coverage[dim] = chain_trip_count(p.loop for p in dim_loops)

    base = 1
    for rank in tensor.ranks:
        base *= _rank_delivery_sum(rank, tiles, coverage)

    inner_mult = 1
    outer_mult = 1
    inner_spatial = 1
    outer_spatial = 1
    for dim in workload.dim_names:
        if dim in relevant:
            continue
        dim_loops = [p for p in loops if p.loop.dim == dim and p.position < bpos]
        inner_mult *= _projection_count(
            dim_loops,
            lambda p: p.loop.spatial or p.position < cutoff,
        )
        outer_mult *= _projection_count(
            dim_loops,
            lambda p: (p.loop.spatial and p.position < ppos)
            or (not p.loop.spatial and p.position < cutoff),
        )
        inner_spatial *= _projection_count(
            dim_loops, lambda p: p.loop.spatial
        )
        outer_spatial *= _projection_count(
            dim_loops, lambda p: p.loop.spatial and p.position < ppos
        )

    return _BoundaryTraffic(
        base_elements=base,
        inner_multiplier=inner_mult,
        outer_multiplier=outer_mult,
        inner_spatial=inner_spatial,
        outer_spatial=outer_spatial,
    )


def _projection_count(dim_loops, selected) -> int:
    """Distinct selected-index tuples over one dimension's executed leaves.

    A refetch-forcing loop (selected temporal) multiplies deliveries; a
    spatial loop (selected) multiplies copies. With remainders, the count
    is not a simple product: a loop off the last path always runs its full
    bound, so an instance skipped by a remainder window may still receive
    its copy in an earlier full window. Counting distinct projections of
    the leaf index tuples onto the selected loops captures this *union*
    semantics exactly. Recursion (inner to outer), tracking the projection
    count of a full (off-last-path) subtree and of the last-path subtree:

    * selected loop:      ``full' = P*full``; ``last' = (R-1)*full + last``
    * unselected loop:    ``full' = full``;   ``last' = full if R >= 2
      else last`` (a non-last sibling subtree's projections are a superset
      of the last subtree's).

    The answer is the last-path value at the outermost level. For a chain
    whose selected loops form an outer prefix this reduces to the Eq. (5)
    recursion, which is why relevant-dimension tile counts can keep using
    :func:`~repro.mapping.chains.chain_trip_count`.
    """
    full = 1
    last = 1
    for placed in reversed(dim_loops):
        bound = placed.loop.bound
        remainder = placed.loop.remainder
        if selected(placed):
            full, last = bound * full, (remainder - 1) * full + last
        else:
            last = full if remainder >= 2 else last
    return last


def _rank_delivery_sum(
    rank, tiles: Dict[str, int], coverage: Dict[str, int]
) -> int:
    """Summed footprint of one tensor rank over all delivered tile tuples.

    For a rank ``sum_j c_j * d_j`` the extent of a tile tuple is
    ``sum_j c_j (e_j - 1) + 1``; summing over the independent per-dim tile
    sequences (count ``t_j``, extents summing to coverage ``c_cov_j``):

        ``sum = prod_j t_j + sum_j c_j (c_cov_j - t_j) * prod_{j' != j} t_j'``

    This is exact for imperfect factors because per-dim extents sum to the
    coverage regardless of how the remainders fall.
    """
    tile_counts = [tiles.get(term.dim, 1) for term in rank]
    coverages = [coverage.get(term.dim, 1) for term in rank]
    all_tiles = 1
    for count in tile_counts:
        all_tiles *= count
    total = all_tiles
    for j, term in enumerate(rank):
        others = all_tiles // tile_counts[j] if tile_counts[j] else 0
        total += term.coefficient * (coverages[j] - tile_counts[j]) * others
    return total


def _accumulate(
    counts: AccessCounts,
    tensor: TensorSpec,
    boundary: Boundary,
    traffic: _BoundaryTraffic,
) -> None:
    parent = boundary.parent_level
    child = boundary.child_level
    base = traffic.base_elements
    inner = traffic.inner_multiplier
    outer = traffic.outer_multiplier
    if not tensor.is_output:
        counts.add_reads(parent, tensor.name, base * outer)
        if child is not None:
            counts.add_writes(child, tensor.name, base * inner)
        return
    # Output tensor: drains flow child -> parent (spatially reduced on the
    # way up); refills flow parent -> child on every *revisit* of a tile by
    # an instance — spatial copies are first visits, so the refill traffic
    # scales with the multiplier in excess of the pure copy count.
    counts.add_writes(parent, tensor.name, base * outer)
    counts.add_reads(parent, tensor.name, base * (outer - traffic.outer_spatial))
    if child is not None:
        counts.add_reads(child, tensor.name, base * inner)
        counts.add_writes(
            child, tensor.name, base * (inner - traffic.inner_spatial)
        )
